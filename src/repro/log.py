"""Library logging for the ``repro`` package.

Every module that wants to log obtains its logger through
:func:`get_logger`, which guarantees the ``repro`` root logger carries a
:class:`logging.NullHandler` — the stdlib-recommended setup for libraries:
silent by default, but an application (or the ``python -m repro trace``
CLI) can attach real handlers to the ``repro`` hierarchy and see every
DEBUG message from the flush/prefetch/eviction machinery.

Example::

    from repro.log import get_logger
    log = get_logger(__name__)          # e.g. "repro.core.flusher"
    log.debug("abandoning flush of %d", ckpt_id)

To surface the messages in a script or a test::

    from repro.log import enable_console_logging
    enable_console_logging(logging.DEBUG)
"""

from __future__ import annotations

import logging

#: Name of the package's root logger; all loggers are children of it.
ROOT_LOGGER_NAME = "repro"

_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())


def get_logger(name: str = ROOT_LOGGER_NAME) -> logging.Logger:
    """A logger inside the ``repro`` hierarchy.

    ``name`` is typically ``__name__`` of the calling module (already
    prefixed ``repro.``); bare names are nested under the root logger so
    application-side configuration of ``"repro"`` always applies.
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def enable_console_logging(
    level: int = logging.INFO, fmt: str = "%(asctime)s %(name)s %(levelname)s %(message)s"
) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` hierarchy (idempotent).

    Returns the handler so callers can detach it (``disable_console_logging``)
    or tweak its formatter.
    """
    for handler in _root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setLevel(level)
            _root.setLevel(level)
            return handler
    handler = logging.StreamHandler()
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt))
    _root.addHandler(handler)
    _root.setLevel(level)
    return handler


def disable_console_logging(handler: logging.Handler) -> None:
    """Detach a handler previously installed by :func:`enable_console_logging`."""
    _root.removeHandler(handler)
