"""Deterministic fault decisions derived from a :class:`FaultConfig`.

A :class:`FaultPlan` is a pure function of the config: every decision —
whether a given transfer fails and after how many bytes, whether a tier is
inside an outage window, whether a stored blob lands corrupted, whether a
crash point fires — is computed from :func:`repro.util.rng.derive_seed`
over a stable label path, so the same config + seed reproduces the same
faults regardless of thread interleaving or wall-clock jitter.  The plan
holds no mutable state; sequence counters live in the per-link injectors
(:mod:`repro.faults.injector`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import FaultConfig
from repro.util.rng import derive_seed

#: 2**64, the denominator turning a derived 64-bit seed into a uniform.
_DENOM = float(1 << 64)


class FaultPlan:
    """Stateless, seeded fault decisions for one simulation run."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.seed = config.seed

    def _uniform(self, *labels) -> float:
        """Deterministic uniform in [0, 1) for a label path."""
        return derive_seed(self.seed, *labels) / _DENOM

    # -- transient transfer faults ----------------------------------------
    def link_matches(self, link_name: str) -> bool:
        filters = self.config.fault_links
        if not filters:
            return True
        return any(sub in link_name for sub in filters)

    def transfer_fault(self, link_name: str, seq: int, nbytes: int) -> Optional[int]:
        """Bytes after which transfer ``seq`` on ``link_name`` fails, or
        ``None`` when this transfer completes cleanly."""
        cfg = self.config
        if cfg.transfer_fault_rate <= 0.0 or nbytes <= 0:
            return None
        if not self.link_matches(link_name):
            return None
        if self._uniform("xfer", link_name, seq) >= cfg.transfer_fault_rate:
            return None
        frac = cfg.min_fault_fraction + self._uniform(
            "xfer-frac", link_name, seq
        ) * (cfg.max_fault_fraction - cfg.min_fault_fraction)
        return max(1, min(nbytes - 1, int(frac * nbytes)))

    # -- tier outages / brownouts ------------------------------------------
    def outage(self, tier: str, now: float) -> Optional[float]:
        """The outage factor covering nominal time ``now`` for ``tier``:
        ``0.0`` = hard outage, ``0 < f < 1`` = brownout, ``None`` = healthy."""
        for entry_tier, start, end, factor in self.config.tier_outages:
            if entry_tier == tier and start <= now < end:
                return float(factor)
        return None

    # -- at-rest corruption -------------------------------------------------
    def corrupt(
        self, store: str, key: Tuple[int, int], attempt: int, length: int
    ) -> Optional[int]:
        """Byte offset to flip in the blob put for ``key`` (attempt-indexed,
        so a re-put after detection draws independently), or ``None``."""
        cfg = self.config
        if cfg.corruption_rate <= 0.0 or length <= 0:
            return None
        if self._uniform("rot", store, key[0], key[1], attempt) >= cfg.corruption_rate:
            return None
        return int(
            self._uniform("rot-at", store, key[0], key[1], attempt) * length
        ) % length

    # -- crash points -------------------------------------------------------
    def crash_matches(self, point: str, ckpt_id: int) -> bool:
        cfg = self.config
        if cfg.crash_point is None:
            return False
        want = cfg.crash_point
        if not want.startswith(("before-", "after-")):
            want = f"before-{want}"  # bare stage name == before-<stage>
        if want != point:
            return False
        return cfg.crash_ckpt is None or cfg.crash_ckpt == ckpt_id
