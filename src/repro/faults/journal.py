"""Crash-consistent durable metadata: manifest journal + chunk recipes.

Two small write-ahead stores back ``recover_history()`` after a crash:

* :class:`ManifestJournal` — an append-only log of durable commits.  Every
  time a flush leg lands a checkpoint on a durable tier the engine appends
  a ``commit`` entry (process, checkpoint, store, level, checksum, sizes);
  deleting a corrupt blob appends a ``retract``.  The journal is written
  *after* the blob is durable, so a crash between blob and journal entry
  leaves at worst a blob the store scan still finds — never a journal entry
  pointing at missing data that replay would trust.  Replay is last-wins
  per (process, checkpoint, store).

* :class:`RecipeStore` — the durable sidecar for reduced checkpoints.  The
  blobs a reducer-enabled engine flushes are physical-size placeholders;
  the real bytes live in the chunk recipe.  Saving the recipe (chunk
  digests, kinds and payload bytes) at encode time makes reduced
  checkpoints recoverable after a restart: ``recover_history()`` rebuilds a
  :class:`~repro.reduce.pipeline.ReducedImage` from the recipe and
  re-attaches it at the durable tiers, and the restore path then
  reconstructs and CRC-verifies the full logical payload as usual.

Both are in-memory by default and file-backed when the cluster has an
``ssd_directory`` (JSONL journal, one JSON recipe file per checkpoint), so
they survive full process re-incarnation exactly like the file-backed SSD
tier.  Payload bytes in recipes are hex-encoded — at bench data scale a
chunk payload is a few dozen bytes, so the sidecar stays tiny.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.log import get_logger

log = get_logger("faults.journal")

Key = Tuple[int, int]  # (process_id, ckpt_id)


class ManifestJournal:
    """Append-only log of durable checkpoint commits, replayed on recovery."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self._lock = threading.Lock()
        #: (pid, ckpt) -> {store_id -> entry-dict}; retracts remove entries.
        self._entries: Dict[Key, Dict[str, dict]] = {}
        self.commits = 0
        self.retracts = 0
        if path is not None and os.path.exists(path):
            self._replay_file(path)

    def _replay_file(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    log.warning("journal: skipping corrupt line in %s", path)
                    continue  # torn tail write at crash: ignore
                self._apply(entry)

    def _apply(self, entry: dict) -> None:
        key = (int(entry["pid"]), int(entry["ckpt"]))
        store = str(entry["store"])
        if entry.get("op") == "retract":
            stores = self._entries.get(key)
            if stores is not None:
                stores.pop(store, None)
                if not stores:
                    self._entries.pop(key, None)
        else:
            self._entries.setdefault(key, {})[store] = entry

    def _append(self, entry: dict) -> None:
        if self._path is None:
            return
        with open(self._path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def commit(
        self,
        process_id: int,
        ckpt_id: int,
        *,
        store: str,
        level: str,
        nominal_size: int,
        meta: dict,
    ) -> None:
        """Record that ``ckpt_id``'s blob is durable at ``store``."""
        entry = {
            "op": "commit",
            "pid": process_id,
            "ckpt": ckpt_id,
            "store": store,
            "level": level,
            "nominal": int(nominal_size),
            "meta": dict(meta),
        }
        with self._lock:
            self._apply(entry)
            self._append(entry)
            self.commits += 1

    def retract(self, process_id: int, ckpt_id: int, *, store: str) -> None:
        """Record that ``store``'s blob for ``ckpt_id`` was deleted."""
        entry = {"op": "retract", "pid": process_id, "ckpt": ckpt_id, "store": store}
        with self._lock:
            self._apply(entry)
            self._append(entry)
            self.retracts += 1

    def entries_for(self, process_id: int) -> Dict[int, Dict[str, dict]]:
        """ckpt_id -> {store_id -> commit entry} for one process."""
        with self._lock:
            return {
                ckpt: dict(stores)
                for (pid, ckpt), stores in self._entries.items()
                if pid == process_id and stores
            }


class RecipeStore:
    """Durable sidecar holding chunk recipes for reduced checkpoints.

    Chunk payloads are content-addressed by digest, so checkpoints sharing
    chunks (dedup/delta) store each payload once.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._dir = directory
        self._lock = threading.Lock()
        self._recipes: Dict[Key, dict] = {}
        self._payloads: Dict[str, np.ndarray] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_dir(directory)

    # -- persistence ------------------------------------------------------
    def _recipe_path(self, key: Key) -> str:
        return os.path.join(self._dir, f"p{key[0]}-v{key[1]}.recipe.json")

    def _load_dir(self, directory: str) -> None:
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".recipe.json"):
                continue
            path = os.path.join(directory, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (ValueError, OSError):
                log.warning("recipes: skipping corrupt file %s", path)
                continue
            key = (int(doc["pid"]), int(doc["ckpt"]))
            for digest, payload_hex in doc.pop("payloads", {}).items():
                if digest not in self._payloads:
                    blob = np.frombuffer(
                        bytes.fromhex(payload_hex), dtype=np.uint8
                    ).copy()
                    blob.flags.writeable = False
                    self._payloads[digest] = blob
            self._recipes[key] = doc

    def _persist(self, key: Key, doc: dict, payloads: Dict[str, np.ndarray]) -> None:
        if self._dir is None:
            return
        out = dict(doc)
        out["payloads"] = {
            digest: blob.tobytes().hex() for digest, blob in payloads.items()
        }
        path = self._recipe_path(key)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(out, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)  # atomic: a crash leaves old or new, not torn

    # -- API ---------------------------------------------------------------
    def save(self, process_id: int, image) -> None:
        """Persist the recipe for one ReducedImage (metadata, uncharged)."""
        key = (process_id, image.ckpt_id)
        doc = {
            "pid": process_id,
            "ckpt": image.ckpt_id,
            "logical_size": image.logical_size,
            "physical_size": image.physical_size,
            "depth": image.depth,
            "base_ckpt": image.base_ckpt,
            "site_level": int(image.site_level),
            "chunks": [
                {
                    "digest": chunk.digest.hex(),
                    "nominal_size": chunk.nominal_size,
                    "kind": chunk.kind,
                    "stored_nominal": chunk.stored_nominal,
                }
                for chunk in image.chunks
            ],
        }
        with self._lock:
            for chunk in image.chunks:
                self._payloads.setdefault(chunk.digest.hex(), chunk.payload)
            # File-backed recipes are self-contained: each file carries every
            # payload its chunks reference, so a single recipe file survives
            # the deletion of the checkpoints it shares chunks with.
            payloads = {
                chunk.digest.hex(): self._payloads[chunk.digest.hex()]
                for chunk in image.chunks
            }
            self._recipes[key] = doc
            self._persist(key, doc, payloads)

    def discard(self, process_id: int, ckpt_id: int) -> None:
        key = (process_id, ckpt_id)
        with self._lock:
            self._recipes.pop(key, None)
            if self._dir is not None:
                try:
                    os.remove(self._recipe_path(key))
                except OSError:
                    pass

    def contains(self, process_id: int, ckpt_id: int) -> bool:
        with self._lock:
            return (process_id, ckpt_id) in self._recipes

    def load(self, process_id: int, ckpt_id: int):
        """Rebuild a ReducedImage from the stored recipe, or None."""
        from repro.reduce.pipeline import ImageChunk, ReducedImage
        from repro.tiers.base import TierLevel

        with self._lock:
            doc = self._recipes.get((process_id, ckpt_id))
            if doc is None:
                return None
            chunks = []
            for spec in doc["chunks"]:
                payload = self._payloads.get(spec["digest"])
                if payload is None:
                    log.warning(
                        "recipes: missing payload %s for p%d ckpt %d",
                        spec["digest"][:12], process_id, ckpt_id,
                    )
                    return None
                chunks.append(
                    ImageChunk(
                        digest=bytes.fromhex(spec["digest"]),
                        nominal_size=int(spec["nominal_size"]),
                        payload=payload,
                        kind=spec["kind"],
                        stored_nominal=int(spec["stored_nominal"]),
                    )
                )
            return ReducedImage(
                ckpt_id=ckpt_id,
                chunks=tuple(chunks),
                logical_size=int(doc["logical_size"]),
                physical_size=int(doc["physical_size"]),
                depth=int(doc["depth"]),
                base_ckpt=doc["base_ckpt"],
                site_level=TierLevel(int(doc["site_level"])),
            )
