"""Per-tier health tracking: circuit breakers over store endpoints.

Each durable endpoint (``node{j}-ssd``, ``pfs``) gets a
:class:`CircuitBreaker` keyed by its telemetry track name.  The breaker is
a classic three-state machine:

* ``CLOSED`` — healthy; failures are counted, successes reset the count.
* ``OPEN`` — after ``breaker_threshold`` *consecutive* failures the tier is
  blacklisted: ``allow()`` returns ``False`` and the flush cascade reroutes
  around it.  Opened-at is stamped on the **virtual** clock.
* ``HALF_OPEN`` — once ``breaker_reset_s`` nominal seconds elapse, a single
  probe operation is admitted; success closes the breaker, failure re-opens
  it and restarts the cool-down.

State transitions are emitted on the trace bus (track ``resilience``) so a
Perfetto timeline shows exactly when a tier went dark and when it healed.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.config import ResilienceConfig
from repro.telemetry import Telemetry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Three-state breaker for one tier endpoint, timed on the virtual clock."""

    def __init__(self, name: str, threshold: int, reset_s: float, clock,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.name = name
        self.threshold = threshold
        self.reset_s = reset_s
        self.clock = clock
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opens = 0
        self._m_opens = (
            telemetry.registry.counter("resilience.breaker_opens")
            if telemetry is not None
            else None
        )

    def _emit(self, event: str) -> None:
        if self.telemetry is not None:
            self.telemetry.bus.instant(
                event, track="resilience", tier=self.name,
                state=self._state, failures=self._failures,
            )

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether an operation against this tier should be attempted now.

        In ``OPEN`` state this returns ``False`` until the cool-down
        elapses, then admits exactly one half-open probe at a time.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self.clock.now() - self._opened_at < self.reset_s:
                    return False
                self._state = HALF_OPEN
                self._probe_inflight = True
                self._emit("breaker-probe")
                return True
            # HALF_OPEN: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            if self._state != CLOSED:
                self._state = CLOSED
                self._emit("breaker-close")

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probe_inflight = False
            if self._state == HALF_OPEN or (
                self._state == CLOSED and self._failures >= self.threshold
            ):
                self._state = OPEN
                self._opened_at = self.clock.now()
                self.opens += 1
                if self._m_opens is not None:
                    self._m_opens.inc()
                self._emit("breaker-open")

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "opens": self.opens,
            }


class HealthRegistry:
    """Lazily-built map of tier endpoint name -> :class:`CircuitBreaker`.

    All methods are no-ops (always healthy) when resilience is disabled, so
    the hot path pays a single attribute check.
    """

    def __init__(self, config: ResilienceConfig, clock,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.config = config
        self.enabled = config.enabled
        self.clock = clock
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        with self._lock:
            brk = self._breakers.get(name)
            if brk is None:
                brk = CircuitBreaker(
                    name, self.config.breaker_threshold,
                    self.config.breaker_reset_s, self.clock, self.telemetry,
                )
                self._breakers[name] = brk
            return brk

    def allow(self, name: str) -> bool:
        """Gate a write/flush against ``name`` (consumes half-open probes)."""
        if not self.enabled:
            return True
        return self.breaker(name).allow()

    def healthy(self, name: str) -> bool:
        """Read-side check: ``False`` only while the breaker is OPEN.

        Unlike :meth:`allow` this never consumes a half-open probe slot, so
        read routing cannot starve the write-side probe.
        """
        if not self.enabled:
            return True
        return self.breaker(name).state != OPEN

    def success(self, name: str) -> None:
        if self.enabled:
            self.breaker(name).record_success()

    def failure(self, name: str) -> None:
        if self.enabled:
            self.breaker(name).record_failure()

    def snapshot(self) -> Dict[str, dict]:
        if not self.enabled:
            return {}
        with self._lock:
            breakers = list(self._breakers.items())
        return {name: brk.snapshot() for name, brk in breakers}
