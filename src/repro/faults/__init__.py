"""Fault injection and self-healing recovery (:class:`FaultConfig` /
:class:`ResilienceConfig`).

The subsystem has two halves that compose but do not require each other:

* **Injection** (:mod:`repro.faults.plan`, :mod:`repro.faults.injector`) —
  a deterministic, seeded :class:`FaultPlan` injecting transient link
  faults (fail mid-transfer, partial bytes charged on the virtual clock),
  tier outage/brownout windows, at-rest blob corruption, and one-shot
  process-crash points between flush stages.

* **Handling** (:mod:`repro.faults.health`, :mod:`repro.faults.retry`,
  :mod:`repro.faults.journal`) — budgeted exponential-backoff retries with
  deterministic jitter, per-tier circuit breakers that reroute the flush
  cascade around a dark tier (with catch-up backfill), post-flush CRC
  re-verification with re-flush, and the crash-consistent manifest journal
  + chunk-recipe sidecar that ``recover_history()`` replays after a crash.

Both default off and are bit-identical to the pre-subsystem runtime when
disabled (``tests/test_faults_equivalence.py``).
"""

from repro.faults.health import CircuitBreaker, HealthRegistry
from repro.faults.injector import FaultDomain, LinkFaultInjector
from repro.faults.journal import ManifestJournal, RecipeStore
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, run_with_retries

__all__ = [
    "CircuitBreaker",
    "FaultDomain",
    "FaultPlan",
    "HealthRegistry",
    "LinkFaultInjector",
    "ManifestJournal",
    "RecipeStore",
    "RetryPolicy",
    "run_with_retries",
]
