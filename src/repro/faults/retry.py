"""Budgeted retry with exponential backoff and deterministic jitter.

Backoff delays are charged on the **virtual** clock, so retries cost
simulated time (and show up in the chaos harness's overhead numbers)
without slowing the host.  Jitter is derived from
:func:`repro.util.rng.derive_seed` over the (stage, checkpoint, attempt)
label path — two runs with the same seed back off identically, which keeps
fault-injected runs reproducible.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from repro.config import ResilienceConfig
from repro.errors import TransientTransferError
from repro.util.rng import derive_seed

_DENOM = float(1 << 64)
T = TypeVar("T")


class RetryPolicy:
    """Per-transfer-class retry budgets + deterministic backoff schedule."""

    def __init__(self, config: ResilienceConfig, seed: int) -> None:
        self.config = config
        self.seed = seed

    def budget(self, class_name: str) -> int:
        """Max retries (beyond the first attempt) for a transfer class."""
        return self.config.retries_for(class_name)

    def backoff(self, attempt: int, *labels) -> float:
        """Nominal seconds to sleep before retry ``attempt`` (0-based)."""
        cfg = self.config
        base = min(
            cfg.backoff_base_s * (cfg.backoff_factor ** attempt),
            cfg.backoff_max_s,
        )
        jitter = derive_seed(self.seed, "jitter", *labels, attempt) / _DENOM
        return base * (1.0 + cfg.jitter * jitter)


def run_with_retries(
    fn: Callable[[], T],
    *,
    policy: Optional[RetryPolicy],
    clock,
    class_name: str,
    labels: tuple,
    on_retry: Optional[Callable[[int, float, Exception], None]] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> T:
    """Run ``fn`` retrying :class:`TransientTransferError` within budget.

    Non-transient errors (cancellation ``TransferError``, lifecycle errors)
    propagate immediately.  With ``policy=None`` this is a plain call —
    zero-overhead when resilience is disabled.
    """
    if policy is None:
        return fn()
    budget = policy.budget(class_name)
    attempt = 0
    while True:
        try:
            return fn()
        except TransientTransferError as exc:
            if attempt >= budget:
                raise
            if should_abort is not None and should_abort():
                raise
            delay = policy.backoff(attempt, *labels)
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            clock.sleep(delay)
            attempt += 1
