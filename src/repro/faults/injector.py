"""Runtime attachment of a :class:`FaultPlan` to links, stores and engines.

The :class:`FaultDomain` is cluster-wide (one per
:class:`~repro.tiers.topology.Cluster`): it owns the plan, attaches a
:class:`LinkFaultInjector` to every Link (same hook discipline as the QoS
scheduler — a ``link.fault_injector`` attribute that is ``None`` when
disabled, so the hot path pays one attribute check), gates tier stores
through outage windows, decides at-rest corruption per put, and arms the
one-shot crash points the flusher trips between stages.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.config import FaultConfig, ResilienceConfig
from repro.errors import TierOfflineError, TransientTransferError
from repro.faults.plan import FaultPlan
from repro.telemetry import Telemetry


class LinkFaultInjector:
    """Per-link transfer-fault source: a thread-safe transfer sequence
    counter over the shared plan, so fault decisions are deterministic per
    (link, arrival order)."""

    def __init__(self, name: str, plan: FaultPlan,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.name = name
        self.plan = plan
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._seq = 0
        self.faults_injected = 0

    def draw(self, nbytes: int) -> Optional[int]:
        """Called at transfer start: bytes after which this transfer fails,
        or ``None`` for a clean transfer."""
        with self._lock:
            seq = self._seq
            self._seq += 1
        return self.plan.transfer_fault(self.name, seq, nbytes)

    def fault(self, nbytes: int, moved: int) -> TransientTransferError:
        """Build the error for a fault that just fired (also counts it)."""
        with self._lock:
            self.faults_injected += 1
        if self.telemetry is not None:
            self.telemetry.bus.instant(
                "fault-transfer", track="faults", link=self.name,
                nbytes=nbytes, moved=moved,
            )
            self.telemetry.registry.counter("faults.transfer").inc()
        return TransientTransferError(
            f"injected transfer fault on {self.name} after "
            f"{moved}/{nbytes} bytes",
            bytes_moved=moved,
        )


class FaultDomain:
    """Cluster-wide fault-injection state and attachment points."""

    def __init__(
        self,
        config: FaultConfig,
        resilience: ResilienceConfig,
        clock,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config
        self.resilience = resilience
        self.clock = clock
        self.telemetry = telemetry
        self.enabled = config.enabled
        self.plan = FaultPlan(config) if config.enabled else None
        #: stores stamp blobs with a pristine CRC whenever either side of
        #: the subsystem is active (injection needs it detectable, recovery
        #: needs it verifiable).
        self.meta_crc = config.enabled or resilience.enabled
        self._lock = threading.Lock()
        self._put_attempts: Dict[Tuple[str, int, int], int] = {}
        self._crash_fired = False
        self.outage_hits = 0
        self.corruptions = 0
        self.crashes = 0

    # -- link transfer faults ----------------------------------------------
    def attach(self, link) -> None:
        """Hook a link (no-op unless transfer faults are configured)."""
        if not self.enabled or self.config.transfer_fault_rate <= 0.0:
            return
        if not self.plan.link_matches(link.name):
            return
        link.fault_injector = LinkFaultInjector(link.name, self.plan, self.telemetry)

    # -- tier outages -------------------------------------------------------
    def tier_gate(self, tier: str, track: str, op: str, key) -> float:
        """Gate a store operation against outage windows.

        Raises :class:`TierOfflineError` inside a hard-outage window;
        returns a slowdown multiplier (``>= 1``) during a brownout, ``1.0``
        when healthy.
        """
        if not self.enabled or not self.config.tier_outages:
            return 1.0
        factor = self.plan.outage(tier, self.clock.now())
        if factor is None:
            return 1.0
        with self._lock:
            self.outage_hits += 1
        if self.telemetry is not None:
            self.telemetry.bus.instant(
                "fault-outage", track="faults", tier=track, op=op,
                factor=factor, key=list(key),
            )
            self.telemetry.registry.counter("faults.outage_hits").inc()
        if factor <= 0.0:
            raise TierOfflineError(f"{track} is offline (injected outage), {op} {key}")
        return 1.0 / factor

    def hard_outage(self, tier: str) -> bool:
        """Whether ``tier`` is inside a hard-outage window right now."""
        if not self.enabled or not self.config.tier_outages:
            return False
        return self.plan.outage(tier, self.clock.now()) == 0.0

    # -- at-rest corruption -------------------------------------------------
    def corruption(self, track: str, key, length: int) -> Optional[int]:
        """Byte offset to flip in the blob being put, or ``None``.

        Attempt-indexed per (store, key) so a re-put after detection draws
        an independent decision.
        """
        if not self.enabled or self.config.corruption_rate <= 0.0:
            return None
        attempt_key = (track, int(key[0]), int(key[1]))
        with self._lock:
            attempt = self._put_attempts.get(attempt_key, 0)
            self._put_attempts[attempt_key] = attempt + 1
        offset = self.plan.corrupt(track, key, attempt, length)
        if offset is None:
            return None
        with self._lock:
            self.corruptions += 1
        if self.telemetry is not None:
            self.telemetry.bus.instant(
                "fault-corrupt", track="faults", tier=track,
                key=list(key), offset=offset, attempt=attempt,
            )
            self.telemetry.registry.counter("faults.corruptions").inc()
        return offset

    # -- crash points -------------------------------------------------------
    def crash_point(self, point: str, ckpt_id: int) -> bool:
        """Whether the configured crash point fires here (at most once)."""
        if not self.enabled or self.config.crash_point is None:
            return False
        with self._lock:
            if self._crash_fired:
                return False
            if not self.plan.crash_matches(point, ckpt_id):
                return False
            self._crash_fired = True
            self.crashes += 1
        if self.telemetry is not None:
            self.telemetry.bus.instant(
                "fault-crash", track="faults", point=point, ckpt=ckpt_id,
            )
            self.telemetry.registry.counter("faults.crashes").inc()
        return True

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "outage_hits": self.outage_hits,
                "corruptions": self.corruptions,
                "crashes": self.crashes,
            }
