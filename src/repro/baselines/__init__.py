"""Comparator runtimes and ablation policies.

* :mod:`~repro.baselines.adios2` — an ADIOS2-BP5-like deferred I/O runtime
  (host staging, no GPU cache);
* :mod:`~repro.baselines.uvm_runtime` — the paper's "optimized UVM"
  comparator on the page-granular UVM simulation;
* :mod:`~repro.baselines.naive` — LRU / FIFO eviction policies pluggable
  into the Score runtime (design-choice ablations).
"""

from repro.baselines.naive import FifoPolicy, LruPolicy
from repro.baselines.adios2 import Adios2Engine
from repro.baselines.uvm_runtime import UvmEngine

__all__ = ["FifoPolicy", "LruPolicy", "Adios2Engine", "UvmEngine"]
