"""The "optimized UVM" comparator runtime (Section 5.2.2).

Checkpoints live in page-granular unified memory
(:class:`~repro.simgpu.uvm.UvmSpace`); the runtime layers exactly the
optimizations the paper grants UVM:

* after a checkpoint is written, ``cudaMemAdviseSetPreferredLocation(host)``
  lets the driver migrate it off the device in the background (the flush);
* a drain thread persists checkpoints to the node-local SSD; under host
  budget pressure the oldest drained checkpoints are dropped from UVM;
* with hints, a prefetch thread issues ``cudaMemPrefetchAsync`` toward the
  device in restore order, throttled so prefetched-but-unconsumed data
  never exceeds the device cache (the paper's explicit consumption
  tracking);
* after a restore, the consumed region is advised back to the host so the
  driver can evict it promptly instead of keeping it under LRU.

What UVM *cannot* avoid — and what the Score runtime's life cycle exists to
fix — is exclusive page residency: evicting device pages always migrates
them (there is no "already flushed, just drop" state), and advising a
checkpoint away from the device means a later restore faults it back in at
fault-replay cost.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.clock import Stopwatch
from repro.core.restore_queue import RestoreQueue
from repro.core.sync import Monitor
from repro.errors import (
    CheckpointNotFound,
    EngineClosedError,
    IntegrityError,
    LifecycleError,
)
from repro.metrics.recorder import OpEvent, OpKind, Recorder
from repro.simgpu.memory import DeviceBuffer, checksum_payload
from repro.simgpu.stream import Stream
from repro.simgpu.uvm import UvmAllocation, UvmSpace
from repro.tiers.topology import ProcessContext


class _UvmCheckpoint:
    __slots__ = (
        "ckpt_id",
        "nominal_size",
        "true_size",
        "checksum",
        "alloc",
        "on_ssd",
        "consumed",
        "busy",
        "prefetch_counted",
    )

    def __init__(self, ckpt_id, nominal_size, true_size, checksum) -> None:
        self.ckpt_id = ckpt_id
        self.nominal_size = nominal_size
        self.true_size = true_size
        self.checksum = checksum
        self.alloc: Optional[UvmAllocation] = None
        self.on_ssd = False
        self.consumed = False
        self.busy = 0  # prefetch/restore currently touching the allocation
        self.prefetch_counted = False  # charged against the prefetch throttle


class UvmEngine:
    """UVM-managed checkpoint engine with the paper's hint optimizations."""

    name = "uvm"

    def __init__(
        self,
        context: ProcessContext,
        recorder: Optional[Recorder] = None,
        verify_restores: bool = True,
        **_ignored,
    ) -> None:
        self.context = context
        self.clock = context.clock
        self.scale = context.scale
        self.spec = context.spec
        self.device = context.device
        self.ssd = context.ssd
        self.process_id = context.process_id
        self.verify_restores = verify_restores
        self.recorder = recorder or Recorder(process_id=self.process_id)
        self.monitor = Monitor(self.clock)
        self.queue = RestoreQueue()
        self.uvm = UvmSpace(
            device_id=self.device.device_id,
            device_capacity=context.config.cache.gpu_cache_size,
            spec=self.spec,
            scale=self.scale,
            clock=self.clock,
            d2h_link=self.device.d2h_link,
            h2d_link=self.device.h2d_link,
        )
        self.host_budget = context.config.cache.host_cache_size
        self._live_bytes = 0
        self._checkpoints: Dict[int, _UvmCheckpoint] = {}
        #: drained-to-SSD checkpoints still live in UVM, oldest first.
        self._reclaimable: "OrderedDict[int, _UvmCheckpoint]" = OrderedDict()
        self._drain_stream = Stream(f"p{self.process_id}-uvm-drain")
        #: device bytes prefetched per the hints but not yet consumed.
        self._prefetched_unconsumed = 0
        self._closed = False
        self._prefetch_thread = threading.Thread(
            target=self._prefetch_loop, name=f"uvm-prefetch-p{self.process_id}", daemon=True
        )
        self._prefetch_thread.start()
        # The paper charges UVM the same slow pinned host-cache warm-up:
        # the usable budget grows at the pinning rate (lazy), or the cost
        # is paid up front.
        self._pin_started_at = self.clock.now()
        self._lazy_pinning = (
            context.config.charge_allocation_cost and context.config.lazy_host_pinning
        )
        if context.config.charge_allocation_cost and not self._lazy_pinning:
            self.clock.sleep(self.host_budget / self.spec.host_pin_bandwidth)

    def _require_open(self) -> None:
        if self._closed:
            raise EngineClosedError(f"UVM engine p{self.process_id} is closed")

    # -- write -------------------------------------------------------------------
    def checkpoint(self, ckpt_id: int, buffer: DeviceBuffer) -> float:
        self._require_open()
        nominal = self.scale.align(buffer.nominal_size)
        started = self.clock.now()
        with self.monitor:
            if ckpt_id in self._checkpoints:
                raise LifecycleError(f"checkpoint {ckpt_id} already exists")
            entry = _UvmCheckpoint(ckpt_id, nominal, buffer.nominal_size, buffer.checksum())
            self._checkpoints[ckpt_id] = entry
            budget_wait_started = self.clock.now()
            self._wait_for_host_budget(nominal)
            blocked = self.clock.now() - budget_wait_started
            self._live_bytes += nominal
            entry.alloc = self.uvm.allocate(f"ckpt-{ckpt_id}", nominal)
        # Populate on device: may inline-evict (migrate!) older pages.
        blocked += self.uvm.write_from_device(entry.alloc, buffer.payload)
        blocked += self.device.d2d_link.transfer(nominal)
        # Flush: advise the region toward the host; the driver migrates it
        # out in the background, then the drain persists it to the SSD.
        self.uvm.advise_preferred_location(entry.alloc, "host")
        self._drain_stream.submit(lambda: self._drain(entry), label=f"drain-{ckpt_id}")
        self.recorder.record(
            OpEvent(
                kind=OpKind.CHECKPOINT,
                ckpt_id=ckpt_id,
                started_at=started,
                blocked=blocked,
                nominal_bytes=nominal,
            )
        )
        return blocked

    def _usable_host_budget(self) -> int:
        if not self._lazy_pinning:
            return self.host_budget
        pinned = int((self.clock.now() - self._pin_started_at) * self.spec.host_pin_bandwidth)
        return min(self.host_budget, pinned)

    def _wait_for_host_budget(self, nominal: int) -> None:
        """Monitor held.  Frees drained checkpoints oldest-first, then waits."""
        while self._live_bytes + nominal > self._usable_host_budget():
            freed = False
            for key, entry in list(self._reclaimable.items()):
                if entry.busy or entry.alloc is None:
                    continue
                if not entry.on_ssd and not entry.consumed:
                    continue  # still the only copy of live data
                self._free_entry(entry)
                del self._reclaimable[key]
                freed = True
                if self._live_bytes + nominal <= self._usable_host_budget():
                    break
            if self._live_bytes + nominal <= self._usable_host_budget():
                return
            if not freed:
                self.monitor.wait(virtual_timeout=0.05)

    def _free_entry(self, entry: _UvmCheckpoint) -> None:
        assert entry.alloc is not None
        self.uvm.free(entry.alloc)
        entry.alloc = None
        self._live_bytes -= entry.nominal_size
        self.monitor.notify_all()

    def _drain(self, entry: _UvmCheckpoint) -> None:
        with self.monitor:
            alloc = entry.alloc
            if alloc is None or entry.consumed:
                return
            entry.busy += 1
        try:
            payload = alloc.payload.copy()
            self.ssd.put((self.process_id, entry.ckpt_id), payload, entry.nominal_size)
        finally:
            with self.monitor:
                entry.busy -= 1
                entry.on_ssd = True
                if not entry.consumed:
                    self._reclaimable[entry.ckpt_id] = entry
                self.monitor.notify_all()

    # -- hints ------------------------------------------------------------------------
    def prefetch_enqueue(self, ckpt_id: int) -> None:
        self._require_open()
        with self.monitor:
            self.queue.enqueue(ckpt_id)
            self.monitor.notify_all()

    def prefetch_start(self) -> None:
        self._require_open()
        with self.monitor:
            self.queue.start()
            self.monitor.notify_all()

    def _prefetch_loop(self) -> None:
        device_cap = self.uvm.device_capacity
        while True:
            target: Optional[_UvmCheckpoint] = None
            needs_ssd_read = False
            with self.monitor:
                while not self._closed:
                    target, needs_ssd_read = self._pick_prefetch(device_cap)
                    if target is not None:
                        break
                    self.monitor.wait(virtual_timeout=0.05)
                if self._closed:
                    return
                target.busy += 1
                if not target.prefetch_counted:
                    target.prefetch_counted = True
                    self._prefetched_unconsumed += target.nominal_size
            try:
                if target.alloc is not None:
                    self.uvm.prefetch_async(target.alloc, "device").wait()
            finally:
                with self.monitor:
                    target.busy -= 1
                    if target.consumed and target.prefetch_counted:
                        # consumed while prefetching: _consume skipped the
                        # release because we were still busy
                        target.prefetch_counted = False
                        self._prefetched_unconsumed -= target.nominal_size
                    self.monitor.notify_all()

    def _pick_prefetch(self, device_cap: int):
        """Monitor held: the next hinted checkpoint to stage, if within the
        consumption-tracking throttle."""
        if not self.queue.started:
            return None, False
        for ckpt_id in self.queue.upcoming(16):
            entry = self._checkpoints.get(ckpt_id)
            if entry is None or entry.consumed or entry.busy:
                continue
            if entry.alloc is None:
                # cudaMemPrefetchAsync only reaches managed memory: an
                # SSD-resident checkpoint is invisible to UVM and will be
                # demand-read at restore time — the multi-tier blindness
                # the paper's runtime exists to fix.
                continue
            if entry.alloc.device_pages == entry.alloc.num_pages:
                continue  # already resident
            if self._prefetched_unconsumed + entry.nominal_size > device_cap:
                return None, False  # throttle: wait for consumption
            return entry, False
        return None, False

    # -- read --------------------------------------------------------------------------
    def recover_size(self, ckpt_id: int) -> int:
        with self.monitor:
            entry = self._checkpoints.get(ckpt_id)
        if entry is None:
            raise CheckpointNotFound(f"unknown checkpoint id {ckpt_id}")
        return entry.true_size

    def restore(self, ckpt_id: int, buffer: DeviceBuffer) -> float:
        self._require_open()
        started = self.clock.now()
        with self.monitor:
            entry = self._checkpoints.get(ckpt_id)
            if entry is None:
                raise CheckpointNotFound(f"unknown checkpoint id {ckpt_id}")
            if entry.consumed:
                raise LifecycleError(f"checkpoint {ckpt_id} was already consumed")
            # Wait out a prefetch touching this allocation.
            busy_wait_started = self.clock.now()
            self.monitor.wait_for(lambda: entry.busy == 0)
            blocked = self.clock.now() - busy_wait_started
            entry.busy += 1
            resident = (
                entry.alloc is not None
                and entry.alloc.device_pages == entry.alloc.num_pages
            )
            source = "GPU" if resident else ("HOST" if entry.alloc is not None else "SSD")
            distance = self._sample_prefetch_distance(ckpt_id)
        try:
            if entry.alloc is None:
                payload, read_seconds = self.ssd.get((self.process_id, ckpt_id))
                blocked += read_seconds
                with self.monitor:
                    budget_wait = self.clock.now()
                    self._wait_for_host_budget(entry.nominal_size)
                    blocked += self.clock.now() - budget_wait
                    self._live_bytes += entry.nominal_size
                    entry.alloc = self.uvm.allocate(f"ckpt-{ckpt_id}", entry.nominal_size)
                    entry.alloc.payload[: payload.size] = payload
            # Touch on device: faults in whatever is not resident.
            payload, fault_seconds = self.uvm.read_to_device(entry.alloc)
            blocked += fault_seconds
            blocked += self.device.d2d_link.transfer(entry.nominal_size)
            buffer.copy_from(payload)
            if self.verify_restores:
                actual = checksum_payload(payload[: buffer.payload.size])
                if actual != entry.checksum:
                    raise IntegrityError(
                        f"checkpoint {ckpt_id} corrupt: "
                        f"{actual:#010x} != {entry.checksum:#010x}"
                    )
        finally:
            with self.monitor:
                entry.busy -= 1
        self._consume(entry, resident)
        self.recorder.record(
            OpEvent(
                kind=OpKind.RESTORE,
                ckpt_id=ckpt_id,
                started_at=started,
                blocked=blocked,
                nominal_bytes=entry.nominal_size,
                prefetch_distance=distance,
                source_level=source,
            )
        )
        return blocked

    def _sample_prefetch_distance(self, ckpt_id: int) -> int:
        count = 0
        for upcoming in self.queue.upcoming(16):
            if upcoming == ckpt_id:
                continue
            entry = self._checkpoints.get(upcoming)
            if (
                entry is not None
                and entry.alloc is not None
                and entry.alloc.device_pages == entry.alloc.num_pages
            ):
                count += 1
            else:
                break
        return count

    def _consume(self, entry: _UvmCheckpoint, was_resident: bool) -> None:
        with self.monitor:
            entry.consumed = True
            self.queue.consume(entry.ckpt_id)
            if entry.prefetch_counted and entry.busy == 0:
                entry.prefetch_counted = False
                self._prefetched_unconsumed -= entry.nominal_size
            alloc = entry.alloc
            self.monitor.notify_all()
        if alloc is not None:
            # The paper's post-consumption advice: preferred location back
            # to the host, so the driver migrates the pages out promptly
            # instead of leaving them to LRU.  Exclusive residency means
            # this *is* a migration — it occupies the driver's copy queue
            # and the D2H link (there is no "just drop" in UVM).
            self.uvm.advise_preferred_location(alloc, "host")
            with self.monitor:
                # Consumed and (if needed) drained: reclaimable for budget.
                self._reclaimable[entry.ckpt_id] = entry
                self.monitor.notify_all()

    # -- maintenance --------------------------------------------------------------------
    def wait_for_flushes(self) -> float:
        self._require_open()
        with Stopwatch(self.clock) as sw:
            self.uvm.synchronize()
            self._drain_stream.synchronize()
        return sw.elapsed

    def stats(self) -> dict:
        with self.monitor:
            return {
                "process_id": self.process_id,
                "checkpoints": len(self._checkpoints),
                "live_uvm_bytes": self._live_bytes,
                "device_resident_bytes": self.uvm.device_resident_bytes,
                "faults": self.uvm.fault_count,
                "evicted_bytes": self.uvm.evicted_bytes,
                "ssd_objects": self.ssd.object_count(),
            }

    def close(self) -> None:
        if self._closed:
            return
        with self.monitor:
            self._closed = True
            self.monitor.notify_all()
        self._prefetch_thread.join()
        self._drain_stream.close(drain=True)
        self.uvm.close()

    def __enter__(self) -> "UvmEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
