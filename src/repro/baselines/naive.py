"""LRU / FIFO eviction ablations.

These replace Algorithm 1 inside the Score runtime's
:class:`~repro.core.cache.CacheBuffer` while keeping everything else (life
cycle, flush cascade, prefetching) identical, isolating the contribution of
the gap-aware sliding-window scoring.

Both policies are *recency seeded*: pick the least-recently-used (or
first-inserted) non-barrier checkpoint fragment, then grow a contiguous
window around it — rightward first, then leftward — until the incoming
checkpoint fits.  Unlike Algorithm 1 they are blind to flush-completion
estimates and prefetch distances, so they routinely pick windows that block
longer or evict soon-to-be-restored checkpoints.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.alloctable import Fragment
from repro.core.scoring import CostFn, Window


class _RecencyPolicy:
    """Shared machinery for recency-seeded window growth."""

    name = "recency"

    def _key(self, frag: Fragment) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def select(
        self,
        fragments: Sequence[Fragment],
        size_new: int,
        cost_of: CostFn,
        limit: Optional[int] = None,
        min_offset: int = 0,
    ) -> Optional[Window]:
        n = len(fragments)
        costs = [cost_of(f) for f in fragments]

        def admissible(idx: int) -> bool:
            if costs[idx].barrier:
                return False
            if limit is not None and fragments[idx].end > limit:
                return False
            if fragments[idx].offset < min_offset:
                return False
            return True

        seeds = sorted(
            (i for i in range(n) if not fragments[i].is_gap and admissible(i)),
            key=lambda i: self._key(fragments[i]),
        )
        # A pure-gap window may already suffice (e.g. after coalescing).
        gap_seeds = [i for i in range(n) if fragments[i].is_gap and admissible(i)]
        for seed in seeds + gap_seeds:
            window = self._grow(fragments, costs, seed, size_new, admissible)
            if window is not None:
                return window
        return None

    def _grow(self, fragments, costs, seed, size_new, admissible) -> Optional[Window]:
        lo = hi = seed
        total = fragments[seed].size
        while total < size_new:
            if hi + 1 < len(fragments) and admissible(hi + 1):
                hi += 1
                total += fragments[hi].size
            elif lo - 1 >= 0 and admissible(lo - 1):
                lo -= 1
                total += fragments[lo].size
            else:
                return None
        p = sum(costs[i].p for i in range(lo, hi + 1))
        s = sum(costs[i].s for i in range(lo, hi + 1))
        return Window(
            start=lo,
            end=hi + 1,
            offset=fragments[lo].offset,
            size=total,
            p_score=p,
            s_score=s,
        )


class LruPolicy(_RecencyPolicy):
    """Evict around the least-recently-accessed checkpoint."""

    name = "lru"

    def _key(self, frag: Fragment) -> float:
        return frag.last_access


class FifoPolicy(_RecencyPolicy):
    """Evict around the oldest-inserted checkpoint."""

    name = "fifo"

    def _key(self, frag: Fragment) -> float:
        return frag.inserted_at
