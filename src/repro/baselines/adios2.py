"""ADIOS2-BP5-like deferred I/O runtime (Section 5.2.1 comparator).

Models the two properties the paper measures for ADIOS2:

* **no dedicated device cache** — every checkpoint pays an on-demand,
  *synchronous* device-to-host copy into a pageable host staging buffer
  (BP5's deferred mode buffers in main memory first), at the unpinned
  staging bandwidth;
* **deferred (asynchronous) drain** — the staging buffer flushes to the
  node-local SSD in the background; when staging is full, checkpoints block
  until the drain frees space.

Restores are fully on demand and read from *storage*: a BP step is readable
once it has drained (readers open the file, not the writer's buffer), so a
restore first waits for the checkpoint's deferred drain, then reads the SSD
and stages back through pageable host memory.  Every operation additionally
pays the engine's (de)serialization of the data into transport buffers
(``HardwareSpec.host_serialize_bandwidth``) — the marshaling work that, in
the paper's measurements, keeps ADIOS2 an order of magnitude below raw PCIe
throughput.  Prefetch hints are accepted but ignored (Table 1 lists ADIOS2
only in the "no hints" row).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.clock import Stopwatch
from repro.core.sync import Monitor
from repro.errors import (
    CheckpointNotFound,
    EngineClosedError,
    IntegrityError,
    LifecycleError,
)
from repro.metrics.recorder import OpEvent, OpKind, Recorder
from repro.simgpu.memory import DeviceBuffer, checksum_payload
from repro.simgpu.stream import Stream
from repro.tiers.topology import ProcessContext


class _StagedCheckpoint:
    __slots__ = ("ckpt_id", "nominal_size", "true_size", "checksum", "payload", "drained")

    def __init__(self, ckpt_id, nominal_size, true_size, checksum, payload) -> None:
        self.ckpt_id = ckpt_id
        self.nominal_size = nominal_size
        self.true_size = true_size
        self.checksum = checksum
        self.payload: Optional[np.ndarray] = payload
        self.drained = False


class Adios2Engine:
    """Deferred-I/O checkpoint engine without a GPU cache tier."""

    name = "adios2"

    def __init__(
        self,
        context: ProcessContext,
        recorder: Optional[Recorder] = None,
        verify_restores: bool = True,
        **_ignored,
    ) -> None:
        self.context = context
        self.clock = context.clock
        self.scale = context.scale
        self.spec = context.spec
        self.device = context.device
        self.ssd = context.ssd
        self.process_id = context.process_id
        self.verify_restores = verify_restores
        self.recorder = recorder or Recorder(process_id=self.process_id)
        self.monitor = Monitor(self.clock)
        self.staging_capacity = context.config.cache.host_cache_size
        self._staged_bytes = 0
        self._checkpoints: Dict[int, _StagedCheckpoint] = {}
        self._drain_stream = Stream(f"p{self.process_id}-adios2-drain")
        self._closed = False
        # The pageable staging buffer is allocated lazily by ADIOS2; charge
        # nothing up front (it has no pinning cost — that is also why its
        # transfers run at the slower pageable rate).

    def _require_open(self) -> None:
        if self._closed:
            raise EngineClosedError(f"ADIOS2 engine p{self.process_id} is closed")

    # -- write ------------------------------------------------------------------
    def checkpoint(self, ckpt_id: int, buffer: DeviceBuffer) -> float:
        self._require_open()
        nominal = self.scale.align(buffer.nominal_size)
        started = self.clock.now()
        with self.monitor:
            if ckpt_id in self._checkpoints:
                raise LifecycleError(f"checkpoint {ckpt_id} already exists")
            # Block until the deferred drain frees staging space.
            wait_started = self.clock.now()
            self.monitor.wait_for(
                lambda: self._staged_bytes + nominal <= self.staging_capacity
            )
            blocked = self.clock.now() - wait_started
            self._staged_bytes += nominal
        # Serialize into the BP transport buffer, then the synchronous
        # on-demand D2H at the pageable staging rate: the cost of having no
        # device cache tier.
        serialize = nominal / self.spec.host_serialize_bandwidth
        self.clock.sleep(serialize)
        blocked += serialize
        blocked += self.device.d2h_link.transfer(
            nominal + self._pageable_penalty_bytes(nominal)
        )
        entry = _StagedCheckpoint(
            ckpt_id, nominal, buffer.nominal_size, buffer.checksum(), buffer.payload.copy()
        )
        with self.monitor:
            self._checkpoints[ckpt_id] = entry
        self._drain_stream.submit(lambda: self._drain(entry), label=f"drain-{ckpt_id}")
        self.recorder.record(
            OpEvent(
                kind=OpKind.CHECKPOINT,
                ckpt_id=ckpt_id,
                started_at=started,
                blocked=blocked,
                nominal_bytes=nominal,
            )
        )
        return blocked

    def _pageable_penalty_bytes(self, nominal: int) -> int:
        """Extra bytes-equivalent so the pageable path runs at the unpinned
        rate while still contending on the shared PCIe link."""
        ratio = self.spec.d2h_bandwidth / self.spec.d2h_unpinned_bandwidth
        return int(nominal * (ratio - 1.0)) if ratio > 1.0 else 0

    def _drain(self, entry: _StagedCheckpoint) -> None:
        self.ssd.put((self.process_id, entry.ckpt_id), entry.payload, entry.nominal_size)
        with self.monitor:
            entry.drained = True
            entry.payload = None  # staging space released
            self._staged_bytes -= entry.nominal_size
            self.monitor.notify_all()

    # -- hints (accepted, unused) ----------------------------------------------------
    def prefetch_enqueue(self, ckpt_id: int) -> None:
        self._require_open()

    def prefetch_start(self) -> None:
        self._require_open()

    # -- read ----------------------------------------------------------------------------
    def recover_size(self, ckpt_id: int) -> int:
        with self.monitor:
            entry = self._checkpoints.get(ckpt_id)
        if entry is None:
            raise CheckpointNotFound(f"unknown checkpoint id {ckpt_id}")
        return entry.true_size

    def restore(self, ckpt_id: int, buffer: DeviceBuffer) -> float:
        self._require_open()
        started = self.clock.now()
        with self.monitor:
            entry = self._checkpoints.get(ckpt_id)
            if entry is None:
                raise CheckpointNotFound(f"unknown checkpoint id {ckpt_id}")
            # A BP step is readable only once it reached storage: wait for
            # the deferred drain to land this checkpoint.
            wait_started = self.clock.now()
            self.monitor.wait_for(lambda: entry.drained)
            blocked = self.clock.now() - wait_started
        source = "SSD"
        payload, read_seconds = self.ssd.get((self.process_id, ckpt_id))
        blocked += read_seconds
        # Deserialize, then stage through pageable host memory to the GPU.
        deserialize = entry.nominal_size / self.spec.host_serialize_bandwidth
        self.clock.sleep(deserialize)
        blocked += deserialize
        blocked += self.device.h2d_link.transfer(
            entry.nominal_size + self._pageable_penalty_bytes(entry.nominal_size)
        )
        buffer.copy_from(payload)
        if self.verify_restores:
            actual = checksum_payload(payload[: buffer.payload.size])
            if actual != entry.checksum:
                raise IntegrityError(
                    f"checkpoint {ckpt_id} corrupt: {actual:#010x} != {entry.checksum:#010x}"
                )
        self.recorder.record(
            OpEvent(
                kind=OpKind.RESTORE,
                ckpt_id=ckpt_id,
                started_at=started,
                blocked=blocked,
                nominal_bytes=entry.nominal_size,
                prefetch_distance=0,
                source_level=source,
            )
        )
        return blocked

    # -- maintenance ---------------------------------------------------------------------
    def wait_for_flushes(self) -> float:
        self._require_open()
        with Stopwatch(self.clock) as sw:
            self._drain_stream.synchronize()
        return sw.elapsed

    def stats(self) -> dict:
        with self.monitor:
            return {
                "process_id": self.process_id,
                "checkpoints": len(self._checkpoints),
                "staged_bytes": self._staged_bytes,
                "ssd_objects": self.ssd.object_count(),
            }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._drain_stream.close(drain=True)

    def __enter__(self) -> "Adios2Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
