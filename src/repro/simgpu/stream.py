"""CUDA-like streams and events.

A :class:`Stream` is an ordered asynchronous work queue serviced by one
daemon thread — the analogue of a CUDA stream bound to a dedicated copy
engine.  Work items are plain callables; submission returns an
:class:`Event` that can be queried, waited on, and that captures any
exception raised by the work item (re-raised in the waiter, mirroring how
the real runtime surfaces asynchronous CUDA errors).

The checkpoint runtime creates *separate* streams for flushing and
prefetching per direction (Section 4.3.1), so D2H flushes, H2D prefetches
and D2D cache copies all overlap — the simulated :class:`Link` underneath
provides the bandwidth contention.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

from repro.errors import TransferError


class Event:
    """Completion handle for one submitted work item."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._done = threading.Event()
        self._error: Optional[BaseException] = None
        self._cancelled = False
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def _finish(self, error: Optional[BaseException] = None) -> None:
        self._error = error
        with self._cb_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def add_done_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the work item completes (immediately if it
        already has).  Callbacks fire on the stream's worker thread — the
        event-driven completion handoff that replaces polling ``query()``
        loops (streamed cascade stages chain on these instead of waiting for
        whole payloads).
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def query(self) -> bool:
        """True when the work item has finished (successfully or not)."""
        return self._done.is_set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until completion; re-raise the work item's exception.

        ``timeout`` is in *wall-clock* seconds (used only as a watchdog by
        tests); on timeout a :class:`TransferError` is raised.
        """
        if not self._done.wait(timeout):
            raise TransferError(f"timed out waiting for event {self.label!r}")
        if self._error is not None:
            raise self._error


class Stream:
    """An ordered asynchronous work queue with one worker thread."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        self._thread = threading.Thread(target=self._run, name=f"stream-{name}", daemon=True)
        self._thread.start()

    def submit(self, work: Callable[[], None], label: str = "") -> Event:
        """Enqueue ``work``; it runs after everything previously submitted."""
        event = Event(label or getattr(work, "__name__", "work"))
        with self._lock:
            if self._closed:
                raise TransferError(f"stream {self.name!r} is closed")
            self._queue.append((work, event))
            self._in_flight += 1
            self._wakeup.notify()
        return event

    def synchronize(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted work item has completed.

        ``timeout`` is in wall-clock seconds; returns ``False`` when work is
        still in flight at the deadline (``True`` otherwise, including the
        no-timeout case, which waits indefinitely).
        """
        with self._lock:
            return self._idle.wait_for(lambda: self._in_flight == 0, timeout)

    def wait_depth_below(self, depth: int, timeout: Optional[float] = None) -> bool:
        """Block until fewer than ``depth`` items are in flight.

        Backpressure primitive: ``checkpoint()`` admission control parks on
        this when the flush backlog hits ``SchedConfig.max_flush_backlog``.
        ``timeout`` is in wall-clock seconds; returns ``False`` on expiry.
        """
        with self._lock:
            return self._idle.wait_for(lambda: self._in_flight < depth, timeout)

    @property
    def depth(self) -> int:
        """Number of submitted-but-unfinished work items."""
        with self._lock:
            return self._in_flight

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; optionally wait for the queue to drain.

        With ``drain=False`` queued-but-unstarted items are cancelled (their
        events complete with ``cancelled`` set and a :class:`TransferError`).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    _, event = self._queue.popleft()
                    event._cancelled = True
                    event._finish(TransferError(f"stream {self.name!r} closed"))
                    self._in_flight -= 1
                if self._in_flight == 0:
                    self._idle.notify_all()
            self._wakeup.notify()
        self._thread.join()

    def _run(self) -> None:
        while True:
            with self._lock:
                self._wakeup.wait_for(lambda: self._queue or self._closed)
                if not self._queue:
                    return  # closed and drained
                work, event = self._queue.popleft()
            error: Optional[BaseException] = None
            try:
                work()
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiter
                error = exc
            event._finish(error)
            with self._lock:
                self._in_flight -= 1
                # Every completion wakes depth waiters (wait_depth_below),
                # not just the transition to idle.
                self._idle.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stream({self.name!r}, depth={self.depth})"
