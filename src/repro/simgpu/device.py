"""One simulated GPU: HBM arena plus interconnect endpoints.

A :class:`Device` owns a private intra-device link (HBM fabric, used by
device-to-device cache copies) and references the node-shared PCIe links for
the two host directions (two GPUs share one physical link on a DGX-A100,
which is where the paper's device↔host contention comes from).

Streams are created per client so the checkpoint runtime can dedicate
separate engines to flushing and prefetching (Section 4.3.1).
"""

from __future__ import annotations

from typing import Optional

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.simgpu.bandwidth import Link
from repro.simgpu.memory import Arena, DeviceBuffer
from repro.simgpu.stream import Stream


class Device:
    """A single GPU with its HBM and interconnect endpoints."""

    def __init__(
        self,
        device_id: int,
        spec: HardwareSpec,
        scale: ScaleModel,
        clock: VirtualClock,
        d2h_link: Optional[Link] = None,
        h2d_link: Optional[Link] = None,
    ) -> None:
        self.device_id = device_id
        self.spec = spec
        self.scale = scale
        self.clock = clock
        self.d2d_link = Link(
            f"gpu{device_id}-hbm", spec.d2d_bandwidth, clock, latency=spec.transfer_latency
        )
        # Stand-alone devices (unit tests) get private PCIe links; inside a
        # Node the links are shared between gpus_per_pcie_link devices.
        self.d2h_link = d2h_link or Link(
            f"gpu{device_id}-pcie-d2h",
            spec.d2h_bandwidth,
            clock,
            latency=spec.transfer_latency,
        )
        self.h2d_link = h2d_link or Link(
            f"gpu{device_id}-pcie-h2d",
            spec.h2d_bandwidth,
            clock,
            latency=spec.transfer_latency,
        )
        self._streams = []

    def alloc_arena(self, nominal_capacity: int, charge_cost: bool = True) -> Arena:
        """Pre-allocate a contiguous HBM cache arena (Section 4.1.4).

        ``charge_cost`` sleeps for the one-off allocation time at the HBM
        allocation rate; the arena is then reused for the whole run.
        """
        if charge_cost:
            self.clock.sleep(nominal_capacity / self.spec.gpu_alloc_bandwidth)
        return Arena(f"gpu{self.device_id}-cache", nominal_capacity, self.scale)

    def alloc_buffer(self, nominal_size: int) -> DeviceBuffer:
        """An application-owned HBM buffer (a ``VELOC_Mem_protect`` region)."""
        return DeviceBuffer(self.scale.align(nominal_size), self.scale, self.device_id)

    def create_stream(self, name: str) -> Stream:
        """A dedicated asynchronous work queue (CUDA-stream analogue)."""
        stream = Stream(f"gpu{self.device_id}-{name}")
        self._streams.append(stream)
        return stream

    def close(self) -> None:
        """Drain and stop every stream created on this device."""
        for stream in self._streams:
            stream.close(drain=True)
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.device_id})"
