"""Numpy-backed memory arenas and application buffers.

Everything visible to the allocation logic is expressed in *nominal* bytes;
an :class:`Arena` translates nominal offsets/sizes into its scaled backing
store (``ScaleModel.data_scale`` nominal bytes per stored byte).  The
checkpoint payloads are real bytes — restores are checksum-verified by the
test-suite — so tier-to-tier copies genuinely move data.

:class:`DeviceBuffer` / :class:`HostBuffer` model application-owned
allocations (the protected memory regions of ``VELOC_Mem_protect``), with a
nominal size used for all cost arithmetic and a scaled payload.
"""

from __future__ import annotations

import threading
import zlib
from typing import Optional

import numpy as np

from repro.config import ScaleModel
from repro.errors import AllocationError, ConfigError


class Arena:
    """A contiguous pre-allocated byte arena addressed in nominal units."""

    def __init__(self, name: str, nominal_capacity: int, scale: ScaleModel) -> None:
        if nominal_capacity <= 0:
            raise ConfigError(f"arena capacity must be positive: {nominal_capacity}")
        if nominal_capacity % scale.alignment != 0:
            raise ConfigError(
                f"arena capacity {nominal_capacity} not aligned to {scale.alignment}"
            )
        self.name = name
        self.nominal_capacity = int(nominal_capacity)
        self.scale = scale
        self._payload = np.zeros(scale.payload_bytes(nominal_capacity), dtype=np.uint8)
        self._lock = threading.Lock()

    @property
    def payload_capacity(self) -> int:
        return self._payload.size

    def _slice(self, nominal_offset: int, nominal_size: int) -> slice:
        if nominal_offset < 0 or nominal_size < 0:
            raise AllocationError(
                f"negative arena access at {nominal_offset}+{nominal_size}"
            )
        if nominal_offset + nominal_size > self.nominal_capacity:
            raise AllocationError(
                f"arena {self.name!r} access [{nominal_offset}, "
                f"{nominal_offset + nominal_size}) exceeds capacity "
                f"{self.nominal_capacity}"
            )
        start = self.scale.payload_bytes(nominal_offset)
        length = self.scale.payload_bytes(self.scale.align(nominal_size))
        return slice(start, start + length)

    def write(self, nominal_offset: int, data: np.ndarray) -> None:
        """Copy ``data`` (payload bytes) into the arena at a nominal offset.

        The extent is the *aligned* slice; when ``data`` is shorter than the
        alignment rounding, the tail is zeroed so no stale bytes from a
        previous occupant of the extent survive (they would corrupt
        checksums of whole-extent reads).
        """
        size = int(data.size)
        sl = self._slice(nominal_offset, size * self.scale.data_scale)
        with self._lock:
            self._payload[sl.start : sl.start + size] = data
            if sl.start + size < sl.stop:
                self._payload[sl.start + size : sl.stop] = 0

    def read(
        self, nominal_offset: int, nominal_size: int, copy: bool = True
    ) -> np.ndarray:
        """Payload bytes for a nominal range.

        ``copy=True`` returns an owned copy; ``copy=False`` a read-only view
        into the arena (zero-copy) — the caller must guarantee the extent is
        not reclaimed or overwritten while the view is in use.
        """
        nominal_size = self.scale.align(nominal_size)
        sl = self._slice(nominal_offset, nominal_size)
        with self._lock:
            if copy:
                return self._payload[sl].copy()
            view = self._payload[sl]
            view.flags.writeable = False
            return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Arena({self.name!r}, {self.nominal_capacity}B nominal)"


class _AppBuffer:
    """Base for application-owned buffers with a nominal size."""

    location = "abstract"

    def __init__(self, nominal_size: int, scale: ScaleModel) -> None:
        if nominal_size <= 0:
            raise ConfigError(f"buffer size must be positive: {nominal_size}")
        aligned = scale.align(nominal_size)
        if aligned != nominal_size:
            raise ConfigError(
                f"buffer size {nominal_size} must be aligned to {scale.alignment}"
            )
        self.nominal_size = int(nominal_size)
        self.scale = scale
        self.payload = np.zeros(scale.payload_bytes(nominal_size), dtype=np.uint8)

    _POOL: Optional[np.ndarray] = None

    def fill_random(self, rng: np.random.Generator) -> None:
        """Fill with deterministic pseudo-random bytes.

        Uses a lazily-built shared random pool with a per-call rotation +
        XOR tweak instead of drawing fresh bytes: payload generation sits on
        the benchmark's application critical path and must stay cheap, while
        checksums still differ call to call.
        """
        cls = _AppBuffer
        if cls._POOL is None or cls._POOL.size < self.payload.size:
            pool_rng = np.random.default_rng(0xC0FFEE)
            size = max(1 << 20, self.payload.size)
            cls._POOL = pool_rng.integers(0, 256, size=size, dtype=np.uint8)
        start = int(rng.integers(0, cls._POOL.size - self.payload.size + 1))
        tweak = np.uint8(int(rng.integers(0, 256)))
        np.bitwise_xor(
            cls._POOL[start : start + self.payload.size], tweak, out=self.payload
        )

    def checksum(self) -> int:
        """CRC32 of the payload (used for end-to-end restore verification)."""
        return zlib.crc32(self.payload)  # buffer protocol: no tobytes() copy

    def copy_from(self, data: np.ndarray) -> None:
        if data.size < self.payload.size:
            raise AllocationError(
                f"payload of {data.size} bytes cannot fill buffer of "
                f"{self.payload.size}"
            )
        self.payload[:] = data[: self.payload.size]


class DeviceBuffer(_AppBuffer):
    """An application buffer resident in GPU HBM."""

    location = "device"

    def __init__(self, nominal_size: int, scale: ScaleModel, device_id: int = 0) -> None:
        super().__init__(nominal_size, scale)
        self.device_id = device_id


class HostBuffer(_AppBuffer):
    """An application buffer resident in host memory.

    ``pinned`` host buffers transfer at the full PCIe rate; pageable ones at
    the unpinned staging rate (what the ADIOS2 baseline pays).
    """

    location = "host"

    def __init__(self, nominal_size: int, scale: ScaleModel, pinned: bool = True) -> None:
        super().__init__(nominal_size, scale)
        self.pinned = pinned


def checksum_payload(data: np.ndarray) -> int:
    """CRC32 of raw payload bytes.

    Feeds the array's buffer straight into ``zlib.crc32`` — for the usual
    contiguous case this checksums in place instead of materializing a
    ``tobytes()`` copy of the whole payload.
    """
    return zlib.crc32(np.ascontiguousarray(data))


def make_payload(
    nominal_size: int, scale: ScaleModel, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Payload array for an (aligned) nominal size, optionally randomized."""
    size = scale.payload_bytes(scale.align(nominal_size))
    if rng is None:
        return np.zeros(size, dtype=np.uint8)
    return rng.integers(0, 256, size=size, dtype=np.uint8)
