"""Page-granular unified-virtual-memory simulation.

This models the behaviour the paper attributes to Nvidia UVM
(Section 5.2.2) closely enough to reproduce its cost structure:

* Managed allocations are carved into pages (``HardwareSpec.uvm_page_size``).
  A page is resident either on the device or on the host — migration is
  exclusive (the source copy is invalidated), which is why **every eviction
  of device-resident pages pays a device-to-host migration**, the paper's
  central criticism ("migrating the checkpoints before eviction").
* Device residency is capped (the experiment's GPU cache size).  Capacity
  pressure evicts least-recently-used allocations' pages with writeback.
* On-demand access to non-resident pages *faults*: pages migrate in
  fault-replay groups, each paying ``uvm_fault_latency``, at the (slower)
  ``uvm_migration_bandwidth``.
* ``prefetch_async`` (cudaMemPrefetchAsync) migrates without fault penalty
  at full link bandwidth, in the background.
* ``advise_preferred_location`` (cudaMemAdviseSetPreferredLocation) marks an
  allocation so the next background sweep migrates it toward its preferred
  home — the paper's trick for evicting consumed checkpoints promptly.

Residency is tracked per allocation as a contiguous page count: the
checkpoint workloads always touch whole checkpoints, so partial-residency
patterns within an allocation do not arise.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.errors import UvmError
from repro.simgpu.bandwidth import Link
from repro.simgpu.stream import Event, Stream


class UvmAllocation:
    """One managed region: nominal size, payload bytes, residency state."""

    def __init__(self, name: str, nominal_size: int, scale: ScaleModel, page_size: int) -> None:
        self.name = name
        self.nominal_size = int(nominal_size)
        self.scale = scale
        self.page_size = int(page_size)
        self.num_pages = -(-self.nominal_size // self.page_size)  # ceil
        self.payload = np.zeros(scale.payload_bytes(scale.align(nominal_size)), dtype=np.uint8)
        #: pages currently resident on the device (0..num_pages)
        self.device_pages = 0
        #: "device" | "host" | None — cudaMemAdviseSetPreferredLocation
        self.preferred_location: Optional[str] = None
        self.freed = False

    @property
    def device_bytes(self) -> int:
        return min(self.device_pages * self.page_size, self.nominal_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UvmAllocation({self.name!r}, {self.nominal_size}B, "
            f"{self.device_pages}/{self.num_pages} pages on device)"
        )


class UvmSpace:
    """Unified memory manager for one device."""

    def __init__(
        self,
        device_id: int,
        device_capacity: int,
        spec: HardwareSpec,
        scale: ScaleModel,
        clock: VirtualClock,
        d2h_link: Link,
        h2d_link: Link,
    ) -> None:
        self.device_id = device_id
        self.device_capacity = int(device_capacity)
        self.spec = spec
        self.scale = scale
        self.clock = clock
        self.d2h_link = d2h_link
        self.h2d_link = h2d_link
        self._lock = threading.RLock()
        self._space_available = threading.Condition(self._lock)
        #: LRU order: oldest first.  Only allocations with device pages.
        self._lru: "OrderedDict[str, UvmAllocation]" = OrderedDict()
        self._allocations: Dict[str, UvmAllocation] = {}
        self._prefetch_stream = Stream(f"gpu{device_id}-uvm-prefetch")
        # counters
        self.fault_count = 0
        self.faulted_bytes = 0
        self.evicted_bytes = 0
        self.prefetched_bytes = 0

    # -- allocation lifecycle ---------------------------------------------
    def allocate(self, name: str, nominal_size: int) -> UvmAllocation:
        with self._lock:
            if name in self._allocations:
                raise UvmError(f"managed allocation {name!r} already exists")
            alloc = UvmAllocation(
                name, self.scale.align(nominal_size), self.scale, self.spec.uvm_page_size
            )
            self._allocations[name] = alloc
            return alloc

    def free(self, alloc: UvmAllocation) -> None:
        """Release a managed region; device pages are dropped without
        migration (the data is gone, as with ``cudaFree``)."""
        with self._lock:
            if alloc.freed:
                raise UvmError(f"double free of {alloc.name!r}")
            alloc.freed = True
            alloc.device_pages = 0
            self._lru.pop(alloc.name, None)
            self._allocations.pop(alloc.name, None)
            self._space_available.notify_all()

    # -- advice / hints -----------------------------------------------------
    def advise_preferred_location(self, alloc: UvmAllocation, location: Optional[str]) -> None:
        if location not in (None, "host", "device"):
            raise UvmError(f"bad preferred location: {location!r}")
        with self._lock:
            self._check_live(alloc)
            alloc.preferred_location = location
        if location == "host" and alloc.device_pages:
            # The driver migrates advised-away pages out in the background.
            self._prefetch_stream.submit(
                lambda: self._migrate_to_host(alloc), label=f"advise-out-{alloc.name}"
            )

    def prefetch_async(self, alloc: UvmAllocation, destination: str = "device") -> Event:
        """cudaMemPrefetchAsync: background migration without fault cost."""
        if destination not in ("host", "device"):
            raise UvmError(f"bad prefetch destination: {destination!r}")
        with self._lock:
            self._check_live(alloc)
        if destination == "device":
            work = lambda: self._migrate_to_device(alloc, faulted=False)  # noqa: E731
        else:
            work = lambda: self._migrate_to_host(alloc)  # noqa: E731
        return self._prefetch_stream.submit(work, label=f"prefetch-{alloc.name}")

    # -- access paths --------------------------------------------------------
    def write_from_device(self, alloc: UvmAllocation, payload: np.ndarray) -> float:
        """Device kernel writes the whole region.

        Non-resident pages fault in (first-touch population is cheap, but a
        region that previously migrated to host must come back).  Returns
        the accounted nominal seconds the access blocked.
        """
        seconds = self._migrate_to_device(alloc, faulted=True)
        alloc.payload[: payload.size] = payload
        return seconds

    def read_to_device(self, alloc: UvmAllocation):
        """Device kernel reads the whole region; faults pull pages back.

        Returns ``(payload copy, accounted nominal seconds blocked)``.
        """
        seconds = self._migrate_to_device(alloc, faulted=True)
        return alloc.payload.copy(), seconds

    # -- internals ------------------------------------------------------------
    def _check_live(self, alloc: UvmAllocation) -> None:
        if alloc.freed:
            raise UvmError(f"use of freed allocation {alloc.name!r}")

    def _touch_lru(self, alloc: UvmAllocation) -> None:
        self._lru.pop(alloc.name, None)
        if alloc.device_pages:
            self._lru[alloc.name] = alloc

    def _migrate_to_device(self, alloc: UvmAllocation, faulted: bool) -> float:
        """Returns the accounted nominal seconds the migration blocked."""
        with self._lock:
            self._check_live(alloc)
            missing = alloc.num_pages - alloc.device_pages
            if missing <= 0:
                self._touch_lru(alloc)
                return 0.0
            need_bytes = missing * alloc.page_size
            seconds = self._make_room(need_bytes, exclude=alloc)
            alloc.device_pages = alloc.num_pages
            self._touch_lru(alloc)
        # Pay migration cost outside the lock so other allocations progress.
        if faulted:
            groups = -(-missing // self.spec.uvm_fault_pages_per_group)
            fault_cost = groups * self.spec.uvm_fault_latency
            self.clock.sleep(fault_cost)
            seconds += fault_cost
            duration_bw = self.spec.uvm_migration_bandwidth
            with self._lock:
                self.fault_count += groups
                self.faulted_bytes += need_bytes
        else:
            duration_bw = self.h2d_link.bandwidth
            with self._lock:
                self.prefetched_bytes += need_bytes
        # Move the bytes through the shared H2D link, derated to the
        # migration bandwidth for the faulted path.
        if duration_bw < self.h2d_link.bandwidth:
            extra = need_bytes / duration_bw - need_bytes / self.h2d_link.bandwidth
            self.clock.sleep(extra)
            seconds += extra
        seconds += self.h2d_link.transfer(need_bytes)
        return seconds

    def _migrate_to_host(self, alloc: UvmAllocation) -> float:
        with self._lock:
            if alloc.freed:
                return 0.0
            pages = alloc.device_pages
            if pages == 0:
                return 0.0
            alloc.device_pages = 0
            self._lru.pop(alloc.name, None)
            moved = pages * alloc.page_size
            self.evicted_bytes += moved
            self._space_available.notify_all()
        return self.d2h_link.transfer(moved)

    def _make_room(self, need_bytes: int, exclude: UvmAllocation) -> float:
        """Evict LRU allocations until ``need_bytes`` fit.  Lock held.

        Returns the accounted nominal seconds spent on inline writebacks."""
        if need_bytes > self.device_capacity:
            raise UvmError(
                f"allocation needs {need_bytes} device bytes but the UVM "
                f"device cache holds only {self.device_capacity}"
            )
        seconds = 0.0
        while self._device_resident_bytes() + need_bytes > self.device_capacity:
            victim = self._pick_victim(exclude)
            if victim is None:
                raise UvmError(
                    "UVM device cache exhausted with no evictable allocation"
                )
            pages = victim.device_pages
            victim.device_pages = 0
            self._lru.pop(victim.name, None)
            moved = pages * victim.page_size
            self.evicted_bytes += moved
            # Writeback migration happens inline: the faulting/allocating
            # access stalls behind it, exactly the UVM behaviour the paper
            # measures.  Release the lock while the bytes move.
            self._lock.release()
            try:
                seconds += self.d2h_link.transfer(moved)
            finally:
                self._lock.acquire()
        return seconds

    def _pick_victim(self, exclude: UvmAllocation) -> Optional[UvmAllocation]:
        # Prefer allocations advised toward the host, then LRU order.
        for alloc in self._lru.values():
            if alloc is not exclude and alloc.preferred_location == "host":
                return alloc
        for alloc in self._lru.values():
            if alloc is not exclude:
                return alloc
        return None

    def _device_resident_bytes(self) -> int:
        return sum(a.device_pages * a.page_size for a in self._lru.values())

    @property
    def device_resident_bytes(self) -> int:
        with self._lock:
            return self._device_resident_bytes()

    def synchronize(self) -> None:
        """Wait for background advice/prefetch migrations to finish."""
        self._prefetch_stream.synchronize()

    def close(self) -> None:
        self._prefetch_stream.close(drain=True)
