"""Shared-interconnect bandwidth model.

A :class:`Link` represents one finite-bandwidth resource: a PCIe Gen 4 link
(shared by two GPUs on a DGX-A100), the per-GPU HBM fabric, a node-local
NVMe drive, or a node's share of the parallel file system.

Contention model: a transfer is split into fixed-size nominal chunks and the
chunks of concurrent transfers interleave through a FIFO mutex.  Two steady
concurrent users therefore each observe ~half the link bandwidth — the
behaviour the paper's scalability study depends on — while head-of-line
blocking is bounded by one chunk.  The per-transfer ``latency`` models
command submission cost and is paid once per transfer, outside the mutex.

The link also keeps running totals (``busy_time``, ``bytes_moved``,
``pending_bytes``) used both for metrics and by the Score runtime's
``predict_evictable`` estimator (Section 4.2: the estimation accounts for
"other enqueued flushes and prefetches that compete for bandwidth").
"""

from __future__ import annotations

import threading
import time
from typing import Optional, TYPE_CHECKING

from repro.clock import SPIN_THRESHOLD, VirtualClock
from repro.errors import ConfigError, TransferError
from repro.util.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.request import TransferRequest
    from repro.sched.scheduler import LinkScheduler

#: Contended transfers fold this many chunks of stats into one lock
#: acquisition; the batch is always flushed when the transfer finishes (or
#: is cancelled), so ``pending_bytes`` drifts by at most one batch.
STATS_BATCH_CHUNKS = 8


class Link:
    """A finite-bandwidth interconnect shared by any number of clients."""

    def __init__(
        self,
        name: str,
        bandwidth: float,
        clock: VirtualClock,
        latency: float = 0.0,
        chunk_size: int = 8 * MiB,
    ) -> None:
        if bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive: {bandwidth}")
        if latency < 0:
            raise ConfigError(f"latency must be non-negative: {latency}")
        if chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive: {chunk_size}")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.chunk_size = int(chunk_size)
        self._clock = clock
        #: optional QoS arbiter (:class:`repro.sched.LinkScheduler`); when
        #: attached, transfers carrying a :class:`TransferRequest` are served
        #: in priority/WFQ order in bounded quanta instead of the FIFO chunk
        #: interleave.  Attached by :class:`repro.sched.SchedContext`.
        self.scheduler: Optional["LinkScheduler"] = None
        #: optional fault source (:class:`repro.faults.LinkFaultInjector`);
        #: when attached (by :class:`repro.faults.FaultDomain`), transfers
        #: may fail mid-flight with :class:`TransientTransferError` after a
        #: deterministically-drawn fraction of their bytes — the moved
        #: bytes stay charged on the virtual clock and the link stats.
        self.fault_injector = None
        self._mutex = threading.Lock()
        self._stats_lock = threading.Lock()
        self._busy_time = 0.0
        self._bytes_moved = 0
        self._pending_bytes = 0
        self._transfers = 0
        self._active = 0  # transfers currently inside transfer()

    # -- observability ----------------------------------------------------
    @property
    def busy_time(self) -> float:
        """Total nominal seconds this link spent moving bytes."""
        with self._stats_lock:
            return self._busy_time

    @property
    def bytes_moved(self) -> int:
        with self._stats_lock:
            return self._bytes_moved

    @property
    def pending_bytes(self) -> int:
        """Bytes announced (via :meth:`transfer`) but not yet moved."""
        with self._stats_lock:
            return self._pending_bytes

    @property
    def transfer_count(self) -> int:
        with self._stats_lock:
            return self._transfers

    def estimate(self, nbytes: int, include_pending: bool = True) -> float:
        """Nominal seconds to move ``nbytes``, optionally queueing behind
        the bytes already announced on this link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        backlog = self.pending_bytes if include_pending else 0
        return self.latency + (nbytes + backlog) / self.bandwidth

    # -- the transfer itself ----------------------------------------------
    def transfer(
        self,
        nbytes: int,
        cancelled: Optional[threading.Event] = None,
        request: Optional["TransferRequest"] = None,
    ) -> float:
        """Move ``nbytes`` nominal bytes across the link, blocking the
        caller for the (contended) transfer duration.

        Returns the *accounted* nominal duration: submission latency, plus
        bytes over bandwidth, plus the time spent queued behind other
        transfers' chunks.  The accounted figure is what callers should
        charge to blocking-time metrics — it excludes the Python-level
        bookkeeping around the sleeps, which at aggressive ``time_scale``
        would otherwise dominate short transfers when measured by wall
        clock.

        If ``cancelled`` is set while chunks remain, raises
        :class:`TransferError` — the flusher uses this to abandon flushes of
        consumed checkpoints (condition (5) of the problem formulation).
        Cancellation is honoured *before any progress is made* (including
        the latency span and zero-byte transfers), so an already-cancelled
        transfer aborts immediately.

        When a :class:`repro.sched.LinkScheduler` is attached and the caller
        tags the transfer with a ``request``, arbitration replaces the FIFO
        chunk interleave (see :meth:`_transfer_scheduled`); ``request``'s
        cancellation event then also cancels this transfer (preemption).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if request is not None and cancelled is None:
            cancelled = request.cancel_event
        if cancelled is not None and cancelled.is_set():
            # Zero-progress abort: no pending-byte accounting to undo.
            raise TransferError(
                f"transfer of {nbytes} bytes on link {self.name!r} cancelled"
            )
        fail_after = None
        if self.fault_injector is not None and nbytes > 0:
            fail_after = self.fault_injector.draw(nbytes)
        if self.scheduler is not None and request is not None:
            return self._transfer_scheduled(nbytes, cancelled, request, fail_after)
        with self._stats_lock:
            self._pending_bytes += nbytes
            self._transfers += 1
            self._active += 1
        remaining = nbytes
        accounted = 0.0
        moved_unflushed = 0
        busy_unflushed = 0.0
        batch = STATS_BATCH_CHUNKS * self.chunk_size
        try:
            if self.latency:
                if self._sleep_span(self.latency, cancelled):
                    raise TransferError(
                        f"transfer of {nbytes} bytes on link {self.name!r} cancelled"
                    )
                accounted += self.latency
            per_byte = 1.0 / self.bandwidth
            while remaining > 0:
                if cancelled is not None and cancelled.is_set():
                    raise TransferError(
                        f"transfer of {nbytes} bytes on link {self.name!r} cancelled"
                    )
                if fail_after is not None and nbytes - remaining >= fail_after:
                    raise self.fault_injector.fault(nbytes, nbytes - remaining)
                # Adaptive coalescing: when this is the only transfer in
                # flight, interleaving chunks through the mutex buys nothing
                # — move the whole remainder in one span.  Under contention
                # the per-chunk interleave (and its halved-throughput
                # semantics) is preserved.
                with self._stats_lock:
                    alone = self._active == 1
                span = remaining if alone else min(remaining, self.chunk_size)
                if fail_after is not None:
                    span = min(span, fail_after - (nbytes - remaining))
                queued_at = self._clock.now()
                with self._mutex:
                    accounted += self._clock.now() - queued_at  # contention
                    if self._sleep_span(span * per_byte, cancelled):
                        raise TransferError(
                            f"transfer of {nbytes} bytes on link {self.name!r} "
                            "cancelled"
                        )
                accounted += span * per_byte
                busy_unflushed += span * per_byte
                moved_unflushed += span
                remaining -= span
                if moved_unflushed >= batch:
                    with self._stats_lock:
                        self._busy_time += busy_unflushed
                        self._bytes_moved += moved_unflushed
                        self._pending_bytes -= moved_unflushed
                    moved_unflushed = 0
                    busy_unflushed = 0.0
        finally:
            with self._stats_lock:
                self._active -= 1
                self._busy_time += busy_unflushed
                self._bytes_moved += moved_unflushed
                # release both moved-but-unflushed and (if cancelled) unmoved
                self._pending_bytes -= moved_unflushed + remaining
        return accounted

    def _transfer_scheduled(
        self,
        nbytes: int,
        cancelled: Optional[threading.Event],
        request: "TransferRequest",
        fail_after: Optional[int] = None,
    ) -> float:
        """Arbitrated transfer: the scheduler grants the link in quanta.

        Each quantum (at most ``scheduler.quantum`` bytes) is acquired from
        the arbiter, slept, and released — so priority classes, WFQ shares
        and token buckets are enforced between quanta, and a preemption
        (the request's cancellation event) interrupts even mid-quantum via
        :meth:`_sleep_span`.  Admission control runs in ``open`` before any
        bytes are announced as pending.  Stats accounting matches the FIFO
        path: grant waits count as contention in the accounted duration.
        """
        sched = self.scheduler
        assert sched is not None
        # Admission first: a shed transfer must not perturb pending_bytes
        # (the Score runtime's flush/prefetch estimator reads it).
        entry = sched.open(request, nbytes)
        with self._stats_lock:
            self._pending_bytes += nbytes
            self._transfers += 1
            self._active += 1
        remaining = nbytes
        accounted = 0.0
        moved_unflushed = 0
        busy_unflushed = 0.0
        batch = STATS_BATCH_CHUNKS * self.chunk_size
        try:
            if self.latency:
                if self._sleep_span(self.latency, cancelled):
                    raise TransferError(
                        f"transfer of {nbytes} bytes on link {self.name!r} cancelled"
                    )
                accounted += self.latency
            per_byte = 1.0 / self.bandwidth
            while remaining > 0:
                if cancelled is not None and cancelled.is_set():
                    raise TransferError(
                        f"transfer of {nbytes} bytes on link {self.name!r} cancelled"
                    )
                if fail_after is not None and nbytes - remaining >= fail_after:
                    raise self.fault_injector.fault(nbytes, nbytes - remaining)
                span = min(remaining, sched.quantum)
                if fail_after is not None:
                    span = min(span, fail_after - (nbytes - remaining))
                queued_at = self._clock.now()
                sched.acquire(entry)  # raises TransferError when cancelled
                served = 0
                try:
                    accounted += self._clock.now() - queued_at  # arbitration wait
                    if self._sleep_span(span * per_byte, cancelled):
                        raise TransferError(
                            f"transfer of {nbytes} bytes on link {self.name!r} "
                            "cancelled"
                        )
                    served = span
                finally:
                    sched.release(entry, served)
                accounted += span * per_byte
                busy_unflushed += span * per_byte
                moved_unflushed += span
                remaining -= span
                if moved_unflushed >= batch:
                    with self._stats_lock:
                        self._busy_time += busy_unflushed
                        self._bytes_moved += moved_unflushed
                        self._pending_bytes -= moved_unflushed
                    moved_unflushed = 0
                    busy_unflushed = 0.0
        finally:
            sched.finish(entry)
            with self._stats_lock:
                self._active -= 1
                self._busy_time += busy_unflushed
                self._bytes_moved += moved_unflushed
                self._pending_bytes -= moved_unflushed + remaining
        return accounted

    def _sleep_span(
        self, virtual_seconds: float, cancelled: Optional[threading.Event]
    ) -> bool:
        """Sleep a virtual span, waking early if ``cancelled`` fires.

        Returns ``True`` when the span was cut short by cancellation.
        Coalesced spans can be long, so a cancellation must not have to wait
        for the whole span — ``Event.wait`` gives the wake-up, with the same
        short spin tail as :meth:`VirtualClock.sleep` for timing precision.
        """
        if cancelled is None:
            self._clock.sleep(virtual_seconds)
            return False
        deadline = time.monotonic() + self._clock.to_real(virtual_seconds)
        while True:
            remaining_real = deadline - time.monotonic()
            if remaining_real <= 0:
                return cancelled.is_set()
            if remaining_real > SPIN_THRESHOLD:
                if cancelled.wait(remaining_real - SPIN_THRESHOLD):
                    return True
            elif cancelled.is_set():
                return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.name!r}, {self.bandwidth:.3g} B/s)"
