"""Simulated CUDA-like substrate.

The paper's runtime sits on top of CUDA streams, copy engines and pinned
buffers.  This package provides the equivalent building blocks with costs
driven by a :class:`repro.config.HardwareSpec` on a
:class:`repro.clock.VirtualClock`:

* :class:`~repro.simgpu.bandwidth.Link` — a shared interconnect with finite
  bandwidth; concurrent transfers contend by chunk-interleaving.
* :class:`~repro.simgpu.stream.Stream` / :class:`~repro.simgpu.stream.Event`
  — ordered asynchronous work queues, one worker thread each (the analogue
  of a dedicated CUDA stream serviced by its own copy engine).
* :class:`~repro.simgpu.memory.Arena` and buffer types — real numpy-backed
  storage scaled by ``ScaleModel.data_scale``.
* :class:`~repro.simgpu.device.Device` — one GPU: HBM arena plus dedicated
  D2D/D2H/H2D engines wired to the node's PCIe links.
* :class:`~repro.simgpu.uvm.UvmSpace` — page-granular unified memory with
  fault-driven migration, used by the UVM comparator baseline.
"""

from repro.simgpu.bandwidth import Link
from repro.simgpu.stream import Event, Stream
from repro.simgpu.memory import Arena, DeviceBuffer, HostBuffer
from repro.simgpu.device import Device
from repro.simgpu.uvm import UvmAllocation, UvmSpace

__all__ = [
    "Link",
    "Event",
    "Stream",
    "Arena",
    "DeviceBuffer",
    "HostBuffer",
    "Device",
    "UvmAllocation",
    "UvmSpace",
]
