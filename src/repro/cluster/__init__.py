"""Distributed checkpoint fabric: multi-node cluster on the virtual clock.

The package promotes the single-process topology to an N-node cluster:

* :mod:`repro.cluster.directory` — cluster-wide replica directory mapping
  checkpoint keys to the SSDs that hold a durable copy.
* :mod:`repro.cluster.fabric` — :class:`ClusterFabric`, the glue object:
  peer-read routing over the modeled interconnect, ring-successor replica
  targets, per-node PFS write aggregators, and node-tagged telemetry.
* :mod:`repro.cluster.aggregator` — :class:`PfsWriteAggregator`, batching
  concurrent small flush streams into one PFS commit.
* :mod:`repro.cluster.service` — :class:`CheckpointService`, the RPC-style
  submit/restore/query front-end with per-client sessions and bounded
  admission.
* :mod:`repro.cluster.topology` — :class:`ClusterTopology`, the one-call
  builder: cluster + one engine per process context + service.
* :mod:`repro.cluster.membership` — :class:`MembershipRegistry`, node
  liveness plus the deterministic crash/rejoin/partition chaos driver.
* :mod:`repro.cluster.repair` — :class:`ReplicaRepairer`, QoS-paced
  anti-entropy re-replication restoring ``replica_factor`` after a node
  failure, plus the rejoin path's catch-up backfill.

Everything is gated on ``RuntimeConfig.cluster.enabled``; with the gate
off no fabric object exists and the single-node path is bit-identical
(equivalence-tested in ``tests/test_cluster_equivalence.py``).
"""

from repro.cluster.aggregator import PfsWriteAggregator
from repro.cluster.directory import ReplicaDirectory
from repro.cluster.fabric import ClusterFabric, PeerSsdStore
from repro.cluster.membership import MembershipRegistry
from repro.cluster.repair import ReplicaRepairer
from repro.cluster.service import CheckpointService, ClientSession, RestoreResult
from repro.cluster.topology import ClusterTopology

__all__ = [
    "CheckpointService",
    "ClientSession",
    "ClusterFabric",
    "ClusterTopology",
    "MembershipRegistry",
    "PeerSsdStore",
    "PfsWriteAggregator",
    "ReplicaDirectory",
    "ReplicaRepairer",
    "RestoreResult",
]
