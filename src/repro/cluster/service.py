"""RPC-style checkpoint service front-end over the in-process cluster.

:class:`CheckpointService` is the "millions of users" story from the
roadmap scaled down to the virtual clock: many concurrent clients drive
``submit`` / ``restore`` / ``query`` against a cluster of engines through
per-client sessions. The message layer is in-process — an RPC is a
method call that charges ``service_rpc_latency_s`` on the virtual clock —
but the *control* structure is the real one:

* **sessions** — ``connect`` pins each client to a home engine
  (round-robin across the cluster) and is bounded by
  ``service_max_sessions``; excess clients are refused with
  :class:`~repro.errors.BackpressureError`.  ``disconnect`` drains the
  session's in-flight RPCs and poisons the handle: any later call raises
  a clean :class:`~repro.errors.LifecycleError`.
* **admission** — each session allows ``service_queue_depth`` RPCs in
  flight; the bound is enforced at the door rather than by queueing
  unbounded work behind the engines.
* **placement** — the service owns a global ``ckpt_id → home process``
  map, so any session can restore any checkpoint: a restore landing on a
  foreign engine adopts the record (:meth:`ScoreEngine.adopt_foreign`)
  and promotes it over the fabric — peer SSD when a healthy holder
  exists, PFS otherwise.
* **failover** — with ``ClusterConfig.failover``, a session whose pinned
  engine dies (node crash) is transparently re-pinned to a surviving
  engine and the in-flight op is replayed idempotently: a submit whose
  checkpoint already reached a durable tier is *not* re-executed, and a
  restore simply re-routes through the fabric (peer SSD or PFS).
* **restore fan-in** — :meth:`restore_many` runs a batch of restores
  concurrently (one thread per RPC, like a real server's handler pool)
  and returns a structured :class:`RestoreResult` per item, so one failed
  worker never masks the rest of the batch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    BackpressureError,
    CheckpointNotFound,
    InjectedCrash,
    LifecycleError,
)

if TYPE_CHECKING:
    from repro.config import ClusterConfig
    from repro.core.engine import ScoreEngine


@dataclass
class RestoreResult:
    """Per-item outcome of a :meth:`CheckpointService.restore_many` batch."""

    ckpt_id: int
    ok: bool
    latency_s: Optional[float] = None
    error: Optional[BaseException] = None


class ClientSession:
    """One client's handle: a home engine plus a bounded admission gate."""

    def __init__(self, service: "CheckpointService", client_id: str, engine) -> None:
        self.service = service
        self.client_id = client_id
        self.engine = engine
        self._cond = threading.Condition()
        self._inflight = 0
        self._closed = False

    # -- admission -------------------------------------------------------------
    def _admit(self) -> None:
        depth = self.service.config.service_queue_depth
        with self._cond:
            if self._closed:
                raise LifecycleError(
                    f"session {self.client_id} is disconnected"
                )
            if self._inflight >= depth:
                raise BackpressureError(
                    f"session {self.client_id}: {self._inflight} RPCs in flight "
                    f"(queue depth {depth})"
                )
            self._inflight += 1

    def _release(self) -> None:
        with self._cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._cond.notify_all()

    def _poison_and_drain(self) -> None:
        """Close the admission door, then wait out the in-flight RPCs."""
        with self._cond:
            self._closed = True
            while self._inflight > 0:
                self._cond.wait()

    # -- RPCs ------------------------------------------------------------------
    def submit(self, ckpt_id: int, buffer) -> float:
        """Checkpoint ``buffer`` on the session's home engine."""
        self._admit()
        try:
            self.service._rpc_hop()
            engine = self.service._session_engine(self)
            self.service._place(ckpt_id, engine.process_id)
            try:
                return engine.checkpoint(ckpt_id, buffer)
            except InjectedCrash:
                if not self.service._failover_ready(engine):
                    self.service._unplace(ckpt_id, engine.process_id)
                    raise
                return self.service._failover_submit(self, ckpt_id, buffer, engine)
            except BaseException:
                self.service._unplace(ckpt_id, engine.process_id)
                raise
        finally:
            self._release()

    def restore(self, ckpt_id: int, buffer, engine=None) -> float:
        """Restore ``ckpt_id`` into ``buffer`` on ``engine`` (default: home).

        A target that never created the checkpoint adopts the home
        engine's durable copy first, then promotes it through the fabric.
        """
        self._admit()
        try:
            self.service._rpc_hop()
            target = self.service._resolve_engine(engine) or self.service._session_engine(self)
            home_pid = self.service._home_of(ckpt_id)
            if home_pid is None:
                raise CheckpointNotFound(
                    f"checkpoint {ckpt_id} was never submitted to the service"
                )
            try:
                return self.service._restore_on(target, home_pid, ckpt_id, buffer)
            except InjectedCrash:
                if not self.service._failover_ready(target):
                    raise
                # Explicit engine targets fail over too: any surviving
                # engine can adopt the durable copy through the fabric.
                fallback = self.service._repin(self, target)
                return self.service._restore_on(fallback, home_pid, ckpt_id, buffer)
        finally:
            self._release()

    def query(self, ckpt_id: int) -> dict:
        """Placement and durability metadata for ``ckpt_id``."""
        self._admit()
        try:
            self.service._rpc_hop()
            return self.service._query(ckpt_id)
        finally:
            self._release()


class CheckpointService:
    """Submit/restore/query front-end shared by every client session."""

    def __init__(
        self,
        engines: Sequence["ScoreEngine"],
        config: "ClusterConfig",
        clock,
    ) -> None:
        if not engines:
            raise LifecycleError("checkpoint service needs at least one engine")
        self.engines = list(engines)
        self.config = config
        self.clock = clock
        self._lock = threading.Lock()
        self._sessions: Dict[str, ClientSession] = {}
        self._next_engine = 0
        self._placement: Dict[int, int] = {}
        self._by_pid = {engine.process_id: engine for engine in self.engines}
        self._fabric = self.engines[0].fabric
        self.failovers = 0
        self.replays_skipped = 0
        registry = self.engines[0].telemetry.registry
        self._m_failovers = registry.counter("cluster.service.failovers")
        self._m_replays_skipped = registry.counter(
            "cluster.service.replays_skipped"
        )

    # -- sessions --------------------------------------------------------------
    def connect(self, client_id: str) -> ClientSession:
        """Open (or return) a session, round-robin pinned to a home engine."""
        with self._lock:
            session = self._sessions.get(client_id)
            if session is not None:
                return session
            if len(self._sessions) >= self.config.service_max_sessions:
                raise BackpressureError(
                    f"service at capacity: {len(self._sessions)} sessions "
                    f"(limit {self.config.service_max_sessions})"
                )
            engine = self.engines[self._next_engine % len(self.engines)]
            self._next_engine += 1
            session = ClientSession(self, client_id, engine)
            self._sessions[client_id] = session
            return session

    def disconnect(self, client_id: str) -> None:
        """Tear a session down cleanly.

        The session is unregistered first (no new connects resolve it),
        then poisoned — later RPCs on a stale handle raise
        :class:`~repro.errors.LifecycleError` — and finally drained: this
        call blocks until every in-flight admission has released, so the
        caller knows no RPC of the departed client is still running.
        """
        with self._lock:
            session = self._sessions.pop(client_id, None)
        if session is not None:
            session._poison_and_drain()

    # -- failover --------------------------------------------------------------
    def _membership(self):
        return None if self._fabric is None else self._fabric.membership

    def _failover_ready(self, engine) -> bool:
        """Whether the failed engine's op should fail over instead of raise."""
        return self.config.failover and engine.crashed.is_set()

    def _live_engines(self) -> List["ScoreEngine"]:
        membership = self._membership()
        live = []
        for engine in self.engines:
            if engine.crashed.is_set():
                continue
            if membership is not None and membership.active:
                if not membership.can_serve_reads(engine.node_id):
                    continue
            live.append(engine)
        return live

    def _session_engine(self, session: ClientSession):
        """The session's engine, re-pinned away from a dead node first."""
        engine = session.engine
        if self.config.failover and engine.crashed.is_set():
            return self._repin(session, engine)
        return engine

    def _repin(self, session: ClientSession, dead_engine):
        """Move a session off a dead engine onto the next surviving one."""
        live = self._live_engines()
        if not live:
            raise LifecycleError(
                "no surviving engine to fail the session over to"
            )
        with self._lock:
            target = live[self._next_engine % len(live)]
            self._next_engine += 1
        if session.engine is dead_engine:
            session.engine = target
        self.failovers += 1
        self._m_failovers.inc()
        target.telemetry.bus.instant(
            "session-failover",
            f"p{target.process_id}-app",
            client=session.client_id,
            from_pid=dead_engine.process_id,
            to_pid=target.process_id,
        )
        return target

    def _durable_somewhere(self, pid: int, ckpt_id: int) -> bool:
        """Whether ``(pid, ckpt_id)`` already reached any durable tier."""
        key = (pid, ckpt_id)
        if self._fabric is not None and self._fabric.directory.holders(key):
            return True
        pfs = self.engines[0].pfs
        return pfs is not None and pfs.contains(key)

    def _failover_submit(self, session, ckpt_id, buffer, dead_engine) -> float:
        """Replay an in-flight submit on a survivor, idempotently.

        If the op already reached a durable tier before the node died, the
        placement stands (restores adopt the foreign durable copy) and the
        replay is skipped — exactly-once effect from at-least-once
        delivery.  Otherwise the checkpoint re-runs on the new engine.
        """
        target = self._repin(session, dead_engine)
        self._rpc_hop()
        if self._durable_somewhere(dead_engine.process_id, ckpt_id):
            self.replays_skipped += 1
            self._m_replays_skipped.inc()
            return 0.0
        self._unplace(ckpt_id, dead_engine.process_id)
        self._place(ckpt_id, target.process_id)
        try:
            return target.checkpoint(ckpt_id, buffer)
        except BaseException:
            self._unplace(ckpt_id, target.process_id)
            raise

    def _restore_on(self, target, home_pid: int, ckpt_id: int, buffer) -> float:
        if home_pid != target.process_id and not target.catalog.contains(ckpt_id):
            target.adopt_foreign(home_pid, ckpt_id)
        return target.restore(ckpt_id, buffer)

    # -- placement -------------------------------------------------------------
    def _place(self, ckpt_id: int, pid: int) -> None:
        with self._lock:
            if ckpt_id in self._placement:
                raise LifecycleError(
                    f"checkpoint {ckpt_id} already submitted "
                    f"(home process {self._placement[ckpt_id]})"
                )
            self._placement[ckpt_id] = pid

    def _unplace(self, ckpt_id: int, pid: int) -> None:
        with self._lock:
            if self._placement.get(ckpt_id) == pid:
                del self._placement[ckpt_id]

    def _home_of(self, ckpt_id: int) -> Optional[int]:
        with self._lock:
            return self._placement.get(ckpt_id)

    def _resolve_engine(self, engine):
        if engine is None:
            return None
        if isinstance(engine, int):
            try:
                return self._by_pid[engine]
            except KeyError:
                raise LifecycleError(f"no engine with process id {engine}") from None
        return engine

    def _rpc_hop(self) -> None:
        """Charge one client→service message hop on the virtual clock."""
        membership = self._membership()
        if membership is not None and membership.active:
            membership.tick()
        if self.config.service_rpc_latency_s > 0:
            self.clock.sleep(self.config.service_rpc_latency_s)

    def _query(self, ckpt_id: int) -> dict:
        home_pid = self._home_of(ckpt_id)
        if home_pid is None:
            raise CheckpointNotFound(
                f"checkpoint {ckpt_id} was never submitted to the service"
            )
        home = self._by_pid[home_pid]
        record = home.catalog.maybe_get(ckpt_id)
        info = {
            "ckpt_id": ckpt_id,
            "home_pid": home_pid,
            "home_node": home.node_id,
            "durable_level": record.durable_level.name if record is not None else None,
        }
        if home.fabric is not None:
            info["ssd_holders"] = home.fabric.directory.holders((home_pid, ckpt_id))
        return info

    # -- fan-in ----------------------------------------------------------------
    def restore_many(
        self, items: Sequence[Tuple[ClientSession, int, object, object]]
    ) -> List[RestoreResult]:
        """Run ``(session, ckpt_id, buffer, engine)`` restores concurrently.

        Returns one :class:`RestoreResult` per item, in item order: each
        carries its own success/error/latency, so a failed worker is
        visible without masking the outcomes of the rest of the batch
        (server handlers run to completion, never cancelled by a sibling).
        """
        results: List[Optional[RestoreResult]] = [None] * len(items)

        def worker(i, session, ckpt_id, buffer, engine):
            try:
                latency = session.restore(ckpt_id, buffer, engine=engine)
                results[i] = RestoreResult(ckpt_id, True, latency_s=latency)
            except BaseException as exc:  # noqa: BLE001 - reported per item
                results[i] = RestoreResult(ckpt_id, False, error=exc)

        threads = [
            threading.Thread(
                target=worker,
                args=(i, session, ckpt_id, buffer, engine),
                name=f"svc-restore-{i}",
                daemon=True,
            )
            for i, (session, ckpt_id, buffer, engine) in enumerate(items)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [r for r in results if r is not None]

    def stats(self) -> dict:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "checkpoints": len(self._placement),
                "engines": len(self.engines),
                "failovers": self.failovers,
                "replays_skipped": self.replays_skipped,
            }
