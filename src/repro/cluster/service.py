"""RPC-style checkpoint service front-end over the in-process cluster.

:class:`CheckpointService` is the "millions of users" story from the
roadmap scaled down to the virtual clock: many concurrent clients drive
``submit`` / ``restore`` / ``query`` against a cluster of engines through
per-client sessions. The message layer is in-process — an RPC is a
method call that charges ``service_rpc_latency_s`` on the virtual clock —
but the *control* structure is the real one:

* **sessions** — ``connect`` pins each client to a home engine
  (round-robin across the cluster) and is bounded by
  ``service_max_sessions``; excess clients are refused with
  :class:`~repro.errors.BackpressureError`.
* **admission** — each session allows ``service_queue_depth`` RPCs in
  flight; the bound is enforced at the door rather than by queueing
  unbounded work behind the engines.
* **placement** — the service owns a global ``ckpt_id → home process``
  map, so any session can restore any checkpoint: a restore landing on a
  foreign engine adopts the record (:meth:`ScoreEngine.adopt_foreign`)
  and promotes it over the fabric — peer SSD when a healthy holder
  exists, PFS otherwise.
* **restore fan-in** — :meth:`restore_many` runs a batch of restores
  concurrently (one thread per RPC, like a real server's handler pool)
  and returns per-restore latencies.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import BackpressureError, CheckpointNotFound, LifecycleError

if TYPE_CHECKING:
    from repro.config import ClusterConfig
    from repro.core.engine import ScoreEngine


class ClientSession:
    """One client's handle: a home engine plus a bounded admission gate."""

    def __init__(self, service: "CheckpointService", client_id: str, engine) -> None:
        self.service = service
        self.client_id = client_id
        self.engine = engine
        self._lock = threading.Lock()
        self._inflight = 0

    # -- admission -------------------------------------------------------------
    def _admit(self) -> None:
        depth = self.service.config.service_queue_depth
        with self._lock:
            if self._inflight >= depth:
                raise BackpressureError(
                    f"session {self.client_id}: {self._inflight} RPCs in flight "
                    f"(queue depth {depth})"
                )
            self._inflight += 1

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1

    # -- RPCs ------------------------------------------------------------------
    def submit(self, ckpt_id: int, buffer) -> float:
        """Checkpoint ``buffer`` on the session's home engine."""
        self._admit()
        try:
            self.service._rpc_hop()
            self.service._place(ckpt_id, self.engine.process_id)
            try:
                return self.engine.checkpoint(ckpt_id, buffer)
            except BaseException:
                self.service._unplace(ckpt_id, self.engine.process_id)
                raise
        finally:
            self._release()

    def restore(self, ckpt_id: int, buffer, engine=None) -> float:
        """Restore ``ckpt_id`` into ``buffer`` on ``engine`` (default: home).

        A target that never created the checkpoint adopts the home
        engine's durable copy first, then promotes it through the fabric.
        """
        self._admit()
        try:
            self.service._rpc_hop()
            target = self.service._resolve_engine(engine) or self.engine
            home_pid = self.service._home_of(ckpt_id)
            if home_pid is None:
                raise CheckpointNotFound(
                    f"checkpoint {ckpt_id} was never submitted to the service"
                )
            if home_pid != target.process_id and not target.catalog.contains(ckpt_id):
                target.adopt_foreign(home_pid, ckpt_id)
            return target.restore(ckpt_id, buffer)
        finally:
            self._release()

    def query(self, ckpt_id: int) -> dict:
        """Placement and durability metadata for ``ckpt_id``."""
        self._admit()
        try:
            self.service._rpc_hop()
            return self.service._query(ckpt_id)
        finally:
            self._release()


class CheckpointService:
    """Submit/restore/query front-end shared by every client session."""

    def __init__(
        self,
        engines: Sequence["ScoreEngine"],
        config: "ClusterConfig",
        clock,
    ) -> None:
        if not engines:
            raise LifecycleError("checkpoint service needs at least one engine")
        self.engines = list(engines)
        self.config = config
        self.clock = clock
        self._lock = threading.Lock()
        self._sessions: Dict[str, ClientSession] = {}
        self._next_engine = 0
        self._placement: Dict[int, int] = {}
        self._by_pid = {engine.process_id: engine for engine in self.engines}

    # -- sessions --------------------------------------------------------------
    def connect(self, client_id: str) -> ClientSession:
        """Open (or return) a session, round-robin pinned to a home engine."""
        with self._lock:
            session = self._sessions.get(client_id)
            if session is not None:
                return session
            if len(self._sessions) >= self.config.service_max_sessions:
                raise BackpressureError(
                    f"service at capacity: {len(self._sessions)} sessions "
                    f"(limit {self.config.service_max_sessions})"
                )
            engine = self.engines[self._next_engine % len(self.engines)]
            self._next_engine += 1
            session = ClientSession(self, client_id, engine)
            self._sessions[client_id] = session
            return session

    def disconnect(self, client_id: str) -> None:
        with self._lock:
            self._sessions.pop(client_id, None)

    # -- placement -------------------------------------------------------------
    def _place(self, ckpt_id: int, pid: int) -> None:
        with self._lock:
            if ckpt_id in self._placement:
                raise LifecycleError(
                    f"checkpoint {ckpt_id} already submitted "
                    f"(home process {self._placement[ckpt_id]})"
                )
            self._placement[ckpt_id] = pid

    def _unplace(self, ckpt_id: int, pid: int) -> None:
        with self._lock:
            if self._placement.get(ckpt_id) == pid:
                del self._placement[ckpt_id]

    def _home_of(self, ckpt_id: int) -> Optional[int]:
        with self._lock:
            return self._placement.get(ckpt_id)

    def _resolve_engine(self, engine):
        if engine is None:
            return None
        if isinstance(engine, int):
            try:
                return self._by_pid[engine]
            except KeyError:
                raise LifecycleError(f"no engine with process id {engine}") from None
        return engine

    def _rpc_hop(self) -> None:
        """Charge one client→service message hop on the virtual clock."""
        if self.config.service_rpc_latency_s > 0:
            self.clock.sleep(self.config.service_rpc_latency_s)

    def _query(self, ckpt_id: int) -> dict:
        home_pid = self._home_of(ckpt_id)
        if home_pid is None:
            raise CheckpointNotFound(
                f"checkpoint {ckpt_id} was never submitted to the service"
            )
        home = self._by_pid[home_pid]
        record = home.catalog.maybe_get(ckpt_id)
        info = {
            "ckpt_id": ckpt_id,
            "home_pid": home_pid,
            "home_node": home.node_id,
            "durable_level": record.durable_level.name if record is not None else None,
        }
        if home.fabric is not None:
            info["ssd_holders"] = home.fabric.directory.holders((home_pid, ckpt_id))
        return info

    # -- fan-in ----------------------------------------------------------------
    def restore_many(
        self, items: Sequence[Tuple[ClientSession, int, object, object]]
    ) -> List[float]:
        """Run ``(session, ckpt_id, buffer, engine)`` restores concurrently.

        Returns per-item restore latencies in item order; the first failure
        is re-raised after all workers finish (the rest of the batch is not
        cancelled — server handlers run to completion).
        """
        results: List[Optional[float]] = [None] * len(items)
        errors: List[BaseException] = []

        def worker(i, session, ckpt_id, buffer, engine):
            try:
                results[i] = session.restore(ckpt_id, buffer, engine=engine)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append(exc)

        threads = [
            threading.Thread(
                target=worker,
                args=(i, session, ckpt_id, buffer, engine),
                name=f"svc-restore-{i}",
                daemon=True,
            )
            for i, (session, ckpt_id, buffer, engine) in enumerate(items)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return [r for r in results if r is not None]

    def stats(self) -> dict:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "checkpoints": len(self._placement),
                "engines": len(self.engines),
            }
