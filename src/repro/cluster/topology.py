"""One-call cluster construction: nodes, engines, and the service.

:class:`ClusterTopology` stacks the pieces the rest of the package
provides: a :class:`~repro.tiers.topology.Cluster` (which builds the
:class:`~repro.cluster.fabric.ClusterFabric` when ``config.cluster`` is
enabled), one :class:`~repro.core.engine.ScoreEngine` per process
context, and a :class:`~repro.cluster.service.CheckpointService` fronting
them all. Intended for workloads, benchmarks, and tests::

    with ClusterTopology(config) as topo:
        session = topo.service.connect("client-0")
        session.submit(0, buf)
        ...
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.service import CheckpointService
from repro.config import RuntimeConfig
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster


class ClusterTopology:
    """A cluster, its engines, and the checkpoint service front-end."""

    def __init__(
        self,
        config: RuntimeConfig,
        clock=None,
        engine_kwargs: Optional[dict] = None,
    ) -> None:
        self.config = config
        self.cluster = Cluster(config, clock=clock)
        self.engines: List[ScoreEngine] = []
        try:
            for ctx in self.cluster.process_contexts():
                self.engines.append(ScoreEngine(ctx, **(engine_kwargs or {})))
            self.service = CheckpointService(
                self.engines, config.cluster, self.cluster.clock
            )
        except BaseException:
            self.close()
            raise
        self._closed = False

    @property
    def fabric(self):
        return self.cluster.fabric

    @property
    def telemetry(self):
        return self.cluster.telemetry

    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for engine in self.engines:
            engine.close()
        self.cluster.close()

    def __enter__(self) -> "ClusterTopology":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
