"""The cluster fabric: peer-SSD reads, replica routing, PFS aggregation.

:class:`ClusterFabric` is built by :class:`~repro.tiers.topology.Cluster`
when ``config.cluster.enabled`` and owns everything the single-node stack
does not know about:

* the :class:`~repro.cluster.directory.ReplicaDirectory` every node SSD
  publishes into,
* peer-read routing — :meth:`peer_source` resolves a checkpoint key to a
  :class:`PeerSsdStore` wrapping a healthy neighbor's SSD, reached over
  the modeled interconnect (the same WFQ-scheduled, fault-injected links
  the legacy partner replication uses),
* ring-successor replica targets for the flusher's replication stage,
* per-node :class:`~repro.cluster.aggregator.PfsWriteAggregator` instances
  batching concurrent flush streams into single PFS commits.

A peer read that dies mid-transfer (breaker-open SSD, link fault, tier
outage) falls back to the PFS transparently: the reader re-opens the blob
there and replays the bytes consumed so far, so callers see one
uninterrupted byte stream either way.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.cluster.aggregator import PfsWriteAggregator
from repro.cluster.directory import ReplicaDirectory, StoreKey
from repro.cluster.membership import MembershipRegistry
from repro.errors import TransientTransferError
from repro.simgpu.bandwidth import Link
from repro.tiers.base import TierLevel

if TYPE_CHECKING:
    from repro.tiers.ssd import SsdStore
    from repro.tiers.topology import Cluster


class ClusterFabric:
    """Cluster-wide routing state shared by every engine in the topology."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.config = cluster.config.cluster
        self.clock = cluster.clock
        self.telemetry = cluster.telemetry
        self.health = cluster.health
        self.faults = cluster.faults
        self.pfs = cluster.pfs
        self.num_nodes = len(cluster.nodes)
        self.directory = ReplicaDirectory()
        #: anti-entropy replica repair (None unless ``ClusterConfig.repair``);
        #: built before the membership registry so crash sweeps can feed it.
        self.repairer = None
        if self.config.repair:
            from repro.cluster.repair import ReplicaRepairer  # lazy: cycle

            self.repairer = ReplicaRepairer(self)
        #: node liveness + crash/rejoin/partition chaos driver.  Inert
        #: (``membership.active`` False, zero per-op cost beyond one check)
        #: until node events are configured or a crash is triggered.
        self.membership = MembershipRegistry(self)
        self._lock = threading.Lock()
        self._peer_links: Dict[Tuple[int, int], Link] = {}
        self._aggregators: Dict[int, PfsWriteAggregator] = {}
        registry = cluster.telemetry.registry
        self._m_peer_reads = registry.counter("cluster.peer.reads")
        self._m_peer_read_bytes = registry.counter("cluster.peer.read_bytes")
        self._m_peer_fallbacks = registry.counter("cluster.peer.fallbacks")
        # Node-attributed telemetry lanes: every SSD track and the per-node
        # peer-hop track carry their node id into the trace (satellite:
        # per-node Perfetto lanes / `analyze` rollups).
        bus = cluster.telemetry.bus
        for node in cluster.nodes:
            bus.bind_track(node.ssd._track, node_id=node.node_id)
            bus.bind_track(f"node{node.node_id}-peer", node_id=node.node_id)

    # -- links -----------------------------------------------------------------
    def link(self, node_a: int, node_b: int) -> Link:
        """The interconnect link used for peer reads between two nodes.

        Defaults to the cluster's shared fabric link (also carrying partner
        replication); ``ClusterConfig.peer_bandwidth`` carves out dedicated
        peer-read links instead, e.g. to model RDMA reads bypassing the
        replication path.
        """
        if self.config.peer_bandwidth is None:
            return self.cluster.internode_link(node_a, node_b)
        key = (min(node_a, node_b), max(node_a, node_b))
        with self._lock:
            link = self._peer_links.get(key)
            if link is None:
                link = Link(
                    f"peer-{key[0]}-{key[1]}",
                    self.config.peer_bandwidth,
                    self.clock,
                    latency=self.cluster.config.hardware.transfer_latency,
                )
                self.cluster.sched.attach(link)
                self.cluster.faults.attach(link)
                self._peer_links[key] = link
            return link

    # -- replica placement -----------------------------------------------------
    def replica_targets(self, node_id: int) -> List[Tuple[int, "SsdStore", Link]]:
        """Ring-successor SSDs receiving replicas of ``node_id``'s checkpoints.

        ``replica_factor`` counts the home copy, so a factor of 2 yields one
        successor — the legacy partner-pair layout generalized to N nodes.
        """
        targets = []
        for step in range(1, self.config.replica_factor):
            peer = (node_id + step) % self.num_nodes
            if peer == node_id:
                break
            targets.append(
                (peer, self.cluster.nodes[peer].ssd, self.link(node_id, peer))
            )
        return targets

    def live_replica_targets(self, node_id: int) -> List[Tuple[int, "SsdStore", Link]]:
        """The replica targets that are up and reachable right now.

        The flusher swaps to this list while chaos is active so replication
        skips dead or partitioned successors instead of burning its retry
        budget against them; the repairer restores the factor once the ring
        heals.
        """
        membership = self.membership
        return [
            (peer, ssd, link)
            for peer, ssd, link in self.replica_targets(node_id)
            if membership.in_ring(peer) and membership.reachable(node_id, peer)
        ]

    # -- peer reads ------------------------------------------------------------
    def peer_source(self, reader_node: int, key: StoreKey) -> Optional["PeerSsdStore"]:
        """A readable neighbor SSD holding ``key``, or None.

        Holders are tried in ring order from the reader; a holder must still
        contain the blob (the directory can lag a concurrent eviction) and
        its breaker must be closed. A tier-global SSD outage darkens every
        peer at once — the caller then drops to the PFS.
        """
        if not self.config.peer_reads:
            return None
        if self.faults.enabled and self.faults.hard_outage("ssd"):
            return None
        chaos = self.membership.active
        if chaos:
            self.membership.tick()
        holders = self.directory.holders(key)
        if not holders:
            return None
        holders.sort(key=lambda h: (h - reader_node) % self.num_nodes)
        skipped_by_membership = False
        for holder in holders:
            if holder == reader_node:
                continue
            if chaos and not (
                self.membership.can_serve_reads(holder)
                and self.membership.reachable(reader_node, holder)
            ):
                # Dead holder (directory lag) or a partition cutting us off
                # from it: route around — degraded PFS-only when none left.
                skipped_by_membership = True
                continue
            remote = self.cluster.nodes[holder].ssd
            if not remote.contains(key):
                continue
            if not self.health.healthy(remote._track):
                continue
            return PeerSsdStore(self, reader_node, holder, remote)
        if skipped_by_membership:
            self.membership.note_degraded_read()
        return None

    # -- PFS writes ------------------------------------------------------------
    def pfs_put(
        self,
        node_id: int,
        key: StoreKey,
        payload,
        nominal_size: int,
        *,
        cancelled=None,
        meta=None,
        request=None,
    ) -> float:
        """Route a whole-object PFS write through ``node_id``'s aggregator.

        With aggregation off this is exactly the legacy ``pfs.put`` call, so
        timings and op counts are unchanged.
        """
        if not self.config.aggregation:
            return self.pfs.put(
                key,
                payload,
                nominal_size,
                node_id=node_id,
                cancelled=cancelled,
                meta=meta,
                request=request,
            )
        with self._lock:
            aggregator = self._aggregators.get(node_id)
            if aggregator is None:
                aggregator = PfsWriteAggregator(self, node_id)
                self._aggregators[node_id] = aggregator
        return aggregator.submit(
            key,
            payload,
            nominal_size,
            cancelled=cancelled,
            meta=meta,
            request=request,
        )


class PeerSsdStore:
    """Read-only view of a neighbor node's SSD, reached over the fabric.

    Duck-types the read side of :class:`~repro.tiers.ssd.SsdStore` (``get``,
    ``open_get``, ``contains``, ``meta``, ``size_of``, ``verify``) so the
    engine's promotion paths — whole-object and streamed — work unchanged.
    Every chunk pays the remote SSD read *plus* the interconnect hop, both
    on scheduled links.
    """

    level = TierLevel.SSD

    def __init__(
        self,
        fabric: ClusterFabric,
        reader_node: int,
        peer_node: int,
        remote: "SsdStore",
    ) -> None:
        self.fabric = fabric
        self.reader_node = reader_node
        self.peer_node = peer_node
        self.remote = remote
        # Spans from the remote read land on the peer's own SSD track; the
        # repair path also keys breakers by this name.
        self._track = remote._track

    @property
    def node_id(self) -> int:
        return self.remote.node_id

    def contains(self, key: StoreKey) -> bool:
        return self.remote.contains(key)

    def meta(self, key: StoreKey):
        return self.remote.meta(key)

    def size_of(self, key: StoreKey) -> int:
        return self.remote.size_of(key)

    def verify(self, key: StoreKey) -> bool:
        return self.remote.verify(key)

    def delete(self, key: StoreKey) -> None:
        self.remote.delete(key)

    def open_get(self, key: StoreKey, request=None, nominal_size: Optional[int] = None):
        return _PeerGet(self, key, request=request, nominal_size=nominal_size)

    def get(self, key: StoreKey, request=None):
        handle = self.open_get(key, request=request)
        handle.read(handle.nominal_size, request=request)
        return handle.finish()


class _PeerGet:
    """Streaming read off a peer SSD with transparent PFS failover.

    Chunks are read from the remote SSD (its own read link, fault gates,
    and brownout model) and then traverse the interconnect link. If the
    peer dies mid-read — a :class:`TransientTransferError` from either
    hop — the handle re-opens the blob on the PFS, replays the bytes
    already consumed plus the failed chunk, and serves the rest from
    there. The caller sees a single uninterrupted stream.
    """

    def __init__(
        self,
        store: PeerSsdStore,
        key: StoreKey,
        request=None,
        nominal_size: Optional[int] = None,
    ) -> None:
        self.store = store
        self.key = key
        self._request = request
        fabric = store.fabric
        self._bus = fabric.telemetry.bus
        self._hop_track = f"node{store.reader_node}-peer"
        self._link = fabric.link(store.reader_node, store.peer_node)
        self._reader = store.remote.open_get(
            key, request=request, nominal_size=nominal_size
        )
        self.nominal_size = self._reader.nominal_size
        self._fallback = None
        self._consumed = 0
        self.seconds = 0.0

    def read(self, nbytes: int, request=None) -> float:
        request = request if request is not None else self._request
        if self._fallback is not None:
            seconds = self._fallback.read(nbytes, request=request)
            self.seconds += seconds
            return seconds
        try:
            seconds = self._reader.read(nbytes, request=request)
            with self._bus.span(
                "peer-hop",
                self._hop_track,
                key=str(self.key),
                peer=self.store.peer_node,
                bytes=nbytes,
            ):
                seconds += self._link.transfer(nbytes, request=request)
        except TransientTransferError:
            seconds = self._fail_over(nbytes, request)
        self._consumed += nbytes
        self.seconds += seconds
        return seconds

    def _fail_over(self, nbytes: int, request) -> float:
        """Re-open on the PFS and replay through the failed chunk."""
        fabric = self.store.fabric
        fabric.health.failure(self.store._track)
        fabric._m_peer_fallbacks.inc()
        self._bus.instant(
            "peer-fallback",
            self._hop_track,
            key=str(self.key),
            peer=self.store.peer_node,
        )
        if fabric.pfs is None or not fabric.pfs.contains(self.key):
            raise  # no durable copy below: surface the peer failure
        self._fallback = fabric.pfs.open_get(
            self.key, node_id=self.store.reader_node, request=request
        )
        replay = self._consumed + nbytes
        return self._fallback.read(replay, request=request) if replay else 0.0

    def finish(self):
        if self._fallback is not None:
            payload, _ = self._fallback.finish()
            return payload, self.seconds
        payload, _ = self._reader.finish()
        fabric = self.store.fabric
        fabric._m_peer_reads.inc()
        fabric._m_peer_read_bytes.inc(self.nominal_size)
        fabric.health.success(self.store._track)
        return payload, self.seconds
