"""Cluster-wide replica directory: which node SSDs hold which checkpoint.

Every :class:`~repro.tiers.ssd.SsdStore` in a fabric-enabled cluster
publishes its commits (and withdraws its deletes) here, so a restore on
any node can discover a neighbor's durable copy without touching the PFS.
The directory is pure metadata — bytes still move over the modeled
interconnect links — and deliberately tiny: a dict under one lock, the
in-process stand-in for the etcd/gossip membership map a real fabric
would run.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Set, Tuple

#: (process_id, ckpt_id) — the same key the tier stores index by.
StoreKey = Tuple[int, int]


class ReplicaDirectory:
    """Thread-safe map from checkpoint key to the node ids holding it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._holders: Dict[StoreKey, Set[int]] = {}

    def publish(self, key: StoreKey, node_id: int) -> None:
        """Record that ``node_id``'s SSD committed a durable copy of ``key``."""
        with self._lock:
            self._holders.setdefault(key, set()).add(node_id)

    def withdraw(self, key: StoreKey, node_id: int) -> None:
        """Drop ``node_id`` as a holder of ``key`` (eviction or delete)."""
        with self._lock:
            holders = self._holders.get(key)
            if holders is None:
                return
            holders.discard(node_id)
            if not holders:
                del self._holders[key]

    def holders(self, key: StoreKey) -> List[int]:
        """Node ids holding ``key``, sorted for deterministic routing."""
        with self._lock:
            return sorted(self._holders.get(key, ()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._holders)
