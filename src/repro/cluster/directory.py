"""Cluster-wide replica directory: which node SSDs hold which checkpoint.

Every :class:`~repro.tiers.ssd.SsdStore` in a fabric-enabled cluster
publishes its commits (and withdraws its deletes) here, so a restore on
any node can discover a neighbor's durable copy without touching the PFS.
The directory is pure metadata — bytes still move over the modeled
interconnect links — and deliberately tiny: a dict under one lock, the
in-process stand-in for the etcd/gossip membership map a real fabric
would run.

Mutations are idempotent: publishing an existing holder, withdrawing an
absent holder, or withdrawing from an unknown key are all no-ops, so the
crash path (a node withdrawing everything it held) can race ordinary
evictions and per-key deletes without double-accounting.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Set, Tuple

#: (process_id, ckpt_id) — the same key the tier stores index by.
StoreKey = Tuple[int, int]


class ReplicaDirectory:
    """Thread-safe map from checkpoint key to the node ids holding it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._holders: Dict[StoreKey, Set[int]] = {}

    def publish(self, key: StoreKey, node_id: int) -> None:
        """Record that ``node_id``'s SSD committed a durable copy of ``key``.

        Idempotent: re-publishing an existing holder changes nothing.
        """
        with self._lock:
            self._holders.setdefault(key, set()).add(node_id)

    def withdraw(self, key: StoreKey, node_id: int) -> bool:
        """Drop ``node_id`` as a holder of ``key`` (eviction or delete).

        Idempotent and safe against concurrent publish/withdraw of the same
        key: a double withdraw, or a withdraw racing the publish that
        re-adds the holder, simply converges on the latest state.  Returns
        whether this call actually removed a holder entry.
        """
        with self._lock:
            holders = self._holders.get(key)
            if holders is None or node_id not in holders:
                return False
            holders.discard(node_id)
            if not holders:
                del self._holders[key]
            return True

    def withdraw_node(self, node_id: int) -> List[StoreKey]:
        """Drop ``node_id`` from every key it holds (whole-node failure).

        One atomic sweep under the directory lock — concurrent publishes
        land either before (and are withdrawn) or after (and stand, for a
        node resurrected mid-sweep).  Returns the keys the node held, so
        the repairer can seed its under-replication scan.
        """
        with self._lock:
            withdrawn: List[StoreKey] = []
            for key in list(self._holders):
                holders = self._holders[key]
                if node_id in holders:
                    holders.discard(node_id)
                    withdrawn.append(key)
                    if not holders:
                        del self._holders[key]
            return withdrawn

    def holders(self, key: StoreKey) -> List[int]:
        """Node ids holding ``key``, sorted for deterministic routing."""
        with self._lock:
            return sorted(self._holders.get(key, ()))

    def snapshot(self) -> List[Tuple[StoreKey, List[int]]]:
        """A point-in-time copy of every (key, sorted holders) entry."""
        with self._lock:
            return sorted(
                (key, sorted(holders)) for key, holders in self._holders.items()
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._holders)
