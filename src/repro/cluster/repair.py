"""Anti-entropy replica repair: restore ``replica_factor`` after a crash.

When a node dies, :class:`~repro.cluster.membership.MembershipRegistry`
withdraws every SSD copy it held, leaving checkpoints under-replicated
(or, when every holder died, with no SSD copy at all).  The
:class:`ReplicaRepairer` closes that gap: it scans the replica directory
for keys with fewer live holders than ``replica_factor``, picks
replacement targets along the placement ring, and re-replicates each blob
from a surviving SSD holder — or from the PFS when no holder survived.

Repair traffic is paced through the existing QoS machinery: every copy is
tagged with ``ClusterConfig.repair_class`` (``CASCADE_FLUSH`` by
default), so on scheduled links a demand restore always preempts or
outranks repair, and ``repair_max_inflight`` bounds the burst one scan
can inject after a mass withdrawal.

The repairer also runs the rejoin path's catch-up backfill
(:meth:`backfill_node`): a node coming back copies everything its ring
position says it should hold before the membership registry returns it
to the replication ring.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.cluster.directory import StoreKey
from repro.errors import ReproError, TransferError
from repro.sched.request import TransferClass, TransferRequest

if TYPE_CHECKING:
    from repro.cluster.fabric import ClusterFabric

#: telemetry track repair spans land on.
REPAIR_TRACK = "cluster-repair"


class ReplicaRepairer:
    """Re-replicates under-replicated checkpoints until factor is met."""

    def __init__(self, fabric: "ClusterFabric") -> None:
        self.fabric = fabric
        self.cluster = fabric.cluster
        self.config = fabric.config
        self.clock = fabric.clock
        self.telemetry = fabric.telemetry
        self._gpus_per_node = self.cluster.config.hardware.gpus_per_node
        self._tclass = TransferClass[self.config.repair_class]
        self._lock = threading.Lock()
        #: keys whose last live SSD holder died; only the PFS can seed the
        #: re-replication (the directory no longer tracks them).
        self._lost: set = set()
        self.repaired = 0
        registry = self.telemetry.registry
        self._m_copies = registry.counter("cluster.repair.copies")
        self._m_bytes = registry.counter("cluster.repair.bytes")
        self._m_failures = registry.counter("cluster.repair.failures")
        self._m_backfills = registry.counter("cluster.repair.backfills")
        self._m_pending = registry.gauge("cluster.repair.pending")

    # -- placement ---------------------------------------------------------
    def _home_node(self, key: StoreKey) -> int:
        """The node of the key's home process (pid = node*gpus + rank)."""
        return key[0] // self._gpus_per_node

    def _desired_holders(
        self, key: StoreKey, include: Optional[int] = None
    ) -> List[int]:
        """Ring placement over in-ring nodes: home node first, then its
        successors, skipping dead/joining nodes, ``replica_factor`` deep.

        ``include`` treats one extra node as ring-eligible — the rejoin
        backfill computes the placement its still-``joining`` node is
        about to assume.
        """
        membership = self.fabric.membership
        home = self._home_node(key)
        desired: List[int] = []
        for step in range(self.fabric.num_nodes):
            node = (home + step) % self.fabric.num_nodes
            if (
                membership is not None
                and node != include
                and not membership.in_ring(node)
            ):
                continue
            desired.append(node)
            if len(desired) >= self.config.replica_factor:
                break
        return desired

    # -- scanning ----------------------------------------------------------
    def note_withdrawn(self, keys: Iterable[StoreKey]) -> None:
        """Crash hook: remember keys whose holder set may have hit zero."""
        directory = self.fabric.directory
        with self._lock:
            for key in keys:
                if not directory.holders(key):
                    self._lost.add(key)

    def pending(self) -> List[Tuple[StoreKey, List[int]]]:
        """Every under-replicated ``(key, live_holders)``, deterministic order.

        Directory entries below factor come first; then the lost keys
        (zero live holders) that still have a PFS copy to repair from.
        """
        membership = self.fabric.membership
        factor = self.config.replica_factor
        work: List[Tuple[StoreKey, List[int]]] = []
        for key, holders in self.fabric.directory.snapshot():
            live = [
                h for h in holders
                if membership is None or membership.can_serve_reads(h)
            ]
            if live and len(live) < factor:
                work.append((key, live))
        with self._lock:
            lost = sorted(self._lost)
        pfs = self.fabric.pfs
        for key in lost:
            if self.fabric.directory.holders(key):
                with self._lock:
                    self._lost.discard(key)
                continue
            if pfs is not None and pfs.contains(key):
                work.append((key, []))
        return work

    # -- copying -----------------------------------------------------------
    def _request(self, key: StoreKey) -> Optional[TransferRequest]:
        if not self.cluster.sched.enabled:
            return None
        return TransferRequest(self._tclass, engine_id=key[0])

    def _copy(self, key: StoreKey, sources: List[int], target: int) -> bool:
        """One repair copy onto ``target``'s SSD; True on success.

        Prefers a reachable live SSD holder (remote read + interconnect
        hop, exactly the replication stage's cost model); falls back to
        the PFS when no holder is usable.  The target's ``put`` republishes
        the key in the directory via the normal commit path.
        """
        membership = self.fabric.membership
        target_ssd = self.cluster.nodes[target].ssd
        request = self._request(key)
        bus = self.telemetry.bus
        source: Optional[int] = None
        for holder in sources:
            if holder == target:
                continue
            if membership is not None and not membership.reachable(holder, target):
                continue
            if self.cluster.nodes[holder].ssd.contains(key):
                source = holder
                break
        with bus.span(
            "repair",
            REPAIR_TRACK,
            key=str(key),
            target=target,
            source="pfs" if source is None else source,
        ) as span:
            try:
                if source is not None:
                    src_ssd = self.cluster.nodes[source].ssd
                    stored = src_ssd.size_of(key)
                    meta = src_ssd.meta(key)
                    payload, _ = src_ssd.get(key, request=request)
                    self.fabric.link(source, target).transfer(
                        stored, request=request
                    )
                else:
                    pfs = self.fabric.pfs
                    if pfs is None or not pfs.contains(key):
                        span.add(abandoned=True)
                        return False
                    stored = pfs.size_of(key)
                    meta = pfs.meta(key)
                    payload, _ = pfs.get(key, node_id=target, request=request)
                target_ssd.put(
                    key, payload, stored, meta=meta, request=request, copy=False
                )
            except (TransferError, ReproError):
                span.add(abandoned=True)
                self._m_failures.inc()
                return False
        self._m_copies.inc()
        self._m_bytes.inc(stored)
        with self._lock:
            self._lost.discard(key)
        self.repaired += 1
        return True

    # -- driving -----------------------------------------------------------
    def repair_once(self) -> int:
        """One anti-entropy scan; returns the copies made.

        At most ``repair_max_inflight`` copies per scan keep a mass
        withdrawal from flooding the fabric in one burst — the interval
        between scans is the pacing knob.
        """
        membership = self.fabric.membership
        if membership is not None:
            membership.tick()
        copies = 0
        for key, holders in self.pending():
            if copies >= self.config.repair_max_inflight:
                break
            current = set(self.fabric.directory.holders(key))
            for target in self._desired_holders(key):
                if copies >= self.config.repair_max_inflight:
                    break
                if target in current:
                    continue
                if self.cluster.nodes[target].ssd.offline:
                    continue
                if self._copy(key, holders, target):
                    current.add(target)
                    copies += 1
        self._m_pending.set(len(self.pending()))
        return copies

    def run(self, max_rounds: int = 64) -> int:
        """Scan-and-copy until nothing is under-replicated (or rounds cap).

        Rounds are separated by ``repair_interval_s`` on the virtual
        clock, so repair bandwidth is spread instead of burst-consumed.
        """
        total = 0
        for round_idx in range(max_rounds):
            copies = self.repair_once()
            total += copies
            if copies == 0:
                break
            if self.config.repair_interval_s > 0:
                self.clock.sleep(self.config.repair_interval_s)
        return total

    def backfill_node(self, node_id: int) -> int:
        """Rejoin catch-up: copy every blob ``node_id``'s ring position owes.

        Runs to completion (it is the gate between ``joining`` and
        ``up``), then promotes the node in the membership registry.
        Returns the number of blobs copied.
        """
        ssd = self.cluster.nodes[node_id].ssd
        copies = 0
        for key, holders in self.fabric.directory.snapshot():
            if node_id not in self._desired_holders(key, include=node_id):
                continue
            if ssd.contains(key):
                continue
            if self._copy(key, holders, node_id):
                copies += 1
                self._m_backfills.inc()
        membership = self.fabric.membership
        if membership is not None:
            membership.mark_up(node_id)
        # The widened ring may shift placement; one scan settles factor.
        self.repair_once()
        return copies
