"""Per-node PFS write aggregation: many small flushes, one batched commit.

Motivated by "Towards Aggregated Asynchronous Checkpointing" (PAPERS.md):
a serving front-end drives many concurrent engines per node, and each
flush stream pays the PFS per-op latency separately. The aggregator
coalesces whole-object flush writes that arrive within a short window
into a single :meth:`~repro.tiers.pfs.PfsStore.put_batch` — one per-op
latency charge and one metadata op for the whole batch.

Protocol (leader/follower on a virtual-clock :class:`Monitor`):

* The first writer to arrive becomes the batch *leader* and waits up to
  ``aggregation_window_s`` (nominal) for co-located streams to join.
* Followers append to the open batch and block until it commits; filling
  the batch (``aggregation_max_ops`` / ``aggregation_max_bytes``) seals
  it early and wakes the leader.
* The leader flushes the sealed batch *outside* the monitor so new
  arrivals start the next batch immediately.

Crash consistency is commit-at-end twice over: ``put_batch`` transfers
all bytes before committing any blob (a crash mid-batch durably commits
nothing), and each member's manifest-journal entry is written by its
flusher only after ``submit`` returns. A batch failure is re-raised in
every member's thread, so each flush stream retries independently and
re-aggregates into fresh batches.

A single-member batch degenerates to the legacy ``pfs.put`` call —
identical op count, latency model, and trace spans — so aggregation under
no concurrency only adds the window wait.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.sync import Monitor

if TYPE_CHECKING:
    from repro.cluster.fabric import ClusterFabric


class _Member:
    __slots__ = ("key", "payload", "nominal_size", "cancelled", "meta", "request")

    def __init__(self, key, payload, nominal_size, cancelled, meta, request):
        self.key = key
        self.payload = payload
        self.nominal_size = nominal_size
        self.cancelled = cancelled
        self.meta = meta
        self.request = request


class _Batch:
    __slots__ = ("members", "bytes", "sealed", "done", "error", "seconds")

    def __init__(self) -> None:
        self.members: List[_Member] = []
        self.bytes = 0
        self.sealed = False
        self.done = False
        self.error: Optional[BaseException] = None
        self.seconds = 0.0


class PfsWriteAggregator:
    """Coalesces one node's concurrent PFS flush writes into batches."""

    def __init__(self, fabric: "ClusterFabric", node_id: int) -> None:
        self.fabric = fabric
        self.node_id = node_id
        self.config = fabric.config
        self.monitor = Monitor(fabric.clock)
        self._batch: Optional[_Batch] = None
        registry = fabric.telemetry.registry
        self._m_batches = registry.counter("cluster.agg.batches")
        self._m_coalesced = registry.counter("cluster.agg.coalesced_ops")

    def submit(
        self,
        key,
        payload,
        nominal_size: int,
        *,
        cancelled=None,
        meta=None,
        request=None,
    ) -> float:
        """Enqueue one whole-object write; returns when its batch committed.

        The returned seconds cover the batch transfer (shared by every
        member — they all waited on it).
        """
        member = _Member(key, payload, nominal_size, cancelled, meta, request)
        config = self.config
        with self.monitor:
            batch = self._batch
            if batch is not None and not batch.sealed:
                # Follower: join the open batch, maybe seal it, wait it out.
                batch.members.append(member)
                batch.bytes += nominal_size
                if (
                    len(batch.members) >= config.aggregation_max_ops
                    or batch.bytes >= config.aggregation_max_bytes
                ):
                    batch.sealed = True
                    self._batch = None
                    self.monitor.notify_all()
                while not batch.done:
                    self.monitor.wait(1.0)
                if batch.error is not None:
                    raise batch.error
                return batch.seconds
            # Leader: open a batch and hold the window for followers.
            batch = _Batch()
            batch.members.append(member)
            batch.bytes = nominal_size
            self._batch = batch
            deadline = self.fabric.clock.now() + config.aggregation_window_s
            while not batch.sealed:
                remaining = deadline - self.fabric.clock.now()
                if remaining <= 0:
                    break
                self.monitor.wait(remaining)
            batch.sealed = True
            if self._batch is batch:
                self._batch = None
        try:
            batch.seconds = self._flush(batch)
        except BaseException as exc:
            batch.error = exc
            raise
        finally:
            with self.monitor:
                batch.done = True
                self.monitor.notify_all()
        return batch.seconds

    def _flush(self, batch: _Batch) -> float:
        pfs = self.fabric.pfs
        members = batch.members
        if len(members) == 1:
            # Solo batch: the exact legacy call, including its cancel event.
            m = members[0]
            return pfs.put(
                m.key,
                m.payload,
                m.nominal_size,
                node_id=self.node_id,
                cancelled=m.cancelled,
                meta=m.meta,
                request=m.request,
            )
        self._m_batches.inc()
        self._m_coalesced.inc(len(members) - 1)
        # One member's cancel event must not abort its batch-mates, so the
        # batched transfer runs uncancellable; QoS accounting reuses the
        # first member's scheduler request.
        request = next((m.request for m in members if m.request is not None), None)
        entries = [(m.key, m.payload, m.nominal_size, m.meta) for m in members]
        return pfs.put_batch(entries, node_id=self.node_id, request=request)
