"""Cluster membership: node liveness, crash/rejoin chaos, partitions.

:class:`MembershipRegistry` is the fabric's view of which nodes are alive.
It drives the node-scoped fault events :class:`~repro.config.FaultConfig`
schedules (``node_crashes`` / ``node_rejoins`` / ``partitions``) and is
also the programmatic chaos entry point tests and benchmarks call
directly (:meth:`crash` / :meth:`rejoin`) so events land at deterministic
points regardless of the wall-driven virtual clock.

A node is in one of three states:

``up``
    serving reads, eligible as a replication-ring target.
``down``
    crashed.  Its engines raise :class:`~repro.errors.InjectedCrash`, its
    SSD raises :class:`~repro.errors.TierOfflineError` (fail-stop crashes
    also lose the media), and the replica directory has withdrawn every
    copy it held.
``joining``
    rejoined but still catching up.  The SSD is back online (power-loss
    crashes republish their surviving copies) and peers may read from it,
    but it stays out of the replication ring until the repairer's
    catch-up backfill finishes (:meth:`mark_up`).  Without a repairer a
    rejoin goes straight to ``up``.

Partitions are stateless window checks on the virtual clock — the same
discipline as PR 5's tier outages — so :meth:`reachable` costs two
comparisons per configured window and nothing is mutated when a window
opens or closes.

Everything here is inert until chaos is requested: with no scheduled
events, no partitions, and no manual :meth:`crash` call, ``active`` stays
False and the fabric's hot paths skip membership entirely, keeping the
disabled-config runtime bit-identical.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.cluster.fabric import ClusterFabric

UP = "up"
DOWN = "down"
JOINING = "joining"


class MembershipRegistry:
    """Node liveness registry + deterministic node-chaos driver."""

    def __init__(self, fabric: "ClusterFabric") -> None:
        self.fabric = fabric
        self.cluster = fabric.cluster
        self.clock = fabric.clock
        self.telemetry = fabric.telemetry
        self.num_nodes = fabric.num_nodes
        self._lock = threading.RLock()
        self._states: Dict[int, str] = {n: UP for n in range(self.num_nodes)}
        self._modes: Dict[int, str] = {}
        self._engines: Dict[int, List] = {n: [] for n in range(self.num_nodes)}
        self._crash_callbacks: List[Callable[[int], None]] = []
        faults_cfg = self.cluster.config.faults
        events = []
        self._partitions: tuple = ()
        if faults_cfg.enabled:
            for node_id, time_s, mode in faults_cfg.node_crashes:
                events.append((float(time_s), 0, "crash", node_id, mode))
            for node_id, time_s in faults_cfg.node_rejoins:
                events.append((float(time_s), 1, "rejoin", node_id, None))
            self._partitions = tuple(
                (a, b, float(start), float(end))
                for a, b, start, end in faults_cfg.partitions
            )
        self._events = sorted(events)
        #: chaos is (or has been) in play: scheduled events exist, a
        #: partition window is configured, or a manual crash fired.  The
        #: fabric's hot paths consult membership only when this is True.
        self.active = bool(self._events or self._partitions)
        registry = self.telemetry.registry
        self._m_crashes = registry.counter("cluster.membership.crashes")
        self._m_rejoins = registry.counter("cluster.membership.rejoins")
        self._m_degraded = registry.counter("cluster.membership.degraded_reads")
        self._m_live = registry.gauge("cluster.membership.live_nodes")
        self._m_live.set(self.num_nodes)

    # -- wiring ------------------------------------------------------------
    def register_engine(self, engine) -> None:
        """Engines register at construction so a node crash can kill them."""
        with self._lock:
            self._engines[engine.node_id].append(engine)

    def on_crash(self, callback: Callable[[int], None]) -> None:
        """Run ``callback(node_id)`` after each crash (service failover)."""
        with self._lock:
            self._crash_callbacks.append(callback)

    # -- scheduled events --------------------------------------------------
    def tick(self) -> None:
        """Apply every scheduled event whose time has passed.

        Called from the fabric's routing points (peer reads, replication,
        service RPC hops, repair scans) — apply-on-observe, the same lazy
        discipline as tier-outage windows, so no background thread is
        needed and disabled runs pay one list check.
        """
        if not self._events:
            return
        now = self.clock.now()
        due = []
        with self._lock:
            while self._events and self._events[0][0] <= now:
                due.append(self._events.pop(0))
        for _t, _order, kind, node_id, mode in due:
            if kind == "crash":
                self.crash(node_id, mode)
            else:
                self.rejoin(node_id)

    # -- chaos entry points ------------------------------------------------
    def crash(self, node_id: int, mode: str = "fail-stop") -> None:
        """Fail a whole node: engines, SSD, and directory entries.

        ``mode`` is ``"fail-stop"`` (SSD media lost with the node) or
        ``"power-loss"`` (media survives for a later :meth:`rejoin`).
        Idempotent — crashing a down node is a no-op.
        """
        if mode not in ("fail-stop", "power-loss"):
            raise ConfigError(f"unknown node-crash mode {mode!r}")
        with self._lock:
            if self._states.get(node_id) == DOWN:
                return
            if node_id not in self._states:
                raise ConfigError(f"no node {node_id} in this cluster")
            self.active = True
            self._states[node_id] = DOWN
            self._modes[node_id] = mode
            engines = list(self._engines[node_id])
            callbacks = list(self._crash_callbacks)
        # Kill the engines first so no new durable commits race the sweep,
        # then the media, then withdraw the directory entries.
        for engine in engines:
            engine.crashed.set()
            with engine.monitor:
                engine.monitor.notify_all()
        node = self.cluster.nodes[node_id]
        node.ssd.crash(preserve_contents=(mode == "power-loss"))
        withdrawn = self.fabric.directory.withdraw_node(node_id)
        repairer = self.fabric.repairer
        if repairer is not None:
            repairer.note_withdrawn(withdrawn)
        self._m_crashes.inc()
        self._m_live.set(len(self.live_nodes()))
        self.telemetry.bus.instant(
            "node-crash",
            node.ssd._track,
            node=node_id,
            mode=mode,
            withdrawn=len(withdrawn),
        )
        for callback in callbacks:
            callback(node_id)

    def rejoin(self, node_id: int) -> None:
        """Bring a crashed node back.

        The SSD powers on (a power-loss crash republishes its surviving
        copies); with a repairer attached the node enters ``joining`` and
        runs catch-up backfill before re-entering the replication ring,
        otherwise it is immediately ``up``.  Idempotent for live nodes.
        """
        with self._lock:
            if self._states.get(node_id) != DOWN:
                return
            repairer = self.fabric.repairer
            self._states[node_id] = JOINING if repairer is not None else UP
        node = self.cluster.nodes[node_id]
        restored = node.ssd.power_on()
        self._m_rejoins.inc()
        self._m_live.set(len(self.live_nodes()))
        self.telemetry.bus.instant(
            "node-rejoin",
            node.ssd._track,
            node=node_id,
            restored=len(restored),
        )
        if repairer is not None:
            repairer.backfill_node(node_id)

    def mark_up(self, node_id: int) -> None:
        """Promote a ``joining`` node to ``up`` (backfill finished)."""
        with self._lock:
            if self._states.get(node_id) == JOINING:
                self._states[node_id] = UP

    # -- queries -----------------------------------------------------------
    def state(self, node_id: int) -> str:
        with self._lock:
            return self._states[node_id]

    def is_up(self, node_id: int) -> bool:
        """Fully live: serving reads and in the replication ring."""
        with self._lock:
            return self._states.get(node_id) == UP

    def can_serve_reads(self, node_id: int) -> bool:
        """Readable: ``up`` or ``joining`` (its SSD is back online)."""
        with self._lock:
            return self._states.get(node_id) in (UP, JOINING)

    def in_ring(self, node_id: int) -> bool:
        """Eligible as a replication/repair target (``up`` only)."""
        return self.is_up(node_id)

    def live_nodes(self) -> List[int]:
        with self._lock:
            return sorted(
                n for n, state in self._states.items() if state != DOWN
            )

    def reachable(self, node_a: int, node_b: int) -> bool:
        """Whether fabric traffic can flow between two nodes right now.

        Pairwise partition windows are end-exclusive (``start <= now <
        end``) stateless checks, mirroring tier-outage windows.
        """
        if not self._partitions:
            return True
        now = self.clock.now()
        pair = {node_a, node_b}
        for a, b, start, end in self._partitions:
            if {a, b} == pair and start <= now < end:
                return False
        return True

    def note_degraded_read(self) -> None:
        """Count a read that had holders but none reachable (PFS-only)."""
        self._m_degraded.inc()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "states": dict(self._states),
                "live": [n for n, s in self._states.items() if s != DOWN],
                "pending_events": len(self._events),
            }
