"""Virtual time.

All simulated costs in this repository (transfer durations, compute
intervals, allocation penalties) are expressed in *nominal seconds* — the
units the paper reports.  :class:`VirtualClock` maps nominal time onto scaled
wall-clock time so that a shot whose nominal duration is minutes executes in
well under a second of real time, while every measured duration and derived
throughput stays in paper units.

``time_scale`` is the ratio real/virtual: with ``time_scale=0.01`` a nominal
10 ms compute interval sleeps 100 µs of wall time, and ``now()`` advances 100
virtual seconds per real second.  ``time_scale=1.0`` is an unscaled clock.

The clock is shared by every thread of a simulation so cross-thread
timestamps are comparable.  It is intentionally *not* a discrete-event
engine: the runtime under test uses real threads and condition variables,
exactly like the C++ system it reproduces, and the clock only rescales the
passage of time.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import ConfigError


#: Below this many wall-clock seconds the sleeper spins instead of calling
#: ``time.sleep`` — OS sleep granularity (~60 µs) would otherwise dominate
#: heavily-scaled transfer times and distort measured throughput.
SPIN_THRESHOLD = 200e-6


class VirtualClock:
    """A monotonic clock whose rate is ``1 / time_scale`` of wall time."""

    def __init__(self, time_scale: float = 1.0) -> None:
        if not (0.0 < time_scale <= 1000.0):
            raise ConfigError(f"time_scale out of range (0, 1000]: {time_scale}")
        self.time_scale = float(time_scale)
        self._origin = time.monotonic()

    # -- conversions -----------------------------------------------------
    def to_real(self, virtual_seconds: float) -> float:
        """Wall-clock seconds corresponding to ``virtual_seconds``."""
        return virtual_seconds * self.time_scale

    def to_virtual(self, real_seconds: float) -> float:
        """Nominal seconds corresponding to ``real_seconds`` of wall time."""
        return real_seconds / self.time_scale

    # -- reading ---------------------------------------------------------
    def now(self) -> float:
        """Nominal seconds elapsed since the clock was created."""
        return (time.monotonic() - self._origin) / self.time_scale

    # -- sleeping / waiting -----------------------------------------------
    def sleep(self, virtual_seconds: float) -> None:
        """Block the calling thread for ``virtual_seconds`` of nominal time."""
        if virtual_seconds < 0:
            raise ValueError(f"negative sleep: {virtual_seconds}")
        if virtual_seconds == 0:
            return
        deadline = time.monotonic() + self.to_real(virtual_seconds)
        # Coarse sleep down to the spin threshold, then spin the remainder.
        # OS sleeps overshoot by tens of microseconds, which at small
        # time_scale would multiply into large *virtual* errors; the final
        # spin keeps scaled durations accurate to a few microseconds.
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            if remaining > SPIN_THRESHOLD:
                time.sleep(remaining - SPIN_THRESHOLD)
            # else: spin (loop re-checks the deadline immediately)

    def wait_for(
        self,
        cond: threading.Condition,
        predicate: Callable[[], bool],
        virtual_timeout: Optional[float] = None,
    ) -> bool:
        """``Condition.wait_for`` with the timeout given in nominal seconds.

        The condition's lock must already be held.  Returns the final value
        of ``predicate()`` (i.e. ``False`` only on timeout).
        """
        real_timeout = None if virtual_timeout is None else self.to_real(virtual_timeout)
        return cond.wait_for(predicate, timeout=real_timeout)


class Stopwatch:
    """Measures a nominal-time interval on a :class:`VirtualClock`.

    Usable as a context manager::

        with Stopwatch(clock) as sw:
            do_blocking_work()
        elapsed = sw.elapsed
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self.started_at: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.started_at = self._clock.now()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self.started_at is not None
        self.elapsed = self._clock.now() - self.started_at
