"""Timeline export and terminal sparklines.

``export_csv`` / ``export_json`` dump a recorder's per-operation events for
external plotting (the figures in the paper are scatter/line plots over
these).  ``sparkline`` renders a quick terminal view of a series — the
examples use it to show the Fig.-7 shape without a plotting stack.
"""

from __future__ import annotations

import csv
import json
from typing import List, Sequence, Tuple

from repro.metrics.recorder import Recorder

_FIELDS = (
    "kind",
    "ckpt_id",
    "started_at",
    "blocked",
    "nominal_bytes",
    "prefetch_distance",
    "source_level",
)

_BARS = "▁▂▃▄▅▆▇█"


def _event_rows(recorder: Recorder) -> List[dict]:
    rows = []
    for event in sorted(recorder.events, key=lambda e: e.started_at):
        rows.append(
            {
                "kind": event.kind.value,
                "ckpt_id": event.ckpt_id,
                "started_at": event.started_at,
                "blocked": event.blocked,
                "nominal_bytes": event.nominal_bytes,
                "prefetch_distance": event.prefetch_distance,
                "source_level": event.source_level,
            }
        )
    return rows


def export_csv(recorder: Recorder, path: str) -> int:
    """Write one row per recorded event; returns the row count."""
    rows = _event_rows(recorder)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def export_json(recorder: Recorder, path: str) -> int:
    """Write the event list as JSON; returns the event count."""
    rows = _event_rows(recorder)
    with open(path, "w") as fh:
        json.dump({"process_id": recorder.process_id, "events": rows}, fh)
    return len(rows)


def sparkline(series: Sequence[Tuple[object, float]], width: int = 60) -> str:
    """A one-line unicode rendering of an (x, y) series, downsampled."""
    values = [float(y) for _, y in series]
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _BARS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_BARS) - 1))
        out.append(_BARS[idx])
    return "".join(out)
