"""Throughput aggregation in the paper's terms.

Checkpoint (restore) throughput = total checkpoint bytes / total blocking
time of the checkpoint (restore) operations, per process; figures report the
average across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.metrics.recorder import OpKind, Recorder


@dataclass(frozen=True)
class ThroughputSummary:
    """Per-run aggregate across a set of processes (nominal bytes/second).

    ``checkpoint`` / ``restore`` are pooled rates (all processes' bytes over
    all processes' blocking time — a bytes-weighted harmonic mean of the
    per-process rates, robust to one unblocked outlier process);
    ``checkpoint_mean`` / ``restore_mean`` are the arithmetic means of the
    per-process rates (what a per-rank bar chart would show).
    """

    checkpoint: float
    restore: float
    checkpoint_mean: float
    restore_mean: float
    checkpoint_blocked: float  # mean nominal seconds blocked per process
    restore_blocked: float
    total_bytes: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ckpt {self.checkpoint / 2**30:.2f} GiB/s, "
            f"restore {self.restore / 2**30:.2f} GiB/s"
        )


def _per_process_rate(recorder: Recorder, kind: OpKind) -> Tuple[float, float, int]:
    blocked = recorder.total_blocked(kind)
    nbytes = recorder.total_bytes(kind)
    rate = nbytes / blocked if blocked > 0 else 0.0
    return rate, blocked, nbytes


def throughput(recorders: Iterable[Recorder]) -> ThroughputSummary:
    """Average per-process checkpoint/restore throughput."""
    recorders = list(recorders)
    if not recorders:
        raise ValueError("no recorders to aggregate")
    ckpt_rates: List[float] = []
    rst_rates: List[float] = []
    ckpt_blocked: List[float] = []
    rst_blocked: List[float] = []
    ckpt_bytes = 0
    rst_bytes = 0
    for rec in recorders:
        rate, blocked, nbytes = _per_process_rate(rec, OpKind.CHECKPOINT)
        if nbytes:
            ckpt_rates.append(rate)
            ckpt_blocked.append(blocked)
            ckpt_bytes += nbytes
        rate, blocked, nbytes = _per_process_rate(rec, OpKind.RESTORE)
        if nbytes:
            rst_rates.append(rate)
            rst_blocked.append(blocked)
            rst_bytes += nbytes
    pooled_ckpt = ckpt_bytes / sum(ckpt_blocked) if sum(ckpt_blocked) > 0 else 0.0
    pooled_rst = rst_bytes / sum(rst_blocked) if sum(rst_blocked) > 0 else 0.0
    return ThroughputSummary(
        checkpoint=pooled_ckpt,
        restore=pooled_rst,
        checkpoint_mean=sum(ckpt_rates) / len(ckpt_rates) if ckpt_rates else 0.0,
        restore_mean=sum(rst_rates) / len(rst_rates) if rst_rates else 0.0,
        checkpoint_blocked=sum(ckpt_blocked) / len(ckpt_blocked) if ckpt_blocked else 0.0,
        restore_blocked=sum(rst_blocked) / len(rst_blocked) if rst_blocked else 0.0,
        total_bytes=ckpt_bytes,
    )


def restore_rate_series(recorder: Recorder) -> List[Tuple[int, float]]:
    """Per-restore throughput over iterations (Fig. 7's restore-rate line).

    Returns ``(iteration, bytes_per_second)`` in restore order.
    """
    out: List[Tuple[int, float]] = []
    for idx, event in enumerate(recorder.restores()):
        rate = event.nominal_bytes / event.blocked if event.blocked > 0 else float("inf")
        out.append((idx, rate))
    return out


def stacked_per_process(
    recorders: Sequence[Recorder],
) -> List[Tuple[int, float, float]]:
    """Per-process (pid, ckpt rate, restore rate) — Fig. 9's stacked bars."""
    out: List[Tuple[int, float, float]] = []
    for rec in recorders:
        c, _, _ = _per_process_rate(rec, OpKind.CHECKPOINT)
        r, _, _ = _per_process_rate(rec, OpKind.RESTORE)
        out.append((rec.process_id, c, r))
    return out
