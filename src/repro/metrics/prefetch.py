"""Prefetch-distance series (Fig. 7).

The prefetch distance of a restore is the number of *successor* checkpoints
(per the hint order) already staged on the GPU cache at the moment the
restore is issued — the engine samples it per restore; this module extracts
the series.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.metrics.recorder import Recorder


def prefetch_distance_series(recorder: Recorder) -> List[Tuple[int, int]]:
    """``(iteration, completed next prefetches)`` in restore order."""
    out: List[Tuple[int, int]] = []
    for idx, event in enumerate(recorder.restores()):
        out.append((idx, event.prefetch_distance if event.prefetch_distance is not None else 0))
    return out


def mean_prefetch_distance(recorder: Recorder) -> float:
    series = prefetch_distance_series(recorder)
    if not series:
        return 0.0
    return sum(d for _, d in series) / len(series)
