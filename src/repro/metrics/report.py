"""Plain-text rendering of paper-style tables and series."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.util.units import format_bandwidth


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """A fixed-width table with a title rule, like the paper's result grids."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    series: Sequence[Tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 32,
) -> str:
    """A compact two-column rendering of an (x, y) series, downsampled."""
    points = list(series)
    if len(points) > max_points:
        step = max(1, len(points) // max_points)
        points = points[::step]
    return render_table(title, [x_label, y_label], points)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 2**20:  # looks like a byte rate
            return format_bandwidth(cell)
        return f"{cell:.3g}"
    return str(cell)
