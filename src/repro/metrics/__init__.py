"""Measurement: per-operation event recording and paper-style aggregation."""

from repro.metrics.recorder import OpEvent, OpKind, Recorder
from repro.metrics.throughput import ThroughputSummary, restore_rate_series, throughput
from repro.metrics.prefetch import prefetch_distance_series
from repro.metrics.report import render_series, render_table

__all__ = [
    "OpEvent",
    "OpKind",
    "Recorder",
    "ThroughputSummary",
    "throughput",
    "restore_rate_series",
    "prefetch_distance_series",
    "render_table",
    "render_series",
]
