"""Per-operation event recording.

Each engine gets a :class:`Recorder`; the application-facing operations
record one :class:`OpEvent` per call with the *blocking* duration (what the
paper measures: "total checkpoint size divided by blocking time of
checkpoint and restore operations"), and background activities record
flush/prefetch/eviction events for diagnostics.

Durations and timestamps are nominal seconds on the engine's virtual clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Union


class OpKind(Enum):
    CHECKPOINT = "checkpoint"
    RESTORE = "restore"
    FLUSH = "flush"
    PREFETCH = "prefetch"
    EVICTION = "eviction"


@dataclass(frozen=True)
class OpEvent:
    kind: OpKind
    ckpt_id: int
    started_at: float  # nominal seconds
    blocked: float  # nominal seconds the caller was blocked
    nominal_bytes: int
    #: restore only: checkpoints already staged on the GPU cache ahead of
    #: this one per the hint order (the paper's prefetch distance, Fig. 7).
    prefetch_distance: Optional[int] = None
    #: restore only: which tier served the request before promotion.
    source_level: Optional[str] = None


class Recorder:
    """Thread-safe event sink for one process.

    Events are bucketed per kind on the way in and the blocked/byte sums
    are maintained as running totals, so the query methods used on hot
    paths (``counts``, ``total_blocked``, ``total_bytes``) are O(kinds)
    dictionary reads instead of a lock-and-scan over every event, and
    ``of_kind`` copies one bucket instead of filtering the full log.
    """

    def __init__(self, process_id: int = 0, events: Optional[List[OpEvent]] = None) -> None:
        self.process_id = process_id
        #: all events in arrival order (live list — callers such as the
        #: timeline reconstruction iterate it after the run has settled).
        self.events: List[OpEvent] = []
        self._lock = threading.Lock()
        self._by_kind: Dict[OpKind, List[OpEvent]] = {kind: [] for kind in OpKind}
        self._blocked: Dict[OpKind, float] = {kind: 0.0 for kind in OpKind}
        self._bytes: Dict[OpKind, int] = {kind: 0 for kind in OpKind}
        if events:
            for event in events:
                self.record(event)

    def record(self, event: OpEvent) -> None:
        with self._lock:
            self._append(event)

    def _append(self, event: OpEvent) -> None:
        """Lock held: index one event."""
        self.events.append(event)
        self._by_kind[event.kind].append(event)
        self._blocked[event.kind] += event.blocked
        self._bytes[event.kind] += event.nominal_bytes

    def of_kind(self, kind: OpKind) -> List[OpEvent]:
        with self._lock:
            return list(self._by_kind[kind])

    def checkpoints(self) -> List[OpEvent]:
        return self.of_kind(OpKind.CHECKPOINT)

    def restores(self) -> List[OpEvent]:
        return self.of_kind(OpKind.RESTORE)

    def total_blocked(self, kind: OpKind) -> float:
        with self._lock:
            return self._blocked[kind]

    def total_bytes(self, kind: OpKind) -> int:
        with self._lock:
            return self._bytes[kind]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {
                kind.value: len(bucket)
                for kind, bucket in self._by_kind.items()
                if bucket
            }

    def snapshot(self) -> List[OpEvent]:
        """One consistent copy of the event log (single lock acquisition).

        Use this to hand the log to another thread or process boundary;
        the copy is immutable-by-convention and safe to iterate while the
        recorder keeps appending.
        """
        with self._lock:
            return list(self.events)

    def merge(self, other: Union["Recorder", Iterable[OpEvent]]) -> None:
        """Fold another recorder's events into this one.

        Used to combine per-process recorders after a multi-process run.
        The combined log is re-sorted by ``started_at`` so timeline
        consumers see one coherent virtual-clock ordering.
        """
        incoming = other.snapshot() if isinstance(other, Recorder) else list(other)
        with self._lock:
            for event in incoming:
                self._append(event)
            self.events.sort(key=lambda e: e.started_at)
            for bucket in self._by_kind.values():
                bucket.sort(key=lambda e: e.started_at)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
            for kind in OpKind:
                self._by_kind[kind].clear()
                self._blocked[kind] = 0.0
                self._bytes[kind] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Recorder(process_id={self.process_id}, events={len(self.events)})"
