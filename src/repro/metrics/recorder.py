"""Per-operation event recording.

Each engine gets a :class:`Recorder`; the application-facing operations
record one :class:`OpEvent` per call with the *blocking* duration (what the
paper measures: "total checkpoint size divided by blocking time of
checkpoint and restore operations"), and background activities record
flush/prefetch/eviction events for diagnostics.

Durations and timestamps are nominal seconds on the engine's virtual clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class OpKind(Enum):
    CHECKPOINT = "checkpoint"
    RESTORE = "restore"
    FLUSH = "flush"
    PREFETCH = "prefetch"
    EVICTION = "eviction"


@dataclass(frozen=True)
class OpEvent:
    kind: OpKind
    ckpt_id: int
    started_at: float  # nominal seconds
    blocked: float  # nominal seconds the caller was blocked
    nominal_bytes: int
    #: restore only: checkpoints already staged on the GPU cache ahead of
    #: this one per the hint order (the paper's prefetch distance, Fig. 7).
    prefetch_distance: Optional[int] = None
    #: restore only: which tier served the request before promotion.
    source_level: Optional[str] = None


@dataclass
class Recorder:
    """Thread-safe event sink for one process."""

    process_id: int = 0
    events: List[OpEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, event: OpEvent) -> None:
        with self._lock:
            self.events.append(event)

    def of_kind(self, kind: OpKind) -> List[OpEvent]:
        with self._lock:
            return [e for e in self.events if e.kind is kind]

    def checkpoints(self) -> List[OpEvent]:
        return self.of_kind(OpKind.CHECKPOINT)

    def restores(self) -> List[OpEvent]:
        return self.of_kind(OpKind.RESTORE)

    def total_blocked(self, kind: OpKind) -> float:
        return sum(e.blocked for e in self.of_kind(kind))

    def total_bytes(self, kind: OpKind) -> int:
        return sum(e.nominal_bytes for e in self.of_kind(kind))

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for e in self.events:
                out[e.kind.value] = out.get(e.kind.value, 0) + 1
            return out

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
