"""Configuration dataclasses: hardware model, scaling model, runtime knobs.

The hardware numbers default to the paper's ThetaGPU DGX-A100 node
(Section 5.1): 1 TB/s HBM device-to-device, 25 GB/s pinned PCIe Gen 4 per
link (shared by two GPUs), 4 GB/s NVMe per drive, pinned-host allocation at
4 GB/s, eight GPUs per node.

Because no real GPU is present, a :class:`ScaleModel` shrinks the experiment
along two independent axes:

* ``data_scale`` — nominal bytes per actually-stored payload byte.  The
  allocation tables, capacities and bandwidth arithmetic run on *nominal*
  sizes; only the backing numpy buffers shrink.
* ``time_scale`` — wall-clock seconds per nominal second (see
  :mod:`repro.clock`).

Both default to 1 (full fidelity); experiment presets pick aggressive values
so a full shot runs in under a second of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError
from repro.util.units import GiB, KiB, MiB, TiB, parse_bandwidth, parse_size


@dataclass(frozen=True)
class HardwareSpec:
    """Nominal performance characteristics of one compute node.

    Bandwidths are bytes per nominal second; latencies are nominal seconds
    added per transfer (command submission + interconnect setup).
    """

    gpus_per_node: int = 8
    gpus_per_pcie_link: int = 2

    gpu_hbm_capacity: int = 40 * GiB
    host_memory_capacity: int = 1024 * GiB

    d2d_bandwidth: float = 1.0 * TiB  # HBM copies within one GPU
    d2h_bandwidth: float = 25.0 * GiB  # pinned, per PCIe link
    h2d_bandwidth: float = 25.0 * GiB  # pinned, per PCIe link
    d2h_unpinned_bandwidth: float = 6.0 * GiB  # pageable staging (ADIOS2 path)
    #: engine-level (de)serialization of checkpoints into transport buffers
    #: (what makes the paper's measured ADIOS2 throughput an order of
    #: magnitude below raw PCIe speed).
    host_serialize_bandwidth: float = 0.5 * GiB
    #: effective node-aggregate NVMe bandwidth.  The node has four Gen 4
    #: drives at 4 GB/s each; the paper's measured effective flush rate is
    #: 685 MB/s per rank × 8 ranks ≈ 5.5 GB/s of sustained aggregate, which
    #: is what the flush pipeline actually obtains.
    ssd_write_bandwidth: float = 5.5 * GiB
    ssd_read_bandwidth: float = 5.5 * GiB
    pfs_write_bandwidth: float = 2.0 * GiB  # per node share of Lustre
    pfs_read_bandwidth: float = 2.0 * GiB
    #: node-to-node fabric (HDR InfiniBand class), used by partner
    #: replication (a VELOC resilience strategy, Section 3.1).
    internode_bandwidth: float = 20.0 * GiB

    # Allocation costs (Section 4.1.4): pinned host allocation ~4 GB/s,
    # device allocation ~1 TB/s.  Paid once per arena at initialization.
    host_pin_bandwidth: float = 4.0 * GiB
    gpu_alloc_bandwidth: float = 1.0 * TiB

    transfer_latency: float = 20e-6  # per asynchronous copy
    ssd_latency: float = 80e-6  # per file op
    pfs_latency: float = 500e-6

    # UVM model (Section 5.2.2 comparator)
    uvm_page_size: int = 2 * MiB
    uvm_fault_latency: float = 25e-6  # per faulted page group
    uvm_fault_pages_per_group: int = 16  # fault-replay batches
    uvm_migration_bandwidth: float = 8.0 * GiB  # fault-driven paging is
    # substantially slower than explicit pinned copies (fault replay +
    # driver bookkeeping; cf. Allen & Ge, IPDPS'21)

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ConfigError(f"gpus_per_node must be positive: {self.gpus_per_node}")
        if self.gpus_per_pcie_link <= 0:
            raise ConfigError(
                f"gpus_per_pcie_link must be positive: {self.gpus_per_pcie_link}"
            )
        if self.gpus_per_node % self.gpus_per_pcie_link != 0:
            raise ConfigError(
                "gpus_per_node must be a multiple of gpus_per_pcie_link: "
                f"{self.gpus_per_node} % {self.gpus_per_pcie_link} != 0"
            )
        for name in (
            "d2d_bandwidth",
            "d2h_bandwidth",
            "h2d_bandwidth",
            "d2h_unpinned_bandwidth",
            "ssd_write_bandwidth",
            "ssd_read_bandwidth",
            "pfs_write_bandwidth",
            "pfs_read_bandwidth",
            "host_pin_bandwidth",
            "gpu_alloc_bandwidth",
            "uvm_migration_bandwidth",
            "host_serialize_bandwidth",
            "internode_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        for name in ("transfer_latency", "ssd_latency", "pfs_latency", "uvm_fault_latency"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.uvm_page_size <= 0 or self.uvm_fault_pages_per_group <= 0:
            raise ConfigError("UVM page parameters must be positive")

    @property
    def pcie_links_per_node(self) -> int:
        return self.gpus_per_node // self.gpus_per_pcie_link


@dataclass(frozen=True)
class ScaleModel:
    """Mapping between nominal (paper-unit) and executed quantities."""

    data_scale: int = 1
    time_scale: float = 1.0
    #: nominal allocation granularity; all checkpoint sizes and cache
    #: capacities are rounded up to a multiple of this, which guarantees the
    #: scaled payload offsets stay integral.
    alignment: int = 64 * KiB

    def __post_init__(self) -> None:
        if self.data_scale < 1:
            raise ConfigError(f"data_scale must be >= 1: {self.data_scale}")
        if not (0.0 < self.time_scale <= 1000.0):
            raise ConfigError(f"time_scale out of range: {self.time_scale}")
        if self.alignment < 1 or self.alignment % self.data_scale != 0:
            raise ConfigError(
                f"alignment ({self.alignment}) must be a positive multiple of "
                f"data_scale ({self.data_scale})"
            )

    def align(self, nominal_size: int) -> int:
        """Round a nominal size up to the allocation granularity."""
        if nominal_size < 0:
            raise ConfigError(f"negative size: {nominal_size}")
        if nominal_size == 0:
            return self.alignment
        return ((nominal_size + self.alignment - 1) // self.alignment) * self.alignment

    def payload_bytes(self, nominal_size: int) -> int:
        """Actually-stored bytes for a nominal size (must be aligned)."""
        if nominal_size % self.data_scale != 0:
            raise ConfigError(
                f"nominal size {nominal_size} not a multiple of data_scale "
                f"{self.data_scale}; call align() first"
            )
        return nominal_size // self.data_scale


#: ScaleModel used by the test-suite and the shipped benchmarks: 128 MiB
#: nominal checkpoints store 256 payload bytes, and one nominal second lasts
#: 20 ms of wall time.  All *nominal* quantities (sizes, bandwidths, cache
#: capacities, compute intervals) stay exactly at the paper's values — only
#: the stored bytes and the wall clock shrink.  Transfer durations are
#: *accounted* analytically (see Link.transfer), so the time scale mainly
#: bounds how much condition-variable wake-up latency (~0.1 ms real)
#: pollutes measured waits: at 0.1 it maps to ~1 ms nominal, small against
#: the flush/eviction waits it rides on.
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.1, alignment=512 * KiB)


@dataclass(frozen=True)
class CacheConfig:
    """Per-process cache reservations (Section 5.3.4 defaults)."""

    gpu_cache_size: int = 4 * GiB
    host_cache_size: int = 32 * GiB

    def __post_init__(self) -> None:
        if self.gpu_cache_size <= 0:
            raise ConfigError(f"gpu_cache_size must be positive: {self.gpu_cache_size}")
        if self.host_cache_size <= 0:
            raise ConfigError(f"host_cache_size must be positive: {self.host_cache_size}")

    @staticmethod
    def of(gpu: object, host: object) -> "CacheConfig":
        """Build from sizes in any form ``parse_size`` accepts."""
        return CacheConfig(gpu_cache_size=parse_size(gpu), host_cache_size=parse_size(host))


@dataclass(frozen=True)
class SchedConfig:
    """Knobs of the QoS transfer scheduler (:mod:`repro.sched`).

    With ``enabled=False`` (the default) every shared link keeps its
    unarbitrated FIFO chunk interleave — bit-for-bit the pre-scheduler
    behaviour, and the baseline mode of ``benchmarks/bench_contention.py``.
    """

    #: master switch: attach a :class:`~repro.sched.LinkScheduler` to every
    #: shared tier link (PCIe, SSD, PFS, inter-node fabric).
    enabled: bool = False
    #: largest span one grant moves before the link is re-arbitrated.
    #: Bounds how long a newly-arrived demand read waits behind an already
    #: in-flight lower-class transfer (``quantum_bytes / bandwidth``).
    quantum_bytes: int = 64 * MiB
    #: WFQ weight for engines without an explicit entry in
    #: ``engine_weights`` (service within a class is proportional to weight).
    default_weight: float = 1.0
    #: optional per-engine WFQ weight overrides: ((engine_id, weight), ...).
    engine_weights: tuple = ()
    #: per-engine token-bucket refill, bytes per nominal second, applied to
    #: background classes (prefetch + flush) on every scheduled link.
    #: ``None`` = unlimited.
    engine_rate_limit: Optional[float] = None
    #: token-bucket capacity (burst allowance) when rate limiting is on.
    burst_bytes: int = 64 * MiB
    #: bounded-queue limit for SPECULATIVE_PREFETCH requests per link;
    #: arrivals beyond it are shed with :class:`~repro.errors.AdmissionError`
    #: (the prefetcher backs off and retries).
    max_speculative_queue: int = 4
    #: bounded-queue limit for CASCADE_FLUSH requests per link; arrivals
    #: beyond it *block* in admission until the backlog drains (flushes
    #: must eventually happen — shedding them would lose durability).
    max_flush_queue: int = 16
    #: engine-level admission control: when the D2H flush backlog reaches
    #: this many pending flushes, ``checkpoint()`` applies ``admission``.
    max_flush_backlog: int = 32
    #: overload behaviour of ``checkpoint()``: "block" waits for the flush
    #: backlog to drop below ``max_flush_backlog``, "shed" raises
    #: :class:`~repro.errors.BackpressureError`, "off" never intervenes.
    admission: str = "block"
    #: hints at restore-queue distance ≤ this prefetch as HINTED_PREFETCH;
    #: farther hints are SPECULATIVE_PREFETCH (preemptible, sheddable).
    hint_near_distance: int = 4
    #: nominal seconds per hint-queue position used to derive prefetch
    #: deadlines (deadline = now + distance * hint_spacing_s); EDF within
    #: the prefetch classes paces far-future prefetches behind near ones.
    hint_spacing_s: float = 0.010
    #: cancel in-flight speculative prefetches on a link the moment a
    #: demand read arrives there (the freed slot and bandwidth go to the
    #: demand read; the prefetcher re-issues later).
    preempt_speculative: bool = True

    def __post_init__(self) -> None:
        if self.quantum_bytes <= 0:
            raise ConfigError(f"quantum_bytes must be positive: {self.quantum_bytes}")
        if self.default_weight <= 0:
            raise ConfigError(f"default_weight must be positive: {self.default_weight}")
        for entry in self.engine_weights:
            if len(entry) != 2 or entry[1] <= 0:
                raise ConfigError(f"bad engine_weights entry: {entry!r}")
        if self.engine_rate_limit is not None and self.engine_rate_limit <= 0:
            raise ConfigError(
                f"engine_rate_limit must be positive or None: {self.engine_rate_limit}"
            )
        if self.burst_bytes <= 0:
            raise ConfigError(f"burst_bytes must be positive: {self.burst_bytes}")
        if self.max_speculative_queue < 0 or self.max_flush_queue < 1:
            raise ConfigError("scheduler queue bounds out of range")
        if self.max_flush_backlog < 1:
            raise ConfigError(f"max_flush_backlog must be >= 1: {self.max_flush_backlog}")
        if self.admission not in ("block", "shed", "off"):
            raise ConfigError(f"unknown admission policy: {self.admission!r}")
        if self.hint_near_distance < 0:
            raise ConfigError(f"hint_near_distance must be >= 0: {self.hint_near_distance}")
        if self.hint_spacing_s < 0:
            raise ConfigError(f"hint_spacing_s must be >= 0: {self.hint_spacing_s}")

    def weight_of(self, engine_id: int) -> float:
        for eid, weight in self.engine_weights:
            if eid == engine_id:
                return float(weight)
        return self.default_weight


@dataclass(frozen=True)
class ReduceConfig:
    """Knobs of the data-reduction pipeline (:mod:`repro.reduce`).

    With ``enabled=False`` (the default) no reducer is constructed and every
    checkpoint travels the tier hierarchy at its full logical size —
    bit-for-bit the pre-reduction behaviour (same discipline as
    :class:`SchedConfig`).  When enabled, checkpoints are chunked, deduped
    against a per-tier content-addressed chunk store, delta-encoded against
    the previous checkpoint of the same variable, and run through a
    *modeled* compression codec; the reduced **physical** size is what
    occupies cache arenas and travels the tier links, while restores
    reconstruct the full logical payload before ``READ_COMPLETE``.
    """

    #: master switch: attach a :class:`~repro.reduce.Reducer` to every engine.
    enabled: bool = False
    #: where the reduction boundary sits: ``"gpu"`` encodes on the device at
    #: checkpoint time (every tier, including the GPU cache, holds the
    #: physical form and every link moves physical bytes); ``"host"`` keeps
    #: the GPU cache logical and encodes on the host during the D2H flush
    #: (host/SSD/PFS hold physical bytes — the codec runs off the
    #: application's critical path, but PCIe still moves logical bytes).
    site: str = "gpu"
    #: chunking strategy: ``"fixed"`` (fixed-size boundaries) or ``"cdc"``
    #: (content-defined boundaries via a gear rolling hash, so insertions
    #: do not shift every downstream chunk identity).
    chunking: str = "fixed"
    #: nominal bytes per chunk (fixed) / target average chunk (cdc).
    chunk_size: int = 8 * MiB
    #: cdc minimum/maximum chunk bounds (nominal bytes).
    min_chunk_size: int = 2 * MiB
    max_chunk_size: int = 32 * MiB
    #: delta-encode chunks against the previous checkpoint of the same
    #: variable when the byte diff is small enough to pay off.
    delta: bool = True
    #: a chunk is delta-encoded only when its diff is below this fraction
    #: of the chunk size (otherwise the full chunk is cheaper to store).
    delta_threshold: float = 0.6
    #: longest allowed chain of delta-encoded checkpoints; the next encode
    #: past the bound *rebases* (stores a self-contained version) so
    #: restore latency stays predictable.
    max_delta_chain: int = 4
    #: modeled decode-time penalty per chain level: reconstructing a
    #: depth-``d`` checkpoint is charged ``1 + d * chain_penalty`` times
    #: the flat decode cost.
    chain_penalty: float = 0.25
    #: modeled compression codec: ``"none"``, ``"lz"`` (fast, modest
    #: ratio) or ``"zstd"`` (slower, denser); see :mod:`repro.reduce.codec`.
    codec: str = "lz"
    #: nominal metadata bytes charged per chunk reference in the recipe.
    recipe_overhead: int = 48

    def __post_init__(self) -> None:
        if self.site not in ("gpu", "host"):
            raise ConfigError(f"unknown reduction site: {self.site!r}")
        if self.chunking not in ("fixed", "cdc"):
            raise ConfigError(f"unknown chunking strategy: {self.chunking!r}")
        if self.chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive: {self.chunk_size}")
        if not (0 < self.min_chunk_size <= self.chunk_size <= self.max_chunk_size):
            raise ConfigError(
                "chunk bounds must satisfy 0 < min <= avg <= max: "
                f"{self.min_chunk_size} / {self.chunk_size} / {self.max_chunk_size}"
            )
        if not (0.0 < self.delta_threshold <= 1.0):
            raise ConfigError(f"delta_threshold out of (0, 1]: {self.delta_threshold}")
        if self.max_delta_chain < 0:
            raise ConfigError(f"max_delta_chain must be >= 0: {self.max_delta_chain}")
        if self.chain_penalty < 0:
            raise ConfigError(f"chain_penalty must be >= 0: {self.chain_penalty}")
        if self.recipe_overhead < 0:
            raise ConfigError(f"recipe_overhead must be >= 0: {self.recipe_overhead}")
        from repro.reduce.codec import known_codecs  # cycle-free (lazy)

        if self.codec not in known_codecs():
            raise ConfigError(
                f"unknown codec {self.codec!r}; known: {sorted(known_codecs())}"
            )


@dataclass(frozen=True)
class StreamConfig:
    """Pipelined chunk streaming through the flush/prefetch cascades.

    With ``enabled=False`` (the default) every cascade stage remains
    store-and-forward — a checkpoint fully lands on one tier before the
    next hop starts — bit-for-bit the historical behaviour (same
    discipline as :class:`SchedConfig` / :class:`ReduceConfig` /
    :class:`FaultConfig`).  When enabled, each transfer is split into
    fixed-size chunks streamed through a per-checkpoint ring buffer: the
    D2H, host→SSD and SSD→PFS hops overlap chunk-by-chunk (and promotions
    overlap the storage read with the H2D crossing), so end-to-end
    durability latency approaches ``max(stage)`` instead of
    ``sum(stages)``.
    """

    #: master switch: stream the flush cascade and the promote path.
    enabled: bool = False
    #: nominal bytes per streamed chunk.  Sized so 2–3 chunks fit a
    #: double-buffered 32–48 MiB staging window; transfers smaller than
    #: ``min_stream_chunks`` chunks take the legacy whole-object path
    #: (per-chunk latency would dominate).
    stream_chunk_bytes: int = 16 * MiB
    #: ring-buffer depth in chunks: a producer stage may run at most this
    #: many chunks ahead of its consumer before backpressure parks it
    #: (double buffer + 1 in-flight chunk).
    ring_chunks: int = 3
    #: minimum chunk count for the streamed path; shorter transfers stay
    #: store-and-forward.
    min_stream_chunks: int = 2
    #: also stream demand/prefetch promotions (storage read overlapped
    #: with the H2D crossing through the same ring buffer).
    prefetch: bool = True

    def __post_init__(self) -> None:
        if self.stream_chunk_bytes <= 0:
            raise ConfigError(
                f"stream_chunk_bytes must be positive: {self.stream_chunk_bytes}"
            )
        if self.ring_chunks < 2:
            raise ConfigError(
                f"ring_chunks must be >= 2 (double buffer): {self.ring_chunks}"
            )
        if self.min_stream_chunks < 2:
            raise ConfigError(
                f"min_stream_chunks must be >= 2: {self.min_stream_chunks}"
            )


#: flush-stage names a :class:`FaultConfig` crash point may name, each
#: optionally prefixed ``before-`` / ``after-`` (bare name == ``before-``).
CRASH_STAGES = ("d2h", "d2s", "h2f", "f2p", "repl")

#: node-crash modes a :class:`FaultConfig` ``node_crashes`` entry may name.
#: ``"fail-stop"`` loses the node's SSD contents (media gone with the node);
#: ``"power-loss"`` kills the node but preserves the SSD media, so a later
#: rejoin republishes the surviving local copies.
NODE_CRASH_MODES = ("fail-stop", "power-loss")


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic, seeded fault injection (:mod:`repro.faults`).

    With ``enabled=False`` (the default) nothing is attached anywhere and
    the runtime is bit-identical to a build without the subsystem (same
    discipline as :class:`SchedConfig` / :class:`ReduceConfig`).  When
    enabled, a :class:`~repro.faults.FaultPlan` derived from ``seed`` makes
    every injection decision reproducibly: the same config + seed yields
    the same faults at the same virtual times regardless of thread
    interleaving.
    """

    #: master switch: attach a fault injector to every Link and tier store.
    enabled: bool = False
    #: root seed of the plan; every decision derives from it via
    #: :func:`repro.util.rng.derive_seed` (independent of RuntimeConfig.seed
    #: so workload payloads stay identical across fault sweeps).
    seed: int = 93
    #: probability that any one Link.transfer() call fails in flight with a
    #: :class:`~repro.errors.TransientTransferError` after moving a drawn
    #: fraction of its bytes (charged on the virtual clock).
    transfer_fault_rate: float = 0.0
    #: restrict transfer faults to links whose name contains one of these
    #: substrings (e.g. ``("ssd", "pfs")``); empty = all links.
    fault_links: tuple = ()
    #: the failing transfer moves a fraction of its bytes drawn uniformly
    #: from [min_fault_fraction, max_fault_fraction] before the error.
    min_fault_fraction: float = 0.05
    max_fault_fraction: float = 0.95
    #: tier outage / degradation windows: ``(tier, start_s, end_s, factor)``
    #: tuples on the virtual clock.  ``tier`` is ``"ssd"`` or ``"pfs"``;
    #: ``factor == 0.0`` is a hard outage (ops raise
    #: :class:`~repro.errors.TierOfflineError`), ``0 < factor < 1`` is a
    #: brownout (ops succeed at ``factor`` of nominal throughput).
    tier_outages: tuple = ()
    #: probability that a blob put at a durable tier lands corrupted
    #: (one byte flipped at rest); decided per (key, attempt) so a re-put
    #: after detection draws independently.
    corruption_rate: float = 0.0
    #: kill the engine at a flush-stage boundary: ``"before-h2f"``,
    #: ``"after-d2h"``, … (see :data:`CRASH_STAGES`); None = never.
    crash_point: Optional[str] = None
    #: fire the crash point only for this checkpoint id (None = first hit).
    crash_ckpt: Optional[int] = None
    #: scheduled whole-node crashes: ``(node_id, time_s, mode)`` tuples on
    #: the virtual clock, ``mode`` one of :data:`NODE_CRASH_MODES`.  At
    #: ``time_s`` the node's engines stop accepting work, its SSD goes
    #: offline (``"fail-stop"`` also wipes the media), and the replica
    #: directory withdraws every copy it held.
    node_crashes: tuple = ()
    #: scheduled node rejoins: ``(node_id, time_s)`` tuples.  A rejoining
    #: node powers its SSD back on (power-loss crashes keep their blobs),
    #: republishes surviving copies, and — when the repairer is enabled —
    #: stays out of the replication ring until catch-up backfill finishes.
    node_rejoins: tuple = ()
    #: pairwise network-partition windows: ``(node_a, node_b, start_s,
    #: end_s)`` tuples on the virtual clock; while ``start <= now < end``
    #: the two nodes cannot exchange fabric traffic (peer reads and
    #: replication route around the cut, or drop to the PFS).
    partitions: tuple = ()

    def __post_init__(self) -> None:
        if not (0.0 <= self.transfer_fault_rate <= 1.0):
            raise ConfigError(
                f"transfer_fault_rate out of [0, 1]: {self.transfer_fault_rate}"
            )
        if not (0.0 <= self.corruption_rate <= 1.0):
            raise ConfigError(f"corruption_rate out of [0, 1]: {self.corruption_rate}")
        if not (0.0 < self.min_fault_fraction <= self.max_fault_fraction < 1.0):
            raise ConfigError(
                "fault fractions must satisfy 0 < min <= max < 1: "
                f"{self.min_fault_fraction} / {self.max_fault_fraction}"
            )
        for entry in self.tier_outages:
            if len(entry) != 4:
                raise ConfigError(f"bad tier_outages entry: {entry!r}")
            tier, start, end, factor = entry
            if tier not in ("ssd", "pfs"):
                raise ConfigError(f"unknown outage tier: {tier!r}")
            if not (0.0 <= start < end):
                raise ConfigError(f"bad outage window [{start}, {end})")
            if not (0.0 <= factor < 1.0):
                raise ConfigError(f"outage factor out of [0, 1): {factor}")
        if self.crash_point is not None:
            stage = self.crash_point
            for prefix in ("before-", "after-"):
                if stage.startswith(prefix):
                    stage = stage[len(prefix):]
                    break
            if stage not in CRASH_STAGES:
                raise ConfigError(
                    f"unknown crash_point {self.crash_point!r}; stages: {CRASH_STAGES}"
                )
        for entry in self.node_crashes:
            if len(entry) != 3:
                raise ConfigError(f"bad node_crashes entry: {entry!r}")
            node_id, time_s, mode = entry
            if not isinstance(node_id, int) or node_id < 0:
                raise ConfigError(f"bad node_crashes node id: {node_id!r}")
            if time_s < 0:
                raise ConfigError(f"node_crashes time must be >= 0: {time_s}")
            if mode not in NODE_CRASH_MODES:
                raise ConfigError(
                    f"unknown node-crash mode {mode!r}; modes: {NODE_CRASH_MODES}"
                )
        for entry in self.node_rejoins:
            if len(entry) != 2:
                raise ConfigError(f"bad node_rejoins entry: {entry!r}")
            node_id, time_s = entry
            if not isinstance(node_id, int) or node_id < 0:
                raise ConfigError(f"bad node_rejoins node id: {node_id!r}")
            if time_s < 0:
                raise ConfigError(f"node_rejoins time must be >= 0: {time_s}")
        for entry in self.partitions:
            if len(entry) != 4:
                raise ConfigError(f"bad partitions entry: {entry!r}")
            node_a, node_b, start, end = entry
            for node_id in (node_a, node_b):
                if not isinstance(node_id, int) or node_id < 0:
                    raise ConfigError(f"bad partitions node id: {node_id!r}")
            if node_a == node_b:
                raise ConfigError(
                    f"partition endpoints must differ: {entry!r}"
                )
            if not (0.0 <= start < end):
                raise ConfigError(f"bad partition window [{start}, {end})")


@dataclass(frozen=True)
class ResilienceConfig:
    """Self-healing behaviour of the runtime (:mod:`repro.faults`).

    With ``enabled=False`` (the default) failures behave exactly as before
    this subsystem existed: a failed flush leg abandons the flush, a CRC
    mismatch on restore raises :class:`~repro.errors.IntegrityError`, and
    ``recover_history()`` scans the stores directly.  When enabled:
    transient transfer errors are retried with exponential backoff +
    deterministic jitter under per-class budgets, per-tier circuit breakers
    blacklist degraded tiers and reroute the flush cascade around them
    (with catch-up backfill on recovery), durable puts are CRC re-verified
    and re-flushed from an upper-tier copy on corruption, and a
    crash-consistent manifest journal makes ``recover_history()``
    independent of store scans.
    """

    #: master switch for every recovery mechanism below.
    enabled: bool = False
    #: retry budget per transfer leg for TransientTransferErrors.
    max_retries: int = 4
    #: backoff before retry k (0-based) is
    #: ``min(backoff_base_s * backoff_factor**k, backoff_max_s)`` nominal
    #: seconds, plus up to ``jitter`` of itself (deterministic draw).
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    #: per-transfer-class retry-budget overrides, e.g.
    #: ``(("DEMAND_READ", 6), ("SPECULATIVE_PREFETCH", 1))``; classes
    #: mirror :class:`repro.sched.TransferClass` names.
    retry_classes: tuple = ()
    #: consecutive failures that trip a tier's circuit breaker open.
    breaker_threshold: int = 3
    #: nominal seconds an open breaker waits before admitting one
    #: half-open probe.
    breaker_reset_s: float = 5.0
    #: when the SSD breaker is open, flush host copies directly to the PFS
    #: (GPU→host→PFS) instead of abandoning durability.
    reroute: bool = True
    #: when a rerouted tier recovers, backfill the skipped SSD copies from
    #: the PFS/host so reads regain the fast path.
    backfill: bool = True
    #: CRC-verify durable blobs right after the flush write and re-flush
    #: from the in-hand payload on mismatch.
    reverify: bool = True
    #: append every durable commit to the manifest journal and replay it in
    #: ``recover_history()`` (store scans remain the fallback).
    journal: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigError(f"jitter out of [0, 1]: {self.jitter}")
        for entry in self.retry_classes:
            if len(entry) != 2 or entry[1] < 0:
                raise ConfigError(f"bad retry_classes entry: {entry!r}")
        if self.breaker_threshold < 1:
            raise ConfigError(f"breaker_threshold must be >= 1: {self.breaker_threshold}")
        if self.breaker_reset_s < 0:
            raise ConfigError(f"breaker_reset_s must be >= 0: {self.breaker_reset_s}")

    def retries_for(self, class_name: str) -> int:
        for name, budget in self.retry_classes:
            if name == class_name:
                return int(budget)
        return self.max_retries


@dataclass(frozen=True)
class SloConfig:
    """Service-level objectives for the checkpoint cascade.

    Two latency objectives, each stated as "a fraction ``objective`` of
    operations completes within the target": *durability latency* (from
    ``checkpoint()`` entry to the first durable copy on SSD/PFS) and
    *demand-restore latency* (the blocked portion of ``restore()``).
    Violations are tracked over a rolling window of ``window_s`` nominal
    seconds; when the windowed violation rate exceeds the error budget by
    ``burn_rate_threshold``×, the SLO monitor raises a burn-rate alert
    (a ``slo-burn`` trace instant plus a summary line).
    """

    #: target durability latency per checkpoint, nominal seconds.
    durability_target_s: float = 2.0
    #: target blocked time per demand restore, nominal seconds.
    restore_target_s: float = 0.5
    #: fraction of operations that must meet their target.
    objective: float = 0.95
    #: rolling-window length for violation accounting, nominal seconds.
    window_s: float = 30.0
    #: alert when windowed violation rate > threshold × (1 - objective).
    burn_rate_threshold: float = 2.0
    #: observations required in the window before burn alerts can fire
    #: (suppresses alerts off a single early violation).
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.durability_target_s <= 0 or self.restore_target_s <= 0:
            raise ConfigError("SLO latency targets must be positive")
        if self.min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1: {self.min_samples}")
        if not (0.0 < self.objective < 1.0):
            raise ConfigError(f"objective out of (0, 1): {self.objective}")
        if self.window_s <= 0:
            raise ConfigError(f"window_s must be positive: {self.window_s}")
        if self.burn_rate_threshold <= 0:
            raise ConfigError(
                f"burn_rate_threshold must be positive: {self.burn_rate_threshold}"
            )


@dataclass(frozen=True)
class AnalysisConfig:
    """Causal tracing + SLO monitoring (:mod:`repro.analysis`).

    With ``enabled=False`` (the default) nothing changes: no causal ids are
    attached to trace events, no extra events are emitted, and runs are
    bit-identical to a build without this subsystem.  When enabled (and
    ``RuntimeConfig.telemetry`` is on), every ``checkpoint()``/``restore()``
    and each prefetch chain is issued a stable operation id that rides on
    every span the operation touches — flush FSM stages, retries, reroutes,
    reserve waits, journal commits — so :mod:`repro.analysis` can rebuild
    per-op span DAGs, compute critical paths, and attribute wall time to
    categories.  The SLO monitor watches op completions live.
    """

    #: master switch for causal ids, fill events, and the SLO monitor.
    enabled: bool = False
    #: service-level objectives evaluated live and in ``repro analyze``.
    slo: SloConfig = field(default_factory=SloConfig)


@dataclass(frozen=True)
class ClusterConfig:
    """Distributed checkpoint fabric (:mod:`repro.cluster`).

    With ``enabled=False`` (the default) no fabric is constructed and the
    runtime is bit-identical to a build without the subsystem (same
    discipline as :class:`SchedConfig` / :class:`FaultConfig`).  When
    enabled: every durable SSD commit is published to a cluster-wide
    replica directory so demand restores and prefetches can pull a blob
    from a healthy peer's SSD over the inter-node fabric instead of
    dropping to the PFS; flushes are replicated to ``replica_factor - 1``
    successor nodes; a per-node aggregator coalesces concurrent small
    SSD→PFS flush streams into batched PFS writes (one per-op latency
    charge per batch, commit-at-end); and a :class:`~repro.cluster.service.
    CheckpointService` front-end exposes ``submit/restore/query`` over an
    in-process RPC layer with per-client sessions and bounded admission.
    """

    #: master switch: build the ClusterFabric (replica directory, peer
    #: routing, PFS write aggregation) on the Cluster.
    enabled: bool = False
    #: total SSD copies per checkpoint including the home node; copies
    #: beyond the first go to successor nodes over the fabric.  Must not
    #: exceed ``RuntimeConfig.num_nodes`` when the fabric is enabled.
    replica_factor: int = 2
    #: route demand restores / prefetches through a healthy peer's SSD
    #: when the local copy is gone (instead of dropping to the PFS).
    peer_reads: bool = True
    #: fabric bandwidth override in bytes per nominal second (None = use
    #: ``HardwareSpec.internode_bandwidth``).
    peer_bandwidth: Optional[float] = None
    #: coalesce concurrent SSD→PFS flush legs into batched PFS writes.
    aggregation: bool = True
    #: nominal seconds the batch leader waits for followers to join
    #: before sealing the batch.
    aggregation_window_s: float = 0.002
    #: seal the batch early once this many members joined.
    aggregation_max_ops: int = 8
    #: seal the batch early once the combined payload reaches this many
    #: nominal bytes.
    aggregation_max_bytes: int = 256 * MiB
    #: maximum concurrently-connected service sessions.
    service_max_sessions: int = 64
    #: per-session bound on in-flight service requests; arrivals beyond
    #: it raise :class:`~repro.errors.BackpressureError`.
    service_queue_depth: int = 16
    #: modeled one-way RPC latency per service call, nominal seconds.
    service_rpc_latency_s: float = 200e-6
    #: anti-entropy replica repair: after a node crash (or rejoin) the
    #: :class:`~repro.cluster.repair.ReplicaRepairer` re-replicates every
    #: under-replicated checkpoint from a surviving SSD holder (or the
    #: PFS) until ``replica_factor`` live copies exist again.
    repair: bool = False
    #: nominal seconds between repairer scans of the replica directory.
    repair_interval_s: float = 0.05
    #: sched class repair copies admit under (``repro.sched.TransferClass``
    #: name); the default rides the cascade-flush class so repair traffic
    #: never preempts demand restores.
    repair_class: str = "CASCADE_FLUSH"
    #: cap on repair copies in flight per scan (bounds the burst a mass
    #: withdrawal can inject into the fabric).
    repair_max_inflight: int = 4
    #: service session failover: when a pinned engine's node dies, re-pin
    #: the session to a surviving engine and idempotently replay the
    #: in-flight op instead of surfacing the node death to the client.
    failover: bool = False

    def __post_init__(self) -> None:
        if self.replica_factor < 1:
            raise ConfigError(f"replica_factor must be >= 1: {self.replica_factor}")
        if self.peer_bandwidth is not None and self.peer_bandwidth <= 0:
            raise ConfigError(
                f"peer_bandwidth must be positive or None: {self.peer_bandwidth}"
            )
        if self.aggregation_window_s < 0:
            raise ConfigError(
                f"aggregation_window_s must be >= 0: {self.aggregation_window_s}"
            )
        if self.aggregation_max_ops < 1:
            raise ConfigError(
                f"aggregation_max_ops must be >= 1: {self.aggregation_max_ops}"
            )
        if self.aggregation_max_bytes <= 0:
            raise ConfigError(
                f"aggregation_max_bytes must be positive: {self.aggregation_max_bytes}"
            )
        if self.service_max_sessions < 1:
            raise ConfigError(
                f"service_max_sessions must be >= 1: {self.service_max_sessions}"
            )
        if self.service_queue_depth < 1:
            raise ConfigError(
                f"service_queue_depth must be >= 1: {self.service_queue_depth}"
            )
        if self.service_rpc_latency_s < 0:
            raise ConfigError(
                f"service_rpc_latency_s must be >= 0: {self.service_rpc_latency_s}"
            )
        if self.repair_interval_s <= 0:
            raise ConfigError(
                f"repair_interval_s must be positive: {self.repair_interval_s}"
            )
        if self.repair_class not in (
            "DEMAND_READ", "CASCADE_FLUSH", "SPECULATIVE_PREFETCH"
        ):
            raise ConfigError(f"unknown repair_class: {self.repair_class!r}")
        if self.repair_max_inflight < 1:
            raise ConfigError(
                f"repair_max_inflight must be >= 1: {self.repair_max_inflight}"
            )


@dataclass(frozen=True)
class PredictConfig:
    """Online access-pattern prediction (:mod:`repro.predict`).

    With ``enabled=False`` (the default) nothing is built and the runtime
    is bit-identical to a build without the subsystem (same discipline as
    :class:`SchedConfig` / :class:`ClusterConfig`).  When enabled, the
    engine's hint queue becomes a :class:`~repro.predict.queue.
    SyntheticRestoreQueue`: explicit hints keep absolute priority, and a
    revocable predicted overlay — refreshed by a pluggable
    :class:`~repro.predict.predictors.Predictor` from the
    :class:`~repro.predict.history.AccessHistory` ring — feeds the same
    prefetcher and Algorithm-1 eviction scoring when hints are missing.
    Predicted entries always admit through the sched *speculative* class
    (sheddable, preemptible), and a PhoenixOS-style validation layer
    scores each speculative staging on consume/abandon, decays the
    hit-rate estimate, and suspends speculation (demand-only fallback)
    when it drops below :attr:`hit_floor`.
    """

    #: master switch for the synthetic queue, predictors and validator.
    enabled: bool = False
    #: prediction model: ``"recency"`` (per-producer reuse-distance /
    #: inter-access EWMA), ``"markov"`` (first-order next-restore chain
    #: over producer transitions), or ``"hybrid"`` (markov chain first,
    #: recency ordering for the rest).
    predictor: str = "hybrid"
    #: capacity of the per-engine access-history ring (events).
    history_capacity: int = 4096
    #: maximum length of the predicted overlay handed to the queue.
    max_queue: int = 32
    #: predictions below this confidence are dropped from the overlay.
    min_confidence: float = 0.02
    #: minimum nominal seconds between overlay refreshes (0 = refresh on
    #: every observed access event).
    refresh_interval_s: float = 0.0
    #: build the validation layer; without it speculation is never
    #: scored or suspended.
    validation: bool = True
    #: suspend speculation when the EWMA hit rate drops below this floor.
    hit_floor: float = 0.4
    #: speculative outcomes (hits + abandons) required before the floor
    #: can trigger a suspension.
    min_samples: int = 8
    #: nominal seconds of demand-only fallback per suspension; after the
    #: window the validator re-arms with a fresh estimate (probation).
    suspend_s: float = 2.0
    #: EWMA weight of the newest speculative outcome.
    ewma_alpha: float = 0.25

    def __post_init__(self) -> None:
        if self.predictor not in ("recency", "markov", "hybrid"):
            raise ConfigError(
                f"predictor must be 'recency', 'markov' or 'hybrid': "
                f"{self.predictor!r}"
            )
        if self.history_capacity < 1:
            raise ConfigError(
                f"history_capacity must be >= 1: {self.history_capacity}"
            )
        if self.max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1: {self.max_queue}")
        if not (0.0 <= self.min_confidence <= 1.0):
            raise ConfigError(
                f"min_confidence out of [0, 1]: {self.min_confidence}"
            )
        if self.refresh_interval_s < 0:
            raise ConfigError(
                f"refresh_interval_s must be >= 0: {self.refresh_interval_s}"
            )
        if not (0.0 < self.hit_floor < 1.0):
            raise ConfigError(f"hit_floor out of (0, 1): {self.hit_floor}")
        if self.min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1: {self.min_samples}")
        if self.suspend_s <= 0:
            raise ConfigError(f"suspend_s must be positive: {self.suspend_s}")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ConfigError(f"ewma_alpha out of (0, 1]: {self.ewma_alpha}")


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything one simulation run needs."""

    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    scale: ScaleModel = field(default_factory=ScaleModel)
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: QoS transfer scheduling on shared tier links (:mod:`repro.sched`).
    sched: SchedConfig = field(default_factory=SchedConfig)
    #: data reduction between the engines and the tier links (:mod:`repro.reduce`).
    reduce: ReduceConfig = field(default_factory=ReduceConfig)
    #: pipelined chunk streaming through the flush/prefetch cascades
    #: (:mod:`repro.core.streaming`).
    stream: StreamConfig = field(default_factory=StreamConfig)
    #: deterministic fault injection (:mod:`repro.faults`).
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: self-healing transfer/tier recovery (:mod:`repro.faults`).
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: causal tracing, critical-path attribution and SLO monitoring
    #: (:mod:`repro.analysis`); needs ``telemetry=True`` to record anything.
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    #: distributed checkpoint fabric — peer SSD reads, flush replication,
    #: PFS write aggregation, checkpoint service (:mod:`repro.cluster`).
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    #: online access-pattern prediction feeding the prefetch/eviction
    #: machinery when hints are missing (:mod:`repro.predict`).
    predict: PredictConfig = field(default_factory=PredictConfig)
    #: default ``wait_for_flushes`` timeout in nominal seconds (None = no
    #: timeout unless the call site passes one).
    flush_wait_timeout: Optional[float] = None
    num_nodes: int = 1
    processes_per_node: Optional[int] = None  # default: one per GPU
    seed: int = 20230616  # HPDC'23 opening day
    #: eviction policy for the Score runtime: "score" (Algorithm 1),
    #: "lru", or "fifo" (ablations).
    eviction_policy: str = "score"
    #: Section 4.1.2 ablation: when False, each tier's cache is split into
    #: static flush/prefetch halves instead of being shared.
    shared_cache: bool = True
    #: when True, simulate the one-off arena allocation/pinning cost at
    #: engine start (Section 4.1.4).
    charge_allocation_cost: bool = True
    #: when True (and allocation cost is charged), the pinned host cache
    #: becomes usable *progressively* at the pinning rate instead of
    #: blocking initialization — the paper's "slow host cache
    #: initialization" that depresses checkpoint throughput early in the
    #: shot for both the Score and UVM runtimes.
    lazy_host_pinning: bool = True
    #: directory for the SSD tier's backing files (None → in-memory SSD).
    ssd_directory: Optional[str] = None
    #: record fine-grained trace events (FSM transitions, eviction decisions
    #: with Algorithm-1 scores, flush/prefetch spans) on the cluster's
    #: telemetry bus.  Off by default: a disabled bus costs one attribute
    #: check per instrumented call site.  Metrics counters are always live.
    telemetry: bool = False
    #: trace-bus ring capacity in events; overflow drops the oldest events.
    telemetry_buffer: int = 1 << 17

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError(f"num_nodes must be positive: {self.num_nodes}")
        if self.telemetry_buffer <= 0:
            raise ConfigError(
                f"telemetry_buffer must be positive: {self.telemetry_buffer}"
            )
        ppn = self.processes_per_node
        if ppn is not None and not (0 < ppn <= self.hardware.gpus_per_node):
            raise ConfigError(
                f"processes_per_node must be in [1, {self.hardware.gpus_per_node}]: {ppn}"
            )
        if self.eviction_policy not in ("score", "lru", "fifo"):
            raise ConfigError(f"unknown eviction_policy: {self.eviction_policy!r}")
        if self.flush_wait_timeout is not None and self.flush_wait_timeout <= 0:
            raise ConfigError(
                f"flush_wait_timeout must be positive or None: {self.flush_wait_timeout}"
            )
        if self.cluster.enabled and self.cluster.replica_factor > self.num_nodes:
            raise ConfigError(
                f"cluster.replica_factor ({self.cluster.replica_factor}) exceeds "
                f"num_nodes ({self.num_nodes})"
            )
        if self.faults.enabled:
            chaos_nodes = (
                [entry[0] for entry in self.faults.node_crashes]
                + [entry[0] for entry in self.faults.node_rejoins]
                + [n for entry in self.faults.partitions for n in entry[:2]]
            )
            for node_id in chaos_nodes:
                if node_id >= self.num_nodes:
                    raise ConfigError(
                        f"fault node id {node_id} out of range for "
                        f"num_nodes={self.num_nodes}"
                    )

    @property
    def effective_processes_per_node(self) -> int:
        return self.processes_per_node or self.hardware.gpus_per_node

    @property
    def total_processes(self) -> int:
        return self.num_nodes * self.effective_processes_per_node

    def with_(self, **changes) -> "RuntimeConfig":
        """A copy with the given fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)


def bench_config(**changes) -> RuntimeConfig:
    """The configuration used by tests/benchmarks: paper hardware, scaled."""
    cfg = RuntimeConfig(scale=BENCH_SCALE)
    if changes:
        cfg = cfg.with_(**changes)
    return cfg


def parse_rate(value) -> float:
    """Re-export of :func:`repro.util.units.parse_bandwidth` for convenience."""
    return parse_bandwidth(value)
