"""Node-local SSD tier.

One :class:`SsdStore` per compute node, shared by all co-located processes
(the paper's setup: checkpoints of a node fit on its NVMe drives).  Reads
and writes are throttled through per-direction :class:`~repro.simgpu.bandwidth.Link`
objects so concurrent flushes from many processes contend exactly like they
do on the shared drives.

Two backends:

* in-memory (default) — payloads in a dict; the throttling links still model
  the full transfer cost.  Used by tests and benchmarks.
* file-backed — payloads written to real files under a directory, giving an
  end-to-end path through the OS page cache for integration tests.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.errors import CheckpointNotFound, TierOfflineError
from repro.simgpu.bandwidth import Link
from repro.simgpu.memory import checksum_payload
from repro.telemetry import Telemetry
from repro.tiers.base import InMemoryIndex, ObjectStore, StoreKey, TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultDomain
    from repro.sched.scheduler import SchedContext


class SsdStore(ObjectStore):
    """Throttled node-local checkpoint store."""

    level = TierLevel.SSD

    def __init__(
        self,
        node_id: int,
        spec: HardwareSpec,
        scale: ScaleModel,
        clock: VirtualClock,
        directory: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        sched: Optional["SchedContext"] = None,
        faults: Optional["FaultDomain"] = None,
    ) -> None:
        self.node_id = node_id
        self.scale = scale
        self._clock = clock
        # Fault gates cost one None-check per op when injection is off;
        # the pristine-CRC stamp is recorded whenever either injection or
        # resilience is active (detection needs it written, recovery needs
        # it verifiable).
        self.faults = faults if (faults is not None and faults.enabled) else None
        self._crc_meta = faults is not None and faults.meta_crc
        self.telemetry = telemetry or Telemetry.disabled()
        self._track = f"node{node_id}-ssd"
        registry = self.telemetry.registry
        self._m_write_bytes = registry.counter("tier.ssd.write_bytes")
        self._m_read_bytes = registry.counter("tier.ssd.read_bytes")
        self._m_write_ops = registry.counter("tier.ssd.write_ops")
        self._m_read_ops = registry.counter("tier.ssd.read_ops")
        # Whole-object transfers (no chunk interleaving): an NVMe queue
        # *streams* completions, so the first submitted write finishes after
        # its own duration instead of all concurrent writers completing in
        # lockstep — which matters for the eviction pipeline's latency.
        self.write_link = Link(
            f"node{node_id}-ssd-write",
            spec.ssd_write_bandwidth,
            clock,
            latency=spec.ssd_latency,
            chunk_size=1 << 62,
        )
        self.read_link = Link(
            f"node{node_id}-ssd-read",
            spec.ssd_read_bandwidth,
            clock,
            latency=spec.ssd_latency,
            chunk_size=1 << 62,
        )
        if sched is not None:
            sched.attach(self.write_link)
            sched.attach(self.read_link)
        if faults is not None:
            faults.attach(self.write_link)
            faults.attach(self.read_link)
        self._index = InMemoryIndex()
        self._directory = directory
        # Cluster replica directory (attach_directory); commits publish the
        # key so neighbor nodes can route peer-SSD reads here.
        self._replica_dir = None
        self._blobs: Dict[StoreKey, np.ndarray] = {}
        self._blob_lock = threading.Lock()
        #: node-crash chaos (repro.cluster.membership): while offline every
        #: data-path op raises TierOfflineError and ``contains`` answers
        #: False, so routing treats the drive exactly like a dark tier.
        self._offline = False
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._rebuild_index()

    def _meta_path(self, key: StoreKey) -> str:
        return self._path(key) + ".meta.json"

    def _rebuild_index(self) -> None:
        """Re-index checkpoints left on disk by a previous run (restart)."""
        assert self._directory is not None
        for name in os.listdir(self._directory):
            if not name.endswith(".meta.json"):
                continue
            try:
                with open(os.path.join(self._directory, name)) as fh:
                    entry = json.load(fh)
                key = (int(entry["process_id"]), int(entry["ckpt_id"]))
                self._index.add(key, int(entry["nominal_size"]), entry.get("meta"))
            except (ValueError, KeyError, OSError, json.JSONDecodeError):
                continue  # ignore torn/foreign files

    # -- helpers -----------------------------------------------------------
    def _path(self, key: StoreKey) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, f"ckpt-p{key[0]}-v{key[1]}.bin")

    # -- ObjectStore --------------------------------------------------------
    def open_put(self, key: StoreKey, nominal_size: int, payload_size: int, **kw):
        """Chunk-granular write handle (see :class:`~repro.tiers.base.StreamingPut`).

        Draws the fault gates once (same order as a whole-object ``put``);
        ``write()`` charges the write link per chunk and re-gates outages so
        a tier going dark mid-stream raises at the next chunk boundary.
        Nothing is visible in the store until ``commit()`` — a torn stream
        leaves no partial object behind.
        """
        self._require_online("put", key)
        slow = 1.0
        corrupt_at = None
        if self.faults is not None:
            slow = self.faults.tier_gate("ssd", self._track, "put", key)
            corrupt_at = self.faults.corruption(self._track, key, payload_size)
        return _SsdPut(self, key, nominal_size, slow, corrupt_at, **kw)

    def put(self, key: StoreKey, payload: np.ndarray, nominal_size: int, **kw) -> float:
        """``copy=False`` transfers ownership of ``payload`` to the store
        (the caller must not mutate it afterwards) instead of copying it."""
        handle = self.open_put(
            key,
            nominal_size,
            int(payload.size),
            cancelled=kw.get("cancelled"),
            request=kw.get("request"),
        )
        handle.write(nominal_size)
        return handle.commit(payload, meta=kw.get("meta"), copy=kw.get("copy", True))

    def _commit_blob(self, key, payload, nominal_size, meta, copy, corrupt_at) -> None:
        if self._crc_meta:
            meta = dict(meta or {})
            meta["stored_crc"] = int(checksum_payload(payload))
        if self._directory is not None:
            data = bytearray(np.ascontiguousarray(payload).tobytes())
            if corrupt_at is not None:
                data[corrupt_at] ^= 0xFF
            with open(self._path(key), "wb") as fh:
                fh.write(bytes(data))
            with open(self._meta_path(key), "w") as fh:
                json.dump(
                    {
                        "process_id": key[0],
                        "ckpt_id": key[1],
                        "nominal_size": nominal_size,
                        "meta": meta or {},
                    },
                    fh,
                )
        else:
            # Corruption flips a byte on the *store's* copy only: with
            # copy=False ownership transfers to the store, but the caller's
            # in-hand array must stay pristine so a re-flush can repair.
            blob = payload.copy() if (copy or corrupt_at is not None) else payload
            if corrupt_at is not None:
                blob[corrupt_at] ^= 0xFF
            blob.flags.writeable = False  # get() hands out views of this blob
            with self._blob_lock:
                self._blobs[key] = blob
        self._index.add(key, nominal_size, meta)
        if self._replica_dir is not None:
            self._replica_dir.publish(key, self.node_id)

    def attach_directory(self, directory) -> None:
        """Publish commits/deletes to a cluster-wide replica directory
        (:class:`repro.cluster.directory.ReplicaDirectory`)."""
        self._replica_dir = directory

    # -- node-crash chaos ---------------------------------------------------
    def _require_online(self, op: str, key: StoreKey) -> None:
        if self._offline:
            raise TierOfflineError(
                f"{self._track} is offline (node crash), {op} {key}"
            )

    def crash(self, preserve_contents: bool) -> None:
        """Take the drive down with its node.

        ``preserve_contents=False`` models a fail-stop crash that loses the
        media: blobs and index are wiped (files removed when file-backed).
        ``preserve_contents=True`` is a power loss — the media survives and
        :meth:`power_on` brings the copies back.  Either way, while offline
        every data-path op raises :class:`~repro.errors.TierOfflineError`
        and ``contains`` answers False.  Directory withdrawal is the
        membership registry's job (it owns the cluster-wide sweep).
        """
        self._offline = True
        if preserve_contents:
            return
        keys = self._index.keys()
        if self._directory is not None:
            for key in keys:
                for path in (self._path(key), self._meta_path(key)):
                    try:
                        os.remove(path)
                    except FileNotFoundError:
                        pass
        with self._blob_lock:
            self._blobs.clear()
        for key in keys:
            self._index.remove(key)

    def power_on(self):
        """Bring a crashed drive back; returns the surviving keys.

        A power-loss crash preserved the media, so every surviving key is
        republished to the replica directory (a fail-stop crash wiped the
        index, so the sweep republishes nothing).
        """
        self._offline = False
        keys = self._index.keys()
        if self._replica_dir is not None:
            for key in keys:
                self._replica_dir.publish(key, self.node_id)
        return keys

    @property
    def offline(self) -> bool:
        return self._offline

    def open_get(self, key: StoreKey, request=None, nominal_size=None):
        """Chunk-granular read handle; ``finish()`` yields the payload.

        ``nominal_size`` bypasses the index lookup for streamed cascade
        read-backs that overlap a not-yet-committed put of the same key
        (streaming out of the drive's write buffer); such callers take the
        payload from their pipeline, not ``finish()``.
        """
        self._require_online("get", key)
        if nominal_size is None:
            nominal_size = self._index.require(key)
        slow = 1.0
        if self.faults is not None:
            slow = self.faults.tier_gate("ssd", self._track, "get", key)
        return _SsdGet(self, key, nominal_size, slow, request)

    def get(self, key: StoreKey, request=None):
        handle = self.open_get(key, request=request)
        handle.read(handle.nominal_size)
        return handle.finish()

    def _read_payload(self, key: StoreKey) -> np.ndarray:
        if self._directory is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    # frombuffer over bytes is already zero-copy + read-only.
                    return np.frombuffer(fh.read(), dtype=np.uint8)
            except FileNotFoundError:
                raise CheckpointNotFound(f"checkpoint {key} missing from {path}")
        with self._blob_lock:
            payload = self._blobs.get(key)
        if payload is None:
            raise CheckpointNotFound(f"checkpoint {key} missing from SSD store")
        # Zero-copy: a read-only view (blobs are immutable once stored, and
        # a view keeps its base alive even across a concurrent delete()).
        return payload[:]

    def delete(self, key: StoreKey) -> None:
        if self._offline:
            return  # the node is dead; nothing is reachable to delete
        if not self._index.remove(key):
            return
        if self._replica_dir is not None:
            self._replica_dir.withdraw(key, self.node_id)
        if self._directory is not None:
            for path in (self._path(key), self._meta_path(key)):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
        else:
            with self._blob_lock:
                self._blobs.pop(key, None)

    def contains(self, key: StoreKey) -> bool:
        if self._offline:
            return False
        return self._index.contains(key)

    def verify(self, key: StoreKey) -> bool:
        """Check the stored blob's bytes against the CRC stamped at put().

        Uncharged (no link transfer): models a local scrub/DMA checksum.
        Returns ``True`` when no CRC was stamped (nothing to verify) and
        ``False`` when the blob is missing or its bytes diverged.
        """
        if self._offline or not self._index.contains(key):
            return False
        stored_crc = (self._index.meta(key) or {}).get("stored_crc")
        if stored_crc is None:
            return True
        if self._directory is not None:
            try:
                with open(self._path(key), "rb") as fh:
                    blob = np.frombuffer(fh.read(), dtype=np.uint8)
            except OSError:
                return False
        else:
            with self._blob_lock:
                blob = self._blobs.get(key)
            if blob is None:
                return False
        return int(checksum_payload(blob)) == int(stored_crc)

    def meta(self, key: StoreKey) -> dict:
        """Recovery metadata recorded at put() time."""
        return self._index.meta(key)

    def size_of(self, key: StoreKey) -> int:
        return self._index.size_of(key)

    def keys_for_process(self, process_id: int):
        """All checkpoint keys this store holds for one process."""
        return self._index.keys_for_process(process_id)

    def stored_bytes(self) -> int:
        return self._index.total()

    def object_count(self) -> int:
        return self._index.count()


class _SsdPut:
    """In-flight write: chunk charges on the write link, commit-at-end."""

    def __init__(
        self,
        store: SsdStore,
        key: StoreKey,
        nominal_size: int,
        slow: float,
        corrupt_at: Optional[int],
        cancelled=None,
        request=None,
    ) -> None:
        self.store = store
        self.key = key
        self.nominal_size = nominal_size
        self.seconds = 0.0
        self._slow = slow
        self._corrupt_at = corrupt_at
        self._cancelled = cancelled
        self._request = request
        self._chunks = 0

    def write(self, nbytes: int, cancelled=None, request=None) -> float:
        """Charge one chunk; blocks for the throttled duration."""
        store = self.store
        if self._chunks > 0 and store.faults is not None:
            # Re-gate later chunks: a hard outage opening mid-stream raises
            # TierOfflineError at the next chunk boundary; a brownout
            # degrades the remaining chunks.
            self._slow = store.faults.tier_gate("ssd", store._track, "put", self.key)
        with store.telemetry.bus.span(
            "ssd-put", store._track, key=self.key, bytes=nbytes
        ):
            seconds = store.write_link.transfer(
                nbytes,
                cancelled=self._cancelled if cancelled is None else cancelled,
                request=self._request if request is None else request,
            )
            if self._slow > 1.0:  # brownout: degraded throughput, same bytes
                extra = seconds * (self._slow - 1.0)
                store._clock.sleep(extra)
                seconds += extra
        store._m_write_bytes.inc(nbytes)
        self._chunks += 1
        self.seconds += seconds
        return seconds

    def commit(self, payload: np.ndarray, meta=None, copy: bool = True) -> float:
        """Make the object visible; returns total accounted seconds."""
        store = self.store
        store._m_write_ops.inc()
        store._commit_blob(
            self.key, payload, self.nominal_size, meta, copy, self._corrupt_at
        )
        return self.seconds

    def abort(self) -> None:
        """Nothing to roll back: an uncommitted stream left no state."""


class _SsdGet:
    """In-flight read: chunk charges on the read link, payload at finish."""

    def __init__(
        self, store: SsdStore, key: StoreKey, nominal_size: int, slow: float, request
    ) -> None:
        self.store = store
        self.key = key
        self.nominal_size = nominal_size
        self.seconds = 0.0
        self._slow = slow
        self._request = request
        self._chunks = 0

    def read(self, nbytes: int, request=None) -> float:
        store = self.store
        if self._chunks > 0 and store.faults is not None:
            self._slow = store.faults.tier_gate("ssd", store._track, "get", self.key)
        with store.telemetry.bus.span(
            "ssd-get", store._track, key=self.key, bytes=nbytes
        ):
            seconds = store.read_link.transfer(
                nbytes, request=self._request if request is None else request
            )
            if self._slow > 1.0:
                extra = seconds * (self._slow - 1.0)
                store._clock.sleep(extra)
                seconds += extra
        store._m_read_bytes.inc(nbytes)
        self._chunks += 1
        self.seconds += seconds
        return seconds

    def finish(self):
        """``(payload, accounted seconds)`` — the whole object, post-charges."""
        self.store._m_read_ops.inc()
        return self.store._read_payload(self.key), self.seconds
