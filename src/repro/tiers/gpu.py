"""GPU cache-tier arena construction."""

from __future__ import annotations

from repro.simgpu.device import Device
from repro.simgpu.memory import Arena


def make_gpu_cache_arena(device: Device, nominal_capacity: int, charge_cost: bool = True) -> Arena:
    """Pre-allocate one process's contiguous device cache (Section 4.1.4).

    The capacity is rounded up to the scale model's alignment so every
    checkpoint offset maps exactly onto the scaled backing store.
    """
    capacity = device.scale.align(nominal_capacity)
    return device.alloc_arena(capacity, charge_cost=charge_cost)
