"""Parallel-file-system tier (Lustre stand-in).

One :class:`PfsStore` per cluster, shared by every node.  Each node funnels
its PFS traffic through its own per-node ingress/egress links (a node's
share of the fabric), while a global pair of links models the file system's
aggregate bandwidth — so both per-node and cluster-wide saturation occur.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.errors import CheckpointNotFound
from repro.simgpu.bandwidth import Link
from repro.simgpu.memory import checksum_payload
from repro.telemetry import Telemetry
from repro.tiers.base import InMemoryIndex, ObjectStore, StoreKey, TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultDomain
    from repro.sched.scheduler import SchedContext


class PfsStore(ObjectStore):
    """Throttled cluster-shared checkpoint store."""

    level = TierLevel.PFS

    def __init__(
        self,
        spec: HardwareSpec,
        scale: ScaleModel,
        clock: VirtualClock,
        num_nodes: int = 1,
        aggregate_factor: float = 2.0,
        telemetry: Optional[Telemetry] = None,
        sched: Optional["SchedContext"] = None,
        faults: Optional["FaultDomain"] = None,
    ) -> None:
        """``aggregate_factor``: the file system sustains this multiple of a
        single node's share before becoming the bottleneck."""
        self.scale = scale
        self._clock = clock
        self.faults = faults if (faults is not None and faults.enabled) else None
        self._crc_meta = faults is not None and faults.meta_crc
        self._faults_hook = faults
        self.telemetry = telemetry or Telemetry.disabled()
        registry = self.telemetry.registry
        self._m_write_bytes = registry.counter("tier.pfs.write_bytes")
        self._m_read_bytes = registry.counter("tier.pfs.read_bytes")
        self._m_write_ops = registry.counter("tier.pfs.write_ops")
        self._m_read_ops = registry.counter("tier.pfs.read_ops")
        aggregate_write = spec.pfs_write_bandwidth * max(1.0, aggregate_factor)
        aggregate_read = spec.pfs_read_bandwidth * max(1.0, aggregate_factor)
        self.global_write_link = Link(
            "pfs-write", aggregate_write, clock, latency=0.0, chunk_size=1 << 62
        )
        self.global_read_link = Link(
            "pfs-read", aggregate_read, clock, latency=0.0, chunk_size=1 << 62
        )
        self._sched = sched
        if sched is not None:
            sched.attach(self.global_write_link)
            sched.attach(self.global_read_link)
        if faults is not None:
            faults.attach(self.global_write_link)
            faults.attach(self.global_read_link)
        self._node_write_links: Dict[int, Link] = {}
        self._node_read_links: Dict[int, Link] = {}
        self._link_lock = threading.Lock()
        self._spec = spec
        self._index = InMemoryIndex()
        self._blobs: Dict[StoreKey, np.ndarray] = {}
        self._blob_lock = threading.Lock()

    def node_links(self, node_id: int):
        """Per-node ingress/egress links (created lazily)."""
        with self._link_lock:
            if node_id not in self._node_write_links:
                self._node_write_links[node_id] = Link(
                    f"node{node_id}-pfs-write",
                    self._spec.pfs_write_bandwidth,
                    self._clock,
                    latency=self._spec.pfs_latency,
                )
                self._node_read_links[node_id] = Link(
                    f"node{node_id}-pfs-read",
                    self._spec.pfs_read_bandwidth,
                    self._clock,
                    latency=self._spec.pfs_latency,
                )
                if self._sched is not None:
                    self._sched.attach(self._node_write_links[node_id])
                    self._sched.attach(self._node_read_links[node_id])
                if self._faults_hook is not None:
                    self._faults_hook.attach(self._node_write_links[node_id])
                    self._faults_hook.attach(self._node_read_links[node_id])
            return self._node_write_links[node_id], self._node_read_links[node_id]

    def open_put(self, key: StoreKey, nominal_size: int, payload_size: int, **kw):
        """Chunk-granular write handle (mirrors :meth:`SsdStore.open_put`)."""
        node_id = kw.get("node_id", 0)
        slow = 1.0
        corrupt_at = None
        if self.faults is not None:
            slow = self.faults.tier_gate("pfs", "pfs", "put", key)
            corrupt_at = self.faults.corruption("pfs", key, payload_size)
        return _PfsPut(
            self,
            key,
            nominal_size,
            node_id,
            slow,
            corrupt_at,
            cancelled=kw.get("cancelled"),
            request=kw.get("request"),
        )

    def put(self, key: StoreKey, payload: np.ndarray, nominal_size: int, **kw) -> float:
        """``copy=False`` transfers ownership of ``payload`` to the store
        (the caller must not mutate it afterwards) instead of copying it."""
        handle = self.open_put(
            key,
            nominal_size,
            int(payload.size),
            node_id=kw.get("node_id", 0),
            cancelled=kw.get("cancelled"),
            request=kw.get("request"),
        )
        handle.write(nominal_size)
        return handle.commit(payload, meta=kw.get("meta"), copy=kw.get("copy", True))

    def put_batch(self, entries, node_id: int = 0, request=None) -> float:
        """Commit several whole objects as one aggregated PFS operation.

        ``entries`` is ``[(key, payload, nominal_size, meta), ...]``. All
        bytes cross the node and global links as a single transfer — one
        per-op latency charge and one metadata op for the whole batch,
        which is exactly what write aggregation buys — and the blobs
        commit only after the full transfer lands (commit-at-end: a crash
        mid-batch durably commits nothing). Fault gates and corruption
        draws still run per entry so injection stays key-deterministic.
        """
        gates = []
        total = 0
        for key, payload, nominal_size, meta in entries:
            slow = 1.0
            corrupt_at = None
            if self.faults is not None:
                slow = self.faults.tier_gate("pfs", "pfs", "put", key)
                corrupt_at = self.faults.corruption("pfs", key, int(payload.size))
            gates.append((slow, corrupt_at))
            total += nominal_size
        slow = max((g[0] for g in gates), default=1.0)
        node_link, _ = self.node_links(node_id)
        with self.telemetry.bus.span(
            "pfs-put-batch", "pfs", ops=len(entries), bytes=total
        ):
            seconds = node_link.transfer(total, request=request)
            seconds += self.global_write_link.transfer(total, request=request)
            if slow > 1.0:  # brownout: the whole batch rides the slow link
                extra = seconds * (slow - 1.0)
                self._clock.sleep(extra)
                seconds += extra
        self._m_write_bytes.inc(total)
        self._m_write_ops.inc()
        for (key, payload, nominal_size, meta), (_slow, corrupt_at) in zip(
            entries, gates
        ):
            self._commit_blob(key, payload, nominal_size, meta, True, corrupt_at)
        return seconds

    def _commit_blob(self, key, payload, nominal_size, meta, copy, corrupt_at) -> None:
        if self._crc_meta:
            meta = dict(meta or {})
            meta["stored_crc"] = int(checksum_payload(payload))
        # Corruption flips a byte on the store's copy only (see SsdStore.put).
        blob = payload.copy() if (copy or corrupt_at is not None) else payload
        if corrupt_at is not None:
            blob[corrupt_at] ^= 0xFF
        blob.flags.writeable = False  # get() hands out views of this blob
        with self._blob_lock:
            self._blobs[key] = blob
        self._index.add(key, nominal_size, meta)

    def open_get(self, key: StoreKey, node_id: int = 0, request=None):
        """Chunk-granular read handle; ``finish()`` yields the payload."""
        nominal_size = self._index.require(key)
        slow = 1.0
        if self.faults is not None:
            slow = self.faults.tier_gate("pfs", "pfs", "get", key)
        return _PfsGet(self, key, nominal_size, node_id, slow, request)

    def get(self, key: StoreKey, node_id: int = 0, request=None):
        handle = self.open_get(key, node_id=node_id, request=request)
        handle.read(handle.nominal_size)
        return handle.finish()

    def _read_payload(self, key: StoreKey) -> np.ndarray:
        with self._blob_lock:
            payload = self._blobs.get(key)
        if payload is None:
            raise CheckpointNotFound(f"checkpoint {key} missing from PFS store")
        # Zero-copy: a read-only view (blobs are immutable once stored, and
        # a view keeps its base alive even across a concurrent delete()).
        return payload[:]

    def delete(self, key: StoreKey) -> None:
        if self._index.remove(key):
            with self._blob_lock:
                self._blobs.pop(key, None)

    def contains(self, key: StoreKey) -> bool:
        return self._index.contains(key)

    def verify(self, key: StoreKey) -> bool:
        """CRC-scrub the stored blob (uncharged); see SsdStore.verify."""
        if not self._index.contains(key):
            return False
        stored_crc = (self._index.meta(key) or {}).get("stored_crc")
        if stored_crc is None:
            return True
        with self._blob_lock:
            blob = self._blobs.get(key)
        if blob is None:
            return False
        return int(checksum_payload(blob)) == int(stored_crc)

    def meta(self, key: StoreKey) -> dict:
        return self._index.meta(key)

    def size_of(self, key: StoreKey) -> int:
        return self._index.size_of(key)

    def keys_for_process(self, process_id: int):
        return self._index.keys_for_process(process_id)

    def stored_bytes(self) -> int:
        return self._index.total()

    def object_count(self) -> int:
        return self._index.count()


class _PfsPut:
    """In-flight PFS write: each chunk crosses the node link then the
    global fabric link (both charged), commit-at-end."""

    def __init__(
        self,
        store: PfsStore,
        key: StoreKey,
        nominal_size: int,
        node_id: int,
        slow: float,
        corrupt_at: Optional[int],
        cancelled=None,
        request=None,
    ) -> None:
        self.store = store
        self.key = key
        self.nominal_size = nominal_size
        self.node_id = node_id
        self.seconds = 0.0
        self._slow = slow
        self._corrupt_at = corrupt_at
        self._cancelled = cancelled
        self._request = request
        self._chunks = 0

    def write(self, nbytes: int, cancelled=None, request=None) -> float:
        store = self.store
        if self._chunks > 0 and store.faults is not None:
            self._slow = store.faults.tier_gate("pfs", "pfs", "put", self.key)
        cancelled = self._cancelled if cancelled is None else cancelled
        request = self._request if request is None else request
        node_link, _ = store.node_links(self.node_id)
        with store.telemetry.bus.span("pfs-put", "pfs", key=self.key, bytes=nbytes):
            seconds = node_link.transfer(nbytes, cancelled=cancelled, request=request)
            seconds += store.global_write_link.transfer(
                nbytes, cancelled=cancelled, request=request
            )
            if self._slow > 1.0:  # brownout: degraded throughput, same bytes
                extra = seconds * (self._slow - 1.0)
                store._clock.sleep(extra)
                seconds += extra
        store._m_write_bytes.inc(nbytes)
        self._chunks += 1
        self.seconds += seconds
        return seconds

    def commit(self, payload: np.ndarray, meta=None, copy: bool = True) -> float:
        store = self.store
        store._m_write_ops.inc()
        store._commit_blob(
            self.key, payload, self.nominal_size, meta, copy, self._corrupt_at
        )
        return self.seconds

    def abort(self) -> None:
        """Nothing to roll back: an uncommitted stream left no state."""


class _PfsGet:
    """In-flight PFS read: chunk charges on node + global links."""

    def __init__(
        self,
        store: PfsStore,
        key: StoreKey,
        nominal_size: int,
        node_id: int,
        slow: float,
        request,
    ) -> None:
        self.store = store
        self.key = key
        self.nominal_size = nominal_size
        self.node_id = node_id
        self.seconds = 0.0
        self._slow = slow
        self._request = request
        self._chunks = 0

    def read(self, nbytes: int, request=None) -> float:
        store = self.store
        if self._chunks > 0 and store.faults is not None:
            self._slow = store.faults.tier_gate("pfs", "pfs", "get", self.key)
        request = self._request if request is None else request
        _, node_link = store.node_links(self.node_id)
        with store.telemetry.bus.span("pfs-get", "pfs", key=self.key, bytes=nbytes):
            seconds = node_link.transfer(nbytes, request=request)
            seconds += store.global_read_link.transfer(nbytes, request=request)
            if self._slow > 1.0:
                extra = seconds * (self._slow - 1.0)
                store._clock.sleep(extra)
                seconds += extra
        store._m_read_bytes.inc(nbytes)
        self._chunks += 1
        self.seconds += seconds
        return seconds

    def finish(self):
        """``(payload, accounted seconds)`` — the whole object, post-charges."""
        self.store._m_read_ops.inc()
        return self.store._read_payload(self.key), self.seconds
