"""Parallel-file-system tier (Lustre stand-in).

One :class:`PfsStore` per cluster, shared by every node.  Each node funnels
its PFS traffic through its own per-node ingress/egress links (a node's
share of the fabric), while a global pair of links models the file system's
aggregate bandwidth — so both per-node and cluster-wide saturation occur.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.errors import CheckpointNotFound
from repro.simgpu.bandwidth import Link
from repro.simgpu.memory import checksum_payload
from repro.telemetry import Telemetry
from repro.tiers.base import InMemoryIndex, ObjectStore, StoreKey, TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultDomain
    from repro.sched.scheduler import SchedContext


class PfsStore(ObjectStore):
    """Throttled cluster-shared checkpoint store."""

    level = TierLevel.PFS

    def __init__(
        self,
        spec: HardwareSpec,
        scale: ScaleModel,
        clock: VirtualClock,
        num_nodes: int = 1,
        aggregate_factor: float = 2.0,
        telemetry: Optional[Telemetry] = None,
        sched: Optional["SchedContext"] = None,
        faults: Optional["FaultDomain"] = None,
    ) -> None:
        """``aggregate_factor``: the file system sustains this multiple of a
        single node's share before becoming the bottleneck."""
        self.scale = scale
        self._clock = clock
        self.faults = faults if (faults is not None and faults.enabled) else None
        self._crc_meta = faults is not None and faults.meta_crc
        self._faults_hook = faults
        self.telemetry = telemetry or Telemetry.disabled()
        registry = self.telemetry.registry
        self._m_write_bytes = registry.counter("tier.pfs.write_bytes")
        self._m_read_bytes = registry.counter("tier.pfs.read_bytes")
        self._m_write_ops = registry.counter("tier.pfs.write_ops")
        self._m_read_ops = registry.counter("tier.pfs.read_ops")
        aggregate_write = spec.pfs_write_bandwidth * max(1.0, aggregate_factor)
        aggregate_read = spec.pfs_read_bandwidth * max(1.0, aggregate_factor)
        self.global_write_link = Link(
            "pfs-write", aggregate_write, clock, latency=0.0, chunk_size=1 << 62
        )
        self.global_read_link = Link(
            "pfs-read", aggregate_read, clock, latency=0.0, chunk_size=1 << 62
        )
        self._sched = sched
        if sched is not None:
            sched.attach(self.global_write_link)
            sched.attach(self.global_read_link)
        if faults is not None:
            faults.attach(self.global_write_link)
            faults.attach(self.global_read_link)
        self._node_write_links: Dict[int, Link] = {}
        self._node_read_links: Dict[int, Link] = {}
        self._link_lock = threading.Lock()
        self._spec = spec
        self._index = InMemoryIndex()
        self._blobs: Dict[StoreKey, np.ndarray] = {}
        self._blob_lock = threading.Lock()

    def node_links(self, node_id: int):
        """Per-node ingress/egress links (created lazily)."""
        with self._link_lock:
            if node_id not in self._node_write_links:
                self._node_write_links[node_id] = Link(
                    f"node{node_id}-pfs-write",
                    self._spec.pfs_write_bandwidth,
                    self._clock,
                    latency=self._spec.pfs_latency,
                )
                self._node_read_links[node_id] = Link(
                    f"node{node_id}-pfs-read",
                    self._spec.pfs_read_bandwidth,
                    self._clock,
                    latency=self._spec.pfs_latency,
                )
                if self._sched is not None:
                    self._sched.attach(self._node_write_links[node_id])
                    self._sched.attach(self._node_read_links[node_id])
                if self._faults_hook is not None:
                    self._faults_hook.attach(self._node_write_links[node_id])
                    self._faults_hook.attach(self._node_read_links[node_id])
            return self._node_write_links[node_id], self._node_read_links[node_id]

    def put(self, key: StoreKey, payload: np.ndarray, nominal_size: int, **kw) -> float:
        """``copy=False`` transfers ownership of ``payload`` to the store
        (the caller must not mutate it afterwards) instead of copying it."""
        node_id = kw.get("node_id", 0)
        cancelled = kw.get("cancelled")
        meta = kw.get("meta")
        copy = kw.get("copy", True)
        request = kw.get("request")
        slow = 1.0
        corrupt_at = None
        if self.faults is not None:
            slow = self.faults.tier_gate("pfs", "pfs", "put", key)
            corrupt_at = self.faults.corruption("pfs", key, int(payload.size))
        if self._crc_meta:
            meta = dict(meta or {})
            meta["stored_crc"] = int(checksum_payload(payload))
        node_link, _ = self.node_links(node_id)
        with self.telemetry.bus.span("pfs-put", "pfs", key=key, bytes=nominal_size):
            seconds = node_link.transfer(
                nominal_size, cancelled=cancelled, request=request
            )
            seconds += self.global_write_link.transfer(
                nominal_size, cancelled=cancelled, request=request
            )
            if slow > 1.0:  # brownout: degraded throughput, same bytes
                extra = seconds * (slow - 1.0)
                self._clock.sleep(extra)
                seconds += extra
        self._m_write_bytes.inc(nominal_size)
        self._m_write_ops.inc()
        # Corruption flips a byte on the store's copy only (see SsdStore.put).
        blob = payload.copy() if (copy or corrupt_at is not None) else payload
        if corrupt_at is not None:
            blob[corrupt_at] ^= 0xFF
        blob.flags.writeable = False  # get() hands out views of this blob
        with self._blob_lock:
            self._blobs[key] = blob
        self._index.add(key, nominal_size, meta)
        return seconds

    def get(self, key: StoreKey, node_id: int = 0, request=None):
        nominal_size = self._index.require(key)
        slow = 1.0
        if self.faults is not None:
            slow = self.faults.tier_gate("pfs", "pfs", "get", key)
        _, node_link = self.node_links(node_id)
        with self.telemetry.bus.span("pfs-get", "pfs", key=key, bytes=nominal_size):
            seconds = node_link.transfer(nominal_size, request=request)
            seconds += self.global_read_link.transfer(nominal_size, request=request)
            if slow > 1.0:
                extra = seconds * (slow - 1.0)
                self._clock.sleep(extra)
                seconds += extra
        self._m_read_bytes.inc(nominal_size)
        self._m_read_ops.inc()
        with self._blob_lock:
            payload = self._blobs.get(key)
        if payload is None:
            raise CheckpointNotFound(f"checkpoint {key} missing from PFS store")
        # Zero-copy: a read-only view (blobs are immutable once stored, and
        # a view keeps its base alive even across a concurrent delete()).
        return payload[:], seconds

    def delete(self, key: StoreKey) -> None:
        if self._index.remove(key):
            with self._blob_lock:
                self._blobs.pop(key, None)

    def contains(self, key: StoreKey) -> bool:
        return self._index.contains(key)

    def verify(self, key: StoreKey) -> bool:
        """CRC-scrub the stored blob (uncharged); see SsdStore.verify."""
        if not self._index.contains(key):
            return False
        stored_crc = (self._index.meta(key) or {}).get("stored_crc")
        if stored_crc is None:
            return True
        with self._blob_lock:
            blob = self._blobs.get(key)
        if blob is None:
            return False
        return int(checksum_payload(blob)) == int(stored_crc)

    def meta(self, key: StoreKey) -> dict:
        return self._index.meta(key)

    def size_of(self, key: StoreKey) -> int:
        return self._index.size_of(key)

    def keys_for_process(self, process_id: int):
        return self._index.keys_for_process(process_id)

    def stored_bytes(self) -> int:
        return self._index.total()

    def object_count(self) -> int:
        return self._index.count()
