"""Cluster / node / process wiring.

Reproduces the DGX-A100 sharing structure the evaluation depends on:

* eight GPUs per node, **two GPUs per PCIe Gen 4 link** — so device↔host
  bandwidth is contended pairwise;
* one node-local SSD store shared by all co-located processes;
* one cluster-wide PFS store;
* per-process GPU and pinned-host cache arenas (the paper reserves 4 GB HBM
  and 32 GB host memory per process; host-cache *sharing* across processes
  is explicitly future work in the paper).

A :class:`ProcessContext` bundles everything one checkpointing engine needs.
"""

from __future__ import annotations

import os
import threading
from typing import List, Optional

from repro.clock import VirtualClock
from repro.config import RuntimeConfig
from repro.errors import ConfigError
from repro.faults.health import HealthRegistry
from repro.faults.injector import FaultDomain
from repro.faults.journal import ManifestJournal, RecipeStore
from repro.sched.scheduler import SchedContext
from repro.simgpu.bandwidth import Link
from repro.simgpu.device import Device
from repro.simgpu.memory import Arena
from repro.telemetry import Telemetry
from repro.tiers.gpu import make_gpu_cache_arena
from repro.tiers.host import make_host_cache_arena
from repro.tiers.pfs import PfsStore
from repro.tiers.ssd import SsdStore


class ProcessContext:
    """Everything one process (engine) needs: device, arenas, stores."""

    def __init__(
        self,
        process_id: int,
        node: "Node",
        device: Device,
    ) -> None:
        self.process_id = process_id
        self.node = node
        self.device = device
        self.clock = node.clock
        self.scale = node.config.scale
        self.spec = node.config.hardware
        self.config = node.config
        self._gpu_arena: Optional[Arena] = None
        self._host_arena: Optional[Arena] = None
        self._host_pin_started_at: Optional[float] = None

    @property
    def ssd(self) -> SsdStore:
        return self.node.ssd

    @property
    def pfs(self) -> Optional[PfsStore]:
        return self.node.cluster.pfs

    @property
    def telemetry(self) -> Telemetry:
        return self.node.cluster.telemetry

    def gpu_cache_arena(self, nominal_capacity: Optional[int] = None) -> Arena:
        """This process's device cache arena (allocated once, then cached)."""
        if self._gpu_arena is None:
            capacity = nominal_capacity or self.config.cache.gpu_cache_size
            self._gpu_arena = make_gpu_cache_arena(
                self.device, capacity, charge_cost=self.config.charge_allocation_cost
            )
        return self._gpu_arena

    def host_cache_arena(self, nominal_capacity: Optional[int] = None) -> Arena:
        """This process's pinned host cache arena (allocated once).

        With ``lazy_host_pinning`` the pinning cost is not paid up front;
        instead :meth:`host_usable_capacity` reports a usable prefix that
        grows at the pinning rate (Section 4.1.4 / [18]).
        """
        if self._host_arena is None:
            capacity = nominal_capacity or self.config.cache.host_cache_size
            lazy = self.config.lazy_host_pinning
            self._host_pin_started_at = self.clock.now()
            self._host_arena = make_host_cache_arena(
                self.process_id,
                capacity,
                self.spec,
                self.scale,
                self.clock,
                charge_cost=self.config.charge_allocation_cost and not lazy,
            )
        return self._host_arena

    def host_usable_capacity(self) -> int:
        """Currently-pinned prefix of the host cache arena (nominal bytes)."""
        arena = self.host_cache_arena()
        if not (self.config.charge_allocation_cost and self.config.lazy_host_pinning):
            return arena.nominal_capacity
        elapsed = self.clock.now() - (self._host_pin_started_at or 0.0)
        pinned = int(elapsed * self.spec.host_pin_bandwidth)
        return min(arena.nominal_capacity, pinned)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessContext(p{self.process_id}, node {self.node.node_id})"


class Node:
    """One compute node: devices, shared PCIe links, SSD store."""

    def __init__(self, node_id: int, cluster: "Cluster") -> None:
        self.node_id = node_id
        self.cluster = cluster
        self.config = cluster.config
        self.clock = cluster.clock
        spec = self.config.hardware
        ssd_dir = None
        if self.config.ssd_directory is not None:
            ssd_dir = os.path.join(self.config.ssd_directory, f"node{node_id}")
        self.ssd = SsdStore(
            node_id,
            spec,
            self.config.scale,
            self.clock,
            directory=ssd_dir,
            telemetry=cluster.telemetry,
            sched=cluster.sched,
            faults=cluster.faults,
        )
        # Shared PCIe links: gpus_per_pcie_link GPUs share one per direction.
        self._d2h_links: List[Link] = []
        self._h2d_links: List[Link] = []
        for li in range(spec.pcie_links_per_node):
            self._d2h_links.append(
                Link(
                    f"node{node_id}-pcie{li}-d2h",
                    spec.d2h_bandwidth,
                    self.clock,
                    latency=spec.transfer_latency,
                )
            )
            self._h2d_links.append(
                Link(
                    f"node{node_id}-pcie{li}-h2d",
                    spec.h2d_bandwidth,
                    self.clock,
                    latency=spec.transfer_latency,
                )
            )
            cluster.sched.attach(self._d2h_links[-1])
            cluster.sched.attach(self._h2d_links[-1])
            cluster.faults.attach(self._d2h_links[-1])
            cluster.faults.attach(self._h2d_links[-1])
        self.devices: List[Device] = []
        for gi in range(spec.gpus_per_node):
            link_idx = gi // spec.gpus_per_pcie_link
            self.devices.append(
                Device(
                    device_id=node_id * spec.gpus_per_node + gi,
                    spec=spec,
                    scale=self.config.scale,
                    clock=self.clock,
                    d2h_link=self._d2h_links[link_idx],
                    h2d_link=self._h2d_links[link_idx],
                )
            )

    def process_context(self, local_rank: int) -> ProcessContext:
        if not 0 <= local_rank < len(self.devices):
            raise ConfigError(
                f"local rank {local_rank} out of range for node with "
                f"{len(self.devices)} GPUs"
            )
        process_id = self.node_id * self.config.hardware.gpus_per_node + local_rank
        return ProcessContext(process_id, self, self.devices[local_rank])

    def close(self) -> None:
        for device in self.devices:
            device.close()


class Cluster:
    """The whole job: nodes plus the shared parallel file system."""

    def __init__(self, config: RuntimeConfig, clock: Optional[VirtualClock] = None) -> None:
        self.config = config
        self.clock = clock or VirtualClock(config.scale.time_scale)
        #: one telemetry bundle per simulation: every engine, cache, flush
        #: stream and store of this cluster traces and counts into it.
        self.telemetry = Telemetry(
            clock=self.clock,
            enabled=config.telemetry,
            capacity=config.telemetry_buffer,
        )
        #: QoS transfer scheduling across the shared links (no-op arbiter
        #: fleet unless ``config.sched.enabled``); every Link this cluster
        #: creates — PCIe pairs, SSD, PFS, fabric — is offered to it.
        self.sched = SchedContext(config.sched, self.clock, self.telemetry)
        #: deterministic fault injection (inactive unless ``config.faults``
        #: enables it); offered every Link and tier store like the scheduler.
        self.faults = FaultDomain(
            config.faults, config.resilience, self.clock, self.telemetry
        )
        #: per-tier circuit breakers (always constructed; no-op registry
        #: unless ``config.resilience.enabled``).
        self.health = HealthRegistry(config.resilience, self.clock, self.telemetry)
        #: crash-consistent durable-commit log + reduced-checkpoint recipe
        #: sidecar; file-backed next to the SSD tier when it has a directory
        #: so both survive full process re-incarnation.
        journal_path = None
        recipe_dir = None
        if config.ssd_directory is not None:
            os.makedirs(config.ssd_directory, exist_ok=True)
            journal_path = os.path.join(config.ssd_directory, "journal.jsonl")
            recipe_dir = os.path.join(config.ssd_directory, "recipes")
        self.journal = ManifestJournal(path=journal_path)
        self.recipes = RecipeStore(directory=recipe_dir)
        self.pfs = PfsStore(
            config.hardware,
            config.scale,
            self.clock,
            num_nodes=config.num_nodes,
            telemetry=self.telemetry,
            sched=self.sched,
            faults=self.faults,
        )
        self.nodes = [Node(node_id, self) for node_id in range(config.num_nodes)]
        self._closed = False
        self._lock = threading.Lock()
        self._internode_links = {}
        #: distributed checkpoint fabric (None unless ``config.cluster``
        #: enables it): replica directory, peer-read routing, per-node PFS
        #: write aggregators (:mod:`repro.cluster.fabric`).
        self.fabric = None
        if config.cluster.enabled:
            from repro.cluster.fabric import ClusterFabric  # lazy: import cycle

            self.fabric = ClusterFabric(self)
            for node in self.nodes:
                node.ssd.attach_directory(self.fabric.directory)

    def internode_link(self, node_a: int, node_b: int) -> Link:
        """The shared fabric link between two nodes (created lazily)."""
        if node_a == node_b:
            raise ConfigError("no interconnect link from a node to itself")
        key = (min(node_a, node_b), max(node_a, node_b))
        with self._lock:
            link = self._internode_links.get(key)
            if link is None:
                link = Link(
                    f"fabric-{key[0]}-{key[1]}",
                    self.config.hardware.internode_bandwidth,
                    self.clock,
                    latency=self.config.hardware.transfer_latency,
                )
                self.sched.attach(link)
                self.faults.attach(link)
                self._internode_links[key] = link
            return link

    def process_contexts(self) -> List[ProcessContext]:
        """One context per process, ``processes_per_node`` per node."""
        contexts = []
        ppn = self.config.effective_processes_per_node
        for node in self.nodes:
            for local_rank in range(ppn):
                contexts.append(node.process_context(local_rank))
        return contexts

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
