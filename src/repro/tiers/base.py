"""Tier levels and the keyed object-store interface for slow tiers."""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from enum import IntEnum
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import CheckpointNotFound


class TierLevel(IntEnum):
    """Position in the hierarchy; lower is faster."""

    GPU = 0
    HOST = 1
    SSD = 2
    PFS = 3

    @property
    def slower(self) -> Optional["TierLevel"]:
        return TierLevel(self.value + 1) if self.value < TierLevel.PFS else None

    @property
    def faster(self) -> Optional["TierLevel"]:
        return TierLevel(self.value - 1) if self.value > TierLevel.GPU else None


#: Object-store key: (process id, checkpoint version).
StoreKey = Tuple[int, int]


class ObjectStore(ABC):
    """A keyed store for whole checkpoints on a slow tier.

    Checkpoints are monolithic and immutable once written (the paper's core
    assumption), so the *visibility* interface is put/get/delete of whole
    objects; cost accounting (bandwidth throttling) happens inside the
    implementations.

    Streaming interface (chunk pipelining): :meth:`open_put` /
    :meth:`open_get` return in-flight handles whose ``write(nbytes)`` /
    ``read(nbytes)`` charge the virtual clock one chunk at a time, so a
    cascade stage can overlap its chunks with the neighbouring hop.  The
    object stays invisible until the put handle's ``commit(payload)`` —
    commit-at-end keeps every crash-consistency property of whole-object
    puts (a torn stream leaves nothing behind; the manifest journal never
    references an uncommitted key).  ``put``/``get`` are exactly
    ``open_* + one full-size chunk + commit/finish``, so the legacy
    whole-object path and the streamed path share one implementation.
    """

    level: TierLevel

    @abstractmethod
    def put(self, key: StoreKey, payload: np.ndarray, nominal_size: int, **kw) -> float:
        """Write a whole checkpoint; blocks for the throttled duration.

        Returns the accounted nominal seconds the write took."""

    @abstractmethod
    def get(self, key: StoreKey) -> "Tuple[np.ndarray, float]":
        """Read a whole checkpoint back; blocks for the throttled duration.

        Returns ``(payload, accounted nominal seconds)``."""

    def open_put(self, key: StoreKey, nominal_size: int, payload_size: int, **kw):
        """Chunk-granular write handle: ``write(nbytes)`` per chunk, then
        ``commit(payload, meta=, copy=)`` (or ``abort()``)."""
        raise NotImplementedError(f"{type(self).__name__} does not stream puts")

    def open_get(self, key: StoreKey, **kw):
        """Chunk-granular read handle: ``read(nbytes)`` per chunk, then
        ``finish() -> (payload, seconds)``."""
        raise NotImplementedError(f"{type(self).__name__} does not stream gets")

    @abstractmethod
    def delete(self, key: StoreKey) -> None:
        """Drop a checkpoint (no-op if absent)."""

    @abstractmethod
    def contains(self, key: StoreKey) -> bool: ...

    @abstractmethod
    def stored_bytes(self) -> int:
        """Total nominal bytes currently stored."""


class InMemoryIndex:
    """Shared bookkeeping for store implementations: key → size + metadata.

    The metadata dict (checksum, true size, …) is what a restarted process
    recovers its catalog from — mirroring the metadata files a real
    multi-level checkpointing runtime writes next to each checkpoint.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sizes: Dict[StoreKey, int] = {}
        self._meta: Dict[StoreKey, dict] = {}

    def add(self, key: StoreKey, nominal_size: int, meta: Optional[dict] = None) -> None:
        with self._lock:
            self._sizes[key] = nominal_size
            self._meta[key] = dict(meta or {})

    def remove(self, key: StoreKey) -> bool:
        with self._lock:
            self._meta.pop(key, None)
            return self._sizes.pop(key, None) is not None

    def require(self, key: StoreKey) -> int:
        with self._lock:
            size = self._sizes.get(key)
        if size is None:
            raise CheckpointNotFound(f"checkpoint {key} not present in store")
        return size

    def meta(self, key: StoreKey) -> dict:
        with self._lock:
            if key not in self._sizes:
                raise CheckpointNotFound(f"checkpoint {key} not present in store")
            return dict(self._meta.get(key, {}))

    def contains(self, key: StoreKey) -> bool:
        with self._lock:
            return key in self._sizes

    def keys_for_process(self, process_id: int):
        with self._lock:
            return sorted(k for k in self._sizes if k[0] == process_id)

    def keys(self) -> list:
        """Every key in the index, sorted (node crash/rejoin sweeps)."""
        with self._lock:
            return sorted(self._sizes)

    def size_of(self, key: StoreKey) -> int:
        return self.require(key)

    def total(self) -> int:
        with self._lock:
            return sum(self._sizes.values())

    def count(self) -> int:
        with self._lock:
            return len(self._sizes)
