"""Pinned host cache-tier arena construction.

Pinned host memory allocates at ~4 GB/s (Section 4.1.4), which is why the
paper pays the cost once up front; ``charge_cost=True`` reproduces the
resulting slow cache warm-up that both the paper's system and the UVM
comparator exhibit ("the problem of slow host cache initialization").
"""

from __future__ import annotations

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.simgpu.memory import Arena


def make_host_cache_arena(
    process_id: int,
    nominal_capacity: int,
    spec: HardwareSpec,
    scale: ScaleModel,
    clock: VirtualClock,
    charge_cost: bool = True,
) -> Arena:
    """Pre-allocate and pin one process's contiguous host cache."""
    capacity = scale.align(nominal_capacity)
    if charge_cost:
        clock.sleep(capacity / spec.host_pin_bandwidth)
    return Arena(f"p{process_id}-host-cache", capacity, scale)
