"""The node-local / remote storage hierarchy.

Level 0 (GPU HBM cache) and level 1 (pinned host cache) are fixed-capacity
contiguous arenas managed by the runtime's eviction logic
(:mod:`repro.core.cache`).  Level 2 (node-local SSD) and level 3 (parallel
file system) are throttled object stores assumed large enough for a node's /
the job's full checkpoint history (the paper's capacity assumption,
Section 2).
"""

from repro.tiers.base import ObjectStore, TierLevel
from repro.tiers.ssd import SsdStore
from repro.tiers.pfs import PfsStore
from repro.tiers.gpu import make_gpu_cache_arena
from repro.tiers.host import make_host_cache_arena
from repro.tiers.topology import Cluster, Node, ProcessContext

__all__ = [
    "ObjectStore",
    "TierLevel",
    "SsdStore",
    "PfsStore",
    "make_gpu_cache_arena",
    "make_host_cache_arena",
    "Cluster",
    "Node",
    "ProcessContext",
]
