"""Pluggable next-restore predictors behind a common protocol.

Two models, per the roadmap:

* :class:`RecencyPredictor` — a reuse-distance/recency model: per-producer
  EWMA of the inter-restore gap gives an expected next-access time;
  candidates are ordered soonest-expected first, with confidence derived
  from the regularity of the producer's gaps.
* :class:`MarkovPredictor` — a first-order Markov next-restore chain over
  producer transitions (checkpoint-id transitions when the application
  names no producer): from the last restored producer, repeatedly follow
  the argmax transition; confidence is the product of transition
  probabilities along the chain.

:class:`HybridPredictor` composes both: the Markov chain's confident
predictions lead (structured revisit patterns — revolve), recency ordering
fills the rest (periodic re-activation — serving).  All predictors observe
events incrementally and must be called under the engine monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Protocol

from repro.predict.history import KIND_CHECKPOINT, KIND_RESTORE, AccessEvent


@dataclass(frozen=True)
class Candidate:
    """A live, unconsumed, unhinted checkpoint eligible for prediction."""

    ckpt_id: int
    producer: Hashable
    created_ts: float


@dataclass(frozen=True)
class Prediction:
    """One predicted restore: soonest-expected candidates rank first."""

    ckpt_id: int
    confidence: float
    expected_ts: float


class Predictor(Protocol):
    """Protocol every prediction model implements."""

    name: str

    def observe(self, event: AccessEvent) -> None:
        """Feed one access event (engine monitor held)."""
        ...

    def predict(
        self, candidates: List[Candidate], now: float
    ) -> List[Prediction]:
        """Rank ``candidates`` by predicted next restore, best first."""
        ...


class _ProducerStats:
    __slots__ = ("last_ts", "ewma_gap", "ewma_dev", "restores")

    def __init__(self) -> None:
        self.last_ts: Optional[float] = None
        self.ewma_gap: Optional[float] = None
        self.ewma_dev = 0.0
        self.restores = 0


class RecencyPredictor:
    """Reuse-distance/recency model: expected = last access + EWMA gap."""

    name = "recency"

    #: confidence of a producer seen only once (global-prior fallback).
    COLD_CONFIDENCE = 0.1

    def __init__(self, alpha: float = 0.25) -> None:
        self.alpha = alpha
        self._producers: Dict[Hashable, _ProducerStats] = {}
        #: population prior: EWMA of inter-restore gaps across all
        #: producers, used for producers with a single observation.
        self._global_gap: Optional[float] = None

    def observe(self, event: AccessEvent) -> None:
        if event.kind not in (KIND_CHECKPOINT, KIND_RESTORE):
            return
        stats = self._producers.get(event.producer)
        if stats is None:
            stats = self._producers[event.producer] = _ProducerStats()
        if event.kind == KIND_RESTORE:
            if stats.last_ts is not None:
                gap = max(event.ts - stats.last_ts, 0.0)
                if stats.ewma_gap is None:
                    stats.ewma_gap = gap
                else:
                    dev = abs(gap - stats.ewma_gap)
                    stats.ewma_dev += self.alpha * (dev - stats.ewma_dev)
                    stats.ewma_gap += self.alpha * (gap - stats.ewma_gap)
                if self._global_gap is None:
                    self._global_gap = gap
                else:
                    self._global_gap += self.alpha * (gap - self._global_gap)
            stats.restores += 1
        # Both kinds mark the producer active: a suspend (checkpoint)
        # restarts the countdown to its next re-activation.
        stats.last_ts = event.ts

    def _confidence(self, stats: _ProducerStats) -> float:
        if stats.ewma_gap is None:
            return self.COLD_CONFIDENCE
        if stats.ewma_gap <= 0.0:
            return 1.0
        # Regular gaps (low coefficient of variation) mean high confidence.
        regularity = 1.0 / (1.0 + stats.ewma_dev / stats.ewma_gap)
        # More observations, more trust (saturating).
        support = stats.restores / (stats.restores + 2.0)
        return regularity * support

    def predict(
        self, candidates: List[Candidate], now: float
    ) -> List[Prediction]:
        out: List[Prediction] = []
        for cand in candidates:
            stats = self._producers.get(cand.producer)
            last = cand.created_ts if stats is None or stats.last_ts is None \
                else stats.last_ts
            if stats is not None and stats.ewma_gap is not None:
                expected = last + stats.ewma_gap
                confidence = self._confidence(stats)
            elif self._global_gap is not None:
                expected = last + self._global_gap
                confidence = self.COLD_CONFIDENCE
            else:
                expected = last
                confidence = self.COLD_CONFIDENCE
            out.append(
                Prediction(
                    ckpt_id=cand.ckpt_id,
                    confidence=confidence,
                    expected_ts=expected,
                )
            )
        # Soonest expected restore first; creation order breaks ties so
        # the ranking is deterministic.
        out.sort(key=lambda p: (p.expected_ts, p.ckpt_id))
        return out


class MarkovPredictor:
    """First-order next-restore chain over producer transitions."""

    name = "markov"

    #: maximum chain length followed from the last restored producer.
    MAX_CHAIN = 8
    #: stop extending the chain below this cumulative probability.
    MIN_CHAIN_CONFIDENCE = 0.05

    def __init__(self) -> None:
        self._transitions: Dict[Hashable, Dict[Hashable, int]] = {}
        self._last: Optional[Hashable] = None

    def observe(self, event: AccessEvent) -> None:
        if event.kind != KIND_RESTORE:
            return
        if self._last is not None:
            row = self._transitions.setdefault(self._last, {})
            row[event.producer] = row.get(event.producer, 0) + 1
        self._last = event.producer

    def predict(
        self, candidates: List[Candidate], now: float
    ) -> List[Prediction]:
        # Newest live checkpoint per producer: the chain predicts the
        # producer, the candidate map resolves it to a restorable id.
        by_producer: Dict[Hashable, Candidate] = {}
        for cand in candidates:
            best = by_producer.get(cand.producer)
            if best is None or cand.created_ts > best.created_ts:
                by_producer[cand.producer] = cand
        out: List[Prediction] = []
        seen = set()
        current = self._last
        confidence = 1.0
        for step in range(self.MAX_CHAIN):
            row = self._transitions.get(current)
            if not row:
                break
            total = sum(row.values())
            ranked = sorted(row.items(), key=lambda kv: (-kv[1], str(kv[0])))
            nxt = None
            for producer, count in ranked:
                if producer in seen:
                    continue
                nxt = (producer, count / total)
                break
            if nxt is None:
                break
            producer, prob = nxt
            confidence *= prob
            if confidence < self.MIN_CHAIN_CONFIDENCE:
                break
            seen.add(producer)
            cand = by_producer.get(producer)
            if cand is not None:
                out.append(
                    Prediction(
                        ckpt_id=cand.ckpt_id,
                        confidence=confidence,
                        expected_ts=now + step,
                    )
                )
            current = producer
        return out


class HybridPredictor:
    """Markov chain leads, recency ordering fills the remainder."""

    name = "hybrid"

    def __init__(self, alpha: float = 0.25) -> None:
        self.recency = RecencyPredictor(alpha=alpha)
        self.markov = MarkovPredictor()

    def observe(self, event: AccessEvent) -> None:
        self.recency.observe(event)
        self.markov.observe(event)

    def predict(
        self, candidates: List[Candidate], now: float
    ) -> List[Prediction]:
        out: List[Prediction] = []
        taken = set()
        for pred in self.markov.predict(candidates, now):
            out.append(pred)
            taken.add(pred.ckpt_id)
        for pred in self.recency.predict(candidates, now):
            if pred.ckpt_id not in taken:
                out.append(pred)
        return out


def build_predictor(name: str, alpha: float = 0.25) -> Predictor:
    if name == "recency":
        return RecencyPredictor(alpha=alpha)
    if name == "markov":
        return MarkovPredictor()
    if name == "hybrid":
        return HybridPredictor(alpha=alpha)
    raise ValueError(f"unknown predictor: {name!r}")
