"""Bounded ring of access events on the virtual clock.

Every checkpoint/restore/evict/demand-miss the engine observes is recorded
here per *producer* — the stable identity behind a stream of checkpoint
versions (a serving session, a revolve state index; defaults to the
checkpoint id itself when the application names none).  Predictors consume
the events incrementally through :meth:`Predictor.observe`; the ring keeps
a bounded replayable window for diagnostics and late-attaching consumers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Hashable, Iterator, List

#: event kinds recorded in the ring.
KIND_CHECKPOINT = "checkpoint"
KIND_RESTORE = "restore"
KIND_EVICT = "evict"
KIND_MISS = "miss"


@dataclass(frozen=True)
class AccessEvent:
    """One observed access, stamped on the virtual clock."""

    ts: float
    kind: str
    ckpt_id: int
    producer: Hashable


class AccessHistory:
    """Capacity-bounded event ring (oldest events drop first)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"history capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._events: Deque[AccessEvent] = deque(maxlen=capacity)
        #: total events ever recorded (including dropped ones).
        self.recorded = 0

    def record(
        self, ts: float, kind: str, ckpt_id: int, producer: Hashable
    ) -> AccessEvent:
        event = AccessEvent(ts=ts, kind=kind, ckpt_id=ckpt_id, producer=producer)
        self._events.append(event)
        self.recorded += 1
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self._events)

    def recent(self, n: int) -> List[AccessEvent]:
        """The newest ``n`` events, oldest first."""
        if n <= 0:
            return []
        if n >= len(self._events):
            return list(self._events)
        out = list(self._events)
        return out[-n:]
