"""Online access-pattern prediction (hint-less prefetch & eviction).

When :class:`~repro.config.PredictConfig` is enabled the engine's restore
hint queue becomes a :class:`~repro.predict.queue.SyntheticRestoreQueue`:
explicit hints keep absolute priority and a revocable *predicted overlay*
— produced by a pluggable :class:`~repro.predict.predictors.Predictor`
from the :class:`~repro.predict.history.AccessHistory` ring — feeds the
same prefetcher and Algorithm-1 eviction scoring through the unchanged
``RestoreQueue`` interface.  Predicted entries always admit through the
sched speculative class, and the PhoenixOS-style
:class:`~repro.predict.validation.SpeculationValidator` scores each
speculative staging on consume/abandon and suspends speculation
(demand-only fallback) when the hit rate drops below a floor.
"""

from repro.predict.history import AccessEvent, AccessHistory
from repro.predict.predictors import (
    Candidate,
    HybridPredictor,
    MarkovPredictor,
    Prediction,
    Predictor,
    RecencyPredictor,
    build_predictor,
)
from repro.predict.queue import SyntheticRestoreQueue
from repro.predict.runtime import PredictRuntime
from repro.predict.validation import SpeculationValidator

__all__ = [
    "AccessEvent",
    "AccessHistory",
    "Candidate",
    "HybridPredictor",
    "MarkovPredictor",
    "Prediction",
    "Predictor",
    "RecencyPredictor",
    "SpeculationValidator",
    "SyntheticRestoreQueue",
    "PredictRuntime",
    "build_predictor",
]
