"""Synthetic restore queue: explicit hints + a revocable predicted overlay.

The prefetcher, the Algorithm-1 eviction scoring and the engine all talk
to :class:`~repro.core.restore_queue.RestoreQueue` through ``head`` /
``upcoming`` / ``distance`` / ``is_hinted`` / ``__len__``; this subclass
keeps that interface intact while appending a *predicted overlay* after
every live explicit hint.  Key differences from explicit hints:

* the overlay is **revocable** — every :meth:`refresh` replaces it
  wholesale with the predictor's latest ranking (hints can never be
  revoked);
* explicit hints always outrank predictions: a predicted id that later
  receives a real hint silently migrates to the explicit order, and the
  synthetic distance of every overlay entry starts past the last live
  explicit hint;
* consuming a predicted entry does not count as a hint deviation — the
  validation layer scores speculation instead;
* a non-empty overlay auto-starts the queue, so learned mode needs no
  ``prefetch_start()`` call.

Distance-memo compatibility: the cache's ``FragmentCost`` memo
revalidates *hinted* entries against ``shift_epoch`` and *unhinted*
entries against membership in :meth:`hint_index`; refreshes bump
``shift_epoch`` and the index covers overlay ids, so cached costs stay
exact as predictions come and go.  All methods require the engine
monitor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.restore_queue import RestoreQueue
from repro.errors import HintError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry


class SyntheticRestoreQueue(RestoreQueue):
    """Hint queue with a confidence-weighted predicted overlay."""

    def __init__(self, telemetry: Optional["Telemetry"] = None) -> None:
        super().__init__(telemetry=telemetry)
        self._syn_order: List[int] = []
        self._syn_pos: Dict[int, int] = {}
        self._syn_conf: Dict[int, float] = {}
        #: explicit positions ∪ overlay ids — the membership map the cache
        #: memo checks to revalidate unhinted entries (see ``hint_index``).
        self._index: Dict[int, int] = {}
        if telemetry is None:  # pragma: no cover - parent built a real one
            from repro.telemetry import Telemetry

            telemetry = Telemetry.disabled()
        registry = telemetry.registry
        self._m_refreshes = registry.counter("predict.refreshes")
        self._m_overlay_depth = registry.gauge("predict.overlay_depth")

    # -- overlay maintenance ---------------------------------------------------
    def refresh(self, predicted: List[Tuple[int, float]]) -> bool:
        """Replace the overlay with ``[(ckpt_id, confidence), ...]`` (best
        first); ids that are explicitly hinted or already consumed are
        dropped.  Returns True when the visible order changed."""
        new_order: List[int] = []
        new_conf: Dict[int, float] = {}
        for ckpt_id, confidence in predicted:
            if (
                ckpt_id in self._position
                or ckpt_id in self._consumed
                or ckpt_id in new_conf
            ):
                continue
            new_order.append(ckpt_id)
            new_conf[ckpt_id] = confidence
        changed = new_order != self._syn_order
        if changed:
            for ckpt_id in self._syn_order:
                if ckpt_id not in new_conf and ckpt_id not in self._position:
                    self._index.pop(ckpt_id, None)
            self._syn_order = new_order
            self._syn_pos = {c: i for i, c in enumerate(new_order)}
            for ckpt_id in new_order:
                self._index[ckpt_id] = 1
            self.version += 1
            # Existing distances shift when the overlay reorders; the cost
            # memo revalidates hinted entries against this epoch.
            self.shift_epoch += 1
            if new_order and not self.started:
                self.started = True
            self._m_refreshes.inc()
            self._m_overlay_depth.set(len(new_order))
        self._syn_conf = new_conf
        return changed

    def _syn_remove(self, ckpt_id: int) -> None:
        self._syn_order.remove(ckpt_id)
        self._syn_pos = {c: i for i, c in enumerate(self._syn_order)}
        self._syn_conf.pop(ckpt_id, None)
        self.version += 1
        self.shift_epoch += 1
        self._m_overlay_depth.set(len(self._syn_order))

    # -- RestoreQueue interface ------------------------------------------------
    def hint_index(self) -> Dict[int, int]:
        return self._index

    def enqueue(self, ckpt_id: int) -> None:
        # A real hint for a predicted id wins: revoke the speculation
        # first so the explicit enqueue does not collide with it.
        if ckpt_id in self._syn_pos:
            self._syn_remove(ckpt_id)
        super().enqueue(ckpt_id)
        self._index[ckpt_id] = 1

    def __len__(self) -> int:
        return super().__len__() + len(self._syn_order)

    def head(self) -> Optional[int]:
        explicit = super().head()
        if explicit is not None:
            return explicit
        return self._syn_order[0] if self._syn_order else None

    def upcoming(self, n: int) -> List[int]:
        out = super().upcoming(n)
        if len(out) < n and self._syn_order:
            out.extend(self._syn_order[: n - len(out)])
        return out

    def distance(self, ckpt_id: int) -> Optional[int]:
        explicit = super().distance(ckpt_id)
        if explicit is not None:
            return explicit
        pos = self._syn_pos.get(ckpt_id)
        if pos is None or ckpt_id in self._consumed:
            return None
        # Overlay entries rank after every live explicit hint.
        return RestoreQueue.__len__(self) + pos

    def is_hinted(self, ckpt_id: int) -> bool:
        return super().is_hinted(ckpt_id) or (
            ckpt_id in self._syn_pos and ckpt_id not in self._consumed
        )

    def is_explicit(self, ckpt_id: int) -> bool:
        return super().is_hinted(ckpt_id)

    def confidence(self, ckpt_id: int) -> Optional[float]:
        return self._syn_conf.get(ckpt_id)

    def consume(self, ckpt_id: int) -> None:
        if ckpt_id in self._position:
            super().consume(ckpt_id)
            return
        if ckpt_id in self._syn_pos:
            if ckpt_id in self._consumed:  # pragma: no cover - refresh filters
                raise HintError(f"checkpoint {ckpt_id} consumed twice")
            # A correctly-speculated restore: consume the overlay entry
            # without charging a hint deviation (the validator scores
            # speculation accuracy separately).
            self._syn_remove(ckpt_id)
            self._consumed.add(ckpt_id)
            self._m_consumed.inc()
            return
        super().consume(ckpt_id)
