"""PhoenixOS-style validation of speculative prefetches.

Speculation is cheap to attempt and cheap to validate: every speculative
staging (a promotion of a *predicted*, non-explicitly-hinted checkpoint)
is scored when its fate resolves — ``1`` when the checkpoint is consumed
by a restore (hit), ``0`` when the staged copy is evicted or released
unconsumed (abandon/waste).  An EWMA over outcomes decays the confidence
estimate toward the recent past; once at least ``min_samples`` outcomes
exist and the EWMA drops below ``hit_floor``, speculation is *suspended*:
the runtime empties the predicted overlay and the engine falls back to
demand-only promotion for ``suspend_s`` nominal seconds, after which the
validator re-arms with a fresh estimate (probation).  Bad speculation
additionally sheds first at admission because predicted entries always
travel in the sched speculative class.

All methods are called under the engine monitor.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import PredictConfig
    from repro.telemetry import Telemetry


class SpeculationValidator:
    """Scores speculative stagings; suspends speculation when they miss."""

    def __init__(
        self,
        cfg: "PredictConfig",
        telemetry: "Telemetry",
        track: str,
    ) -> None:
        self.cfg = cfg
        self.bus = telemetry.bus
        self.track = track
        #: ckpt_id -> staged bytes, for stagings whose fate is unresolved.
        self.outstanding: Dict[int, int] = {}
        self.ewma: Optional[float] = None
        self.samples = 0
        self.suspended_until: Optional[float] = None
        registry = telemetry.registry
        self._m_hits = registry.counter("predict.spec_hits")
        self._m_wastes = registry.counter("predict.spec_wastes")
        self._m_wasted_bytes = registry.counter("predict.spec_wasted_bytes")
        self._m_suspensions = registry.counter("predict.suspensions")
        self._m_hit_rate = registry.gauge("predict.hit_rate")

    # -- staging lifecycle -----------------------------------------------------
    def on_staged(self, ckpt_id: int, nbytes: int, now: float) -> None:
        """A speculative promotion landed a copy for ``ckpt_id``."""
        if ckpt_id in self.outstanding:
            return  # second hop of the same chain (SSD->host, host->GPU)
        self.outstanding[ckpt_id] = nbytes
        self.bus.instant(
            "spec-stage", self.track, ckpt=ckpt_id, bytes=nbytes
        )

    def on_consume(self, ckpt_id: int, now: float) -> None:
        """The checkpoint was restored; a pending speculation is a hit."""
        nbytes = self.outstanding.pop(ckpt_id, None)
        if nbytes is None:
            return
        self._m_hits.inc()
        self.bus.instant("spec-hit", self.track, ckpt=ckpt_id, bytes=nbytes)
        self._score(1.0, now)

    def on_abandoned(self, ckpt_id: int, now: float) -> None:
        """A staged-but-unconsumed copy was evicted: wasted speculation."""
        nbytes = self.outstanding.pop(ckpt_id, None)
        if nbytes is None:
            return
        self._m_wastes.inc()
        self._m_wasted_bytes.inc(nbytes)
        self.bus.instant("spec-waste", self.track, ckpt=ckpt_id, bytes=nbytes)
        self._score(0.0, now)

    # -- confidence ------------------------------------------------------------
    def hit_rate(self) -> Optional[float]:
        return self.ewma

    def confidence_scale(self) -> float:
        """Multiplier the runtime applies to predictor confidences: decayed
        accuracy throttles marginal predictions before the hard floor."""
        if self.ewma is None or self.samples < self.cfg.min_samples:
            return 1.0
        return max(self.ewma, self.cfg.hit_floor)

    def _score(self, value: float, now: float) -> None:
        alpha = self.cfg.ewma_alpha
        self.ewma = value if self.ewma is None else (
            self.ewma + alpha * (value - self.ewma)
        )
        self.samples += 1
        self._m_hit_rate.set(self.ewma)
        if (
            self.suspended_until is None
            and self.samples >= self.cfg.min_samples
            and self.ewma < self.cfg.hit_floor
        ):
            self.suspended_until = now + self.cfg.suspend_s
            self._m_suspensions.inc()
            self.bus.instant(
                "spec-suspend",
                self.track,
                hit_rate=round(self.ewma, 4),
                until=self.suspended_until,
            )

    # -- suspension ------------------------------------------------------------
    def active(self, now: float) -> bool:
        """Whether speculation may run; re-arms after the suspend window."""
        if self.suspended_until is None:
            return True
        if now < self.suspended_until:
            return False
        # Probation: forget the poisoned estimate and try again.
        self.suspended_until = None
        self.ewma = None
        self.samples = 0
        self.outstanding.clear()
        self.bus.instant("spec-resume", self.track)
        return True

    def stats(self) -> dict:
        return {
            "outstanding": len(self.outstanding),
            "hits": self._m_hits.value,
            "wastes": self._m_wastes.value,
            "wasted_bytes": self._m_wasted_bytes.value,
            "hit_rate": None if self.ewma is None else round(self.ewma, 4),
            "suspensions": self._m_suspensions.value,
            "suspended": self.suspended_until is not None,
        }
