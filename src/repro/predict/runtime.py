"""Per-engine prediction orchestrator.

Owns the :class:`AccessHistory` ring, the configured predictor and the
:class:`SpeculationValidator`, and drives the
:class:`SyntheticRestoreQueue`'s overlay from the engine's lifecycle
hooks: ``on_checkpoint`` registers the new version under its producer,
``on_restore`` scores a pending speculation and re-ranks, ``on_evict``
abandons wasted stagings, ``on_speculative_staged`` arms the validator
when the prefetcher lands a predicted copy.  While the validator has
speculation suspended the overlay is kept empty — restores fall back to
demand-only promotion until the window passes.

Every method must be called under the engine monitor; the engine and the
prefetch thread both already hold it at the hook sites.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, TYPE_CHECKING

from repro.predict.history import (
    AccessHistory,
    KIND_CHECKPOINT,
    KIND_EVICT,
    KIND_MISS,
    KIND_RESTORE,
)
from repro.predict.predictors import Candidate, build_predictor
from repro.predict.queue import SyntheticRestoreQueue
from repro.predict.validation import SpeculationValidator

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import PredictConfig
    from repro.core.catalog import CheckpointRecord
    from repro.telemetry import Telemetry
    from repro.tiers.base import TierLevel


class PredictRuntime:
    """Glue between the engine's lifecycle and the prediction models."""

    def __init__(
        self,
        cfg: "PredictConfig",
        queue: SyntheticRestoreQueue,
        telemetry: "Telemetry",
        process_id: int,
    ) -> None:
        self.cfg = cfg
        self.queue = queue
        self.track = f"p{process_id}-predict"
        self.history = AccessHistory(cfg.history_capacity)
        self.predictor = build_predictor(cfg.predictor, alpha=cfg.ewma_alpha)
        self.validator: Optional[SpeculationValidator] = None
        if cfg.validation:
            self.validator = SpeculationValidator(
                cfg, telemetry=telemetry, track=self.track
            )
        #: ckpt_id -> producer for every known checkpoint.
        self._producers: Dict[int, Hashable] = {}
        #: ckpt_id -> Candidate for live (unconsumed) checkpoints.
        self._live: Dict[int, Candidate] = {}
        self._last_refresh: Optional[float] = None
        registry = telemetry.registry
        self._m_spec_prefetches = registry.counter("predict.spec_prefetches")
        self._m_demand_misses = registry.counter("predict.demand_misses")

    def producer_of(self, ckpt_id: int) -> Hashable:
        return self._producers.get(ckpt_id, ckpt_id)

    # -- engine hooks (monitor held) -------------------------------------------
    def on_checkpoint(
        self, record: "CheckpointRecord", producer: Optional[Hashable], now: float
    ) -> None:
        # Default producer: the checkpoint id itself — the Markov model
        # then learns checkpoint-id transitions directly.
        producer = record.ckpt_id if producer is None else producer
        self._producers[record.ckpt_id] = producer
        self._live[record.ckpt_id] = Candidate(
            ckpt_id=record.ckpt_id, producer=producer, created_ts=now
        )
        event = self.history.record(now, KIND_CHECKPOINT, record.ckpt_id, producer)
        self.predictor.observe(event)
        self.refresh(now)

    def on_restore(self, record: "CheckpointRecord", now: float) -> None:
        producer = self.producer_of(record.ckpt_id)
        event = self.history.record(now, KIND_RESTORE, record.ckpt_id, producer)
        self.predictor.observe(event)
        if self.validator is not None:
            self.validator.on_consume(record.ckpt_id, now)
        self._live.pop(record.ckpt_id, None)
        self.refresh(now, force=True)

    def on_evict(self, record: "CheckpointRecord", level: "TierLevel", now: float) -> None:
        if record.consumed:
            return  # post-consumption cleanup, not abandoned speculation
        producer = self.producer_of(record.ckpt_id)
        event = self.history.record(now, KIND_EVICT, record.ckpt_id, producer)
        self.predictor.observe(event)
        if self.validator is not None:
            self.validator.on_abandoned(record.ckpt_id, now)

    def on_speculative_staged(self, record: "CheckpointRecord", now: float) -> None:
        if record.consumed:
            return
        self._m_spec_prefetches.inc()
        if self.validator is not None:
            self.validator.on_staged(record.ckpt_id, record.nominal_size, now)

    def on_demand_miss(self, record: "CheckpointRecord", now: float) -> None:
        producer = self.producer_of(record.ckpt_id)
        event = self.history.record(now, KIND_MISS, record.ckpt_id, producer)
        self.predictor.observe(event)
        self._m_demand_misses.inc()

    def forget(self, ckpt_id: int) -> None:
        """A rolled-back checkpoint never existed for prediction."""
        self._producers.pop(ckpt_id, None)
        self._live.pop(ckpt_id, None)

    # -- overlay refresh -------------------------------------------------------
    def refresh(self, now: float, force: bool = False) -> None:
        interval = self.cfg.refresh_interval_s
        if (
            not force
            and interval > 0
            and self._last_refresh is not None
            and now - self._last_refresh < interval
        ):
            return
        self._last_refresh = now
        if self.validator is not None and not self.validator.active(now):
            self.queue.refresh([])
            return
        candidates = [
            cand
            for ckpt_id, cand in self._live.items()
            if not self.queue.is_explicit(ckpt_id)
        ]
        if not candidates:
            self.queue.refresh([])
            return
        scale = 1.0
        if self.validator is not None:
            scale = self.validator.confidence_scale()
        predictions = self.predictor.predict(candidates, now)
        overlay = [
            (p.ckpt_id, p.confidence * scale)
            for p in predictions
            if p.confidence * scale >= self.cfg.min_confidence
        ]
        self.queue.refresh(overlay[: self.cfg.max_queue])

    def stats(self) -> dict:
        out = {
            "predictor": self.predictor.name,
            "overlay_depth": len(self.queue._syn_order),
            "live_candidates": len(self._live),
            "history_events": self.history.recorded,
            "spec_prefetches": self._m_spec_prefetches.value,
            "demand_misses": self._m_demand_misses.value,
        }
        if self.validator is not None:
            out["validation"] = self.validator.stats()
        return out
