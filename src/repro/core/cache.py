"""CacheBuffer: one contiguous cache arena plus its eviction machinery.

Combines an :class:`~repro.simgpu.memory.Arena`, an
:class:`~repro.core.alloctable.AllocTable`, and a pluggable eviction policy
under the engine monitor.  ``reserve`` implements the blocking semantics of
Algorithm 1: pick the best window, wait until its members are evictable
(states change concurrently as the flusher progresses and the application
consumes checkpoints — after every wait the selection is re-evaluated
against the fresh table), evict, and claim the resulting gap.

Safety invariant enforced here: eviction never destroys the only complete
copy of an unconsumed checkpoint.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.clock import VirtualClock
from repro.core.alloctable import AllocTable, Fragment
from repro.core.lifecycle import PINNED_STATES, CkptState, Instance
from repro.core.predict import instance_state_ts
from repro.core.scoring import (
    FragmentCost,
    ScorePolicy,
    Window,
    fragment_cost,
    gap_cost,
    make_cost_fn,
)
from repro.core.sync import Monitor
from repro.errors import AllocationError, CapacityError
from repro.simgpu.memory import Arena
from repro.telemetry import Telemetry
from repro.tiers.base import TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord
    from repro.core.restore_queue import RestoreQueue


class CacheBuffer:
    """A managed cache tier (GPU or host) for one process."""

    #: Reservation re-evaluation timeout (nominal seconds).  Every state
    #: change that can unblock a reservation notifies the monitor, so this
    #: only guards against missed wakeups from other engines' resources.
    MISSED_WAKEUP_GUARD = 1.0
    #: Short re-evaluation interval used while a lazily-pinned host arena is
    #: still ramping up: its usable capacity grows with the clock and
    #: notifies nobody, so the reservation must keep polling briefly.
    RAMP_POLL_INTERVAL = 0.05

    def __init__(
        self,
        name: str,
        level: TierLevel,
        arena: Arena,
        monitor: Monitor,
        clock: VirtualClock,
        restore_queue: "RestoreQueue",
        flush_estimate: Callable[[int], float],
        policy=None,
        usable_capacity: Optional[Callable[[], int]] = None,
        on_evict: Optional[Callable[["CheckpointRecord", TierLevel], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.name = name
        self.level = level
        self.arena = arena
        self.monitor = monitor
        self.clock = clock
        self.queue = restore_queue
        self.flush_estimate = flush_estimate
        self.policy = policy or ScorePolicy()
        self.usable_capacity = usable_capacity
        self.on_evict = on_evict
        self.telemetry = telemetry or Telemetry.disabled()
        registry = self.telemetry.registry
        self._m_evictions = registry.counter(f"cache.{name}.evictions")
        self._m_forced = registry.counter(f"cache.{name}.forced_evictions")
        self._m_wait = registry.histogram(f"cache.{name}.eviction_wait_s")
        self._m_occupancy = registry.gauge(f"cache.{name}.occupancy")
        self._m_fragmentation = registry.gauge(f"cache.{name}.fragmentation")
        self.table = AllocTable(arena.nominal_capacity)
        #: Section 4.1.2 ablation: when set, write-path reservations are
        #: confined to ``[0, write_boundary)`` and prefetch-path ones to
        #: ``[write_boundary, capacity)`` — the "naive" statically split
        #: flush/prefetch cache the paper argues against.  ``None`` = the
        #: shared design.
        self.write_boundary: Optional[int] = None
        # counters
        self.evictions = 0
        self.forced_evictions = 0
        self.eviction_wait_time = 0.0
        #: running total of bytes held by pinned instances, maintained by
        #: per-instance trackers on every FSM transition (O(1) reads on the
        #: prefetcher's budget checks instead of a table scan).
        self._pinned_bytes = 0
        #: FragmentCost memo reused across selection passes; entries are
        #: keyed by instance identity + version so any state transition (or
        #: flush-pending / read-pinned flip) invalidates exactly that entry,
        #: with the hint-queue version tracked per entry for the distance
        #: component.  One memo per eviction mode: ``allow_pinned`` changes
        #: predicted state_ts, so plain and forced reservations must not
        #: share entries.
        #: ``cost_cache_enabled=False`` recomputes every cost (used by the
        #: eviction-equivalence tests to prove caching changes no decision).
        self.cost_cache_enabled = True
        self._cost_caches = ({}, {})  # [allow_pinned]

    # -- helpers (monitor held) ---------------------------------------------
    def contains(self, record: "CheckpointRecord") -> bool:
        return self.table.contains(record.ckpt_id)

    def offset_of(self, record: "CheckpointRecord") -> int:
        return self.table.lookup(record.ckpt_id).offset

    def pinned_bytes(self) -> int:
        """Bytes held by prefetched-but-unconsumed instances."""
        with self.monitor:
            return self._pinned_bytes

    def scan_pinned_bytes(self) -> int:
        """O(n) recount of :meth:`pinned_bytes` (validator cross-check)."""
        with self.monitor:
            total = 0
            for frag in self.table.fragments():
                if frag.is_gap:
                    continue
                inst = frag.record.peek(self.level)
                if inst is not None and inst.pinned:
                    total += frag.size
            return total

    def _make_tracker(self, record: "CheckpointRecord"):
        """Per-instance transition hook maintaining the pinned-byte total."""
        size = record.stored_size(self.level)

        def tracker(inst: Instance, old: CkptState, new: CkptState, now: float) -> None:
            pinned_now = new in PINNED_STATES
            if (old in PINNED_STATES) != pinned_now:
                self._pinned_bytes += size if pinned_now else -size

        return tracker

    def _forget_instance(self, record: "CheckpointRecord", inst: Instance) -> None:
        """Undo an instance's cache-side bookkeeping before it is dropped."""
        if inst.pinned:
            self._pinned_bytes -= record.stored_size(self.level)
        inst.tracker = None
        for cache in self._cost_caches:
            cache.pop(record.ckpt_id, None)

    def _limit(self) -> Optional[int]:
        return None if self.usable_capacity is None else self.usable_capacity()

    def ramping(self) -> bool:
        """True while a lazily-pinned arena's usable capacity still grows.

        Capacity growth is clock-driven and notifies no monitor, so waiters
        that depend on it must poll briefly instead of trusting wakeups.
        """
        usable = self._limit()
        return usable is not None and usable < self.table.capacity

    def _cost_fn(self, allow_pinned: bool):
        # s-contribution for unhinted checkpoints must dominate every real
        # distance; the queue can never hold more live hints than the table
        # has fragments plus the whole history, so table length + queue
        # length is a safe bound.
        no_hint = float(len(self.table) + len(self.queue) + 1)
        if not self.cost_cache_enabled:

            def state_ts(frag: Fragment) -> float:
                return instance_state_ts(
                    frag.record, self.level, self.flush_estimate, allow_pinned=allow_pinned
                )

            def distance(frag: Fragment) -> Optional[int]:
                return self.queue.distance(frag.record.ckpt_id)

            return make_cost_fn(state_ts, distance, no_hint)
        # Cached path.  An entry's predicted state_ts stays valid until its
        # instance transitions (its version moves).  The hint-distance
        # component is revalidated per entry at the finest grain that is
        # still exact:
        #
        # * barrier entries (qkey == -1): the cost ignores distance
        #   entirely, so they stay valid for the instance's lifetime;
        # * hinted entries (qkey >= 0): existing distances only shift when
        #   a hint is consumed, so they revalidate against the queue's
        #   ``shift_epoch`` — enqueues and ``start()`` never flush them;
        # * unhinted entries (qkey == -2): still unhinted iff the id was
        #   never enqueued or is already consumed — an O(1) check that
        #   replays :meth:`RestoreQueue.distance`'s None cases.
        #
        # The no-hint ceiling only feeds the s-score of unhinted members
        # and is re-applied per call from the frozen state_ts.
        # Link-backlog drift inside flush estimates is deliberately frozen
        # between transitions.
        gap = gap_cost(no_hint)
        cache = self._cost_caches[allow_pinned]
        level = self.level
        flush_estimate = self.flush_estimate
        queue = self.queue
        queue_distance = queue.distance
        epoch = queue.shift_epoch
        # Intimate access to the queue's hint index: both dicts are only
        # mutated under the engine monitor, which every caller of the cost
        # function already holds.  ``hint_index()`` also covers a synthetic
        # queue's predicted overlay, so entries cached as unhinted are
        # invalidated when a fragment becomes predicted.
        hint_position = queue.hint_index()
        hint_consumed = queue._consumed

        def cost_of(frag: Fragment):
            record = frag.record
            if record is None:
                return gap
            # record.peek(level) inlined: this runs once per fragment per
            # selection pass and the method-call overhead is measurable.
            inst = record.instances.get(level)
            version = -1 if inst is None else inst.version
            ckpt_id = record.ckpt_id
            entry = cache.get(ckpt_id)
            if entry is not None and entry[0] is inst and entry[1] == version:
                ts = entry[2]
                qkey = entry[3]
                if qkey == -1 or qkey == epoch:  # barrier / hinted-and-fresh
                    return entry[4]
                if qkey == -2 and (
                    ckpt_id not in hint_position or ckpt_id in hint_consumed
                ):
                    # Still unhinted: s tracks the live no-hint ceiling; p
                    # is the frozen state_ts.
                    return FragmentCost(p=ts, s=no_hint, barrier=False)
                distance = queue_distance(ckpt_id)
            else:
                ts = instance_state_ts(
                    record, level, flush_estimate, allow_pinned=allow_pinned, inst=inst
                )
                distance = queue_distance(ckpt_id)
            cost = fragment_cost(ts, distance, no_hint)
            if cost.barrier:
                cache[ckpt_id] = (inst, version, ts, -1, cost)
            elif distance is not None:
                cache[ckpt_id] = (inst, version, ts, epoch, cost)
            else:
                cache[ckpt_id] = (inst, version, ts, -2, None)
            return cost

        return cost_of

    # -- reservation -----------------------------------------------------------
    def reserve(
        self,
        record: "CheckpointRecord",
        initial_state: CkptState,
        blocking: bool = True,
        allow_pinned: bool = False,
        speculative: bool = False,
    ) -> Optional[float]:
        """Claim space for ``record`` and create its instance on this tier.

        Blocks (releasing the monitor while waiting) until space can be
        made; returns the nominal seconds spent waiting for evictions (the
        figure callers charge to blocking-time metrics).  With
        ``blocking=False`` returns ``None`` instead of waiting — only
        windows that are evictable *right now* are used.  With
        ``allow_pinned=True`` (demand restores deviating from the hints)
        prefetched-but-unconsumed instances may be force-evicted, provided a
        copy survives on a slower tier.  ``speculative=True`` marks the new
        instance as a predicted (revocable) staging — see
        :attr:`~repro.core.lifecycle.Instance.speculative`.

        Space is claimed at the record's *stored* size for this tier: the
        physical (reduced) size at or below the reduction site, the logical
        size otherwise — identical to ``nominal_size`` when reduction is
        off.
        """
        size = record.stored_size(self.level)
        if size > self.table.capacity:
            raise CapacityError(
                f"checkpoint {record.ckpt_id} ({size}B) exceeds cache "
                f"{self.name!r} capacity {self.table.capacity}B"
            )
        min_offset, region_limit = self._region_for(initial_state)
        if region_limit is not None and size > region_limit - min_offset:
            raise CapacityError(
                f"checkpoint {record.ckpt_id} ({size}B) exceeds the "
                f"{initial_state.value} partition of cache {self.name!r}"
            )
        wait_started: Optional[float] = None
        with self.monitor:
            while True:
                if self.table.contains(record.ckpt_id):
                    raise AllocationError(
                        f"checkpoint {record.ckpt_id} already cached in {self.name!r}"
                    )
                usable = self._limit()
                limit = usable
                if region_limit is not None:
                    limit = region_limit if limit is None else min(limit, region_limit)
                offset = self.table.find_gap(size, limit, min_offset)
                if offset is None:
                    offset = self._try_evict_window(size, limit, allow_pinned, min_offset)
                if offset is not None:
                    now = self.clock.now()
                    inst = record.instance(self.level)
                    inst.tracker = self._make_tracker(record)
                    inst.speculative = speculative
                    inst.transition(initial_state, now)
                    self.table.insert(record, size, offset, now)
                    waited = 0.0
                    if wait_started is not None:
                        waited = self.clock.now() - wait_started
                        self.eviction_wait_time += waited
                        self._m_wait.observe(waited)
                    self._observe_occupancy()
                    self.monitor.notify_all()
                    return waited
                if not blocking:
                    return None
                if wait_started is None:
                    wait_started = self.clock.now()
                # Notification-driven re-evaluation: every transition,
                # flush-pending/read-pinned flip, hint change and eviction
                # notifies the monitor, so the timeout is only a coarse
                # missed-wakeup guard — except while a lazily-pinned arena
                # is still ramping up (its capacity grows with the clock
                # and notifies nobody), where a short poll remains.
                ramping = usable is not None and usable < self.table.capacity  # == ramping()
                self.monitor.wait(
                    virtual_timeout=self.RAMP_POLL_INTERVAL
                    if ramping
                    else self.MISSED_WAKEUP_GUARD
                )

    def _region_for(self, initial_state: CkptState):
        """Placement region for a reservation kind (split-cache ablation)."""
        if self.write_boundary is None:
            return 0, None
        if initial_state is CkptState.READ_IN_PROGRESS:
            return self.write_boundary, None
        return 0, self.write_boundary

    def _try_evict_window(
        self, size: int, limit: Optional[int], allow_pinned: bool, min_offset: int = 0
    ) -> Optional[int]:
        """Select the best window; evict it if ready.  Monitor held.

        Returns the gap offset on success, ``None`` if the caller must wait
        (members not yet evictable or no admissible window).
        """
        fragments = self.table.fragments()
        window = self.policy.select(
            fragments, size, self._cost_fn(allow_pinned), limit, min_offset
        )
        if window is None:
            return None
        if not self._window_ready(window, allow_pinned):
            return None
        if self.telemetry.bus.enabled:
            members = [
                {
                    "ckpt": frag.record.ckpt_id,
                    "bytes": frag.size,
                    "state": frag.record.peek(self.level).state.value
                    if frag.record.peek(self.level) is not None
                    else None,
                }
                for frag in fragments[window.start : window.end]
                if not frag.is_gap
            ]
            self.telemetry.bus.instant(
                "evict-window",
                self.name,
                p_score=window.p_score,
                s_score=window.s_score,
                offset=window.offset,
                bytes=window.size,
                incoming_bytes=size,
                forced=allow_pinned,
                members=members,
            )
        self._evict_window(window, allow_pinned)
        return self.table.find_gap(size, limit, min_offset)

    def _window_ready(self, window: Window, allow_pinned: bool) -> bool:
        for frag in self.table.fragments()[window.start : window.end]:
            if frag.is_gap:
                continue
            inst = frag.record.peek(self.level)
            if inst is None:
                continue
            if inst.read_pinned:
                return False  # an in-flight promotion reads this extent
            if inst.evictable and not inst.flush_pending:
                continue
            if inst.state == CkptState.READ_COMPLETE and (
                allow_pinned or (inst.speculative and not inst.flush_pending)
            ):
                # Forced demand eviction, or a revocable speculative
                # staging (never pinned — a wrong prediction would hold
                # the extent forever and starve the flush path).
                continue
            return False
        return True

    def _evict_window(self, window: Window, allow_pinned: bool) -> None:
        victims = [
            frag.record
            for frag in self.table.fragments()[window.start : window.end]
            if not frag.is_gap
        ]
        for record in victims:
            self._evict_record(record, force=allow_pinned)

    def _evict_record(self, record: "CheckpointRecord", force: bool) -> None:
        inst = record.peek(self.level)
        assert inst is not None, f"evicting {record.ckpt_id} with no instance"
        revocable = inst.speculative and inst.state == CkptState.READ_COMPLETE
        forced = inst.pinned and not revocable
        if forced and not force:
            raise AllocationError(
                f"attempt to evict pinned checkpoint {record.ckpt_id} from {self.name!r}"
            )
        if not record.consumed and not record.has_copy_besides(self.level):
            raise AllocationError(
                f"eviction of checkpoint {record.ckpt_id} from {self.name!r} "
                "would destroy its only copy"
            )
        self.table.remove(record.ckpt_id)
        self._forget_instance(record, inst)
        record.drop_instance(self.level)
        self.evictions += 1
        self._m_evictions.inc()
        if forced:
            self.forced_evictions += 1
            self._m_forced.inc()
        self.telemetry.bus.instant(
            "evict",
            self.name,
            op_id=record.op.op_id if record.op is not None else None,
            ckpt=record.ckpt_id,
            bytes=record.stored_size(self.level),
            forced=forced,
        )
        if self.on_evict is not None:
            self.on_evict(record, self.level)

    def evict(self, record: "CheckpointRecord") -> None:
        """Explicitly evict (engine-driven, e.g. discard-after-consume)."""
        with self.monitor:
            if self.table.contains(record.ckpt_id):
                self._evict_record(record, force=True)
                self._observe_occupancy()
                self.monitor.notify_all()

    def release(self, record: "CheckpointRecord") -> None:
        """Drop a record's extent and instance without eviction accounting.

        The single teardown path for failed or abandoned reservations
        (vanished promotion sources, cancelled flush legs): it keeps the
        pinned-byte total and the cost cache consistent with the table,
        which direct ``table.remove`` + ``drop_instance`` calls would not.
        Tolerates partially-created state; notifies waiters.
        """
        with self.monitor:
            if self.table.contains(record.ckpt_id):
                self.table.remove(record.ckpt_id)
            inst = record.peek(self.level)
            if inst is not None:
                self._forget_instance(record, inst)
                record.drop_instance(self.level)
            if self.on_evict is not None:
                self.on_evict(record, self.level)
            self._observe_occupancy()
            self.monitor.notify_all()

    # -- payload I/O -------------------------------------------------------------
    def read_payload(self, record: "CheckpointRecord", copy: bool = True) -> np.ndarray:
        """The record's payload bytes.  With ``copy=False`` returns a
        read-only view into the arena — only valid while the extent cannot
        be reclaimed (a pinned instance, or ``read_pinned`` held)."""
        with self.monitor:
            offset = self.offset_of(record)
        return self.arena.read(offset, record.stored_size(self.level), copy=copy)

    def write_payload(self, record: "CheckpointRecord", payload: np.ndarray) -> None:
        with self.monitor:
            offset = self.offset_of(record)
        self.arena.write(offset, payload)

    def _observe_occupancy(self) -> None:
        """Monitor held: refresh the occupancy/fragmentation gauges."""
        self._m_occupancy.set(self.table.used_bytes / self.table.capacity)
        self._m_fragmentation.set(self.fragmentation())

    # -- stats ----------------------------------------------------------------------
    def occupancy(self) -> float:
        with self.monitor:
            return self.table.used_bytes / self.table.capacity

    def fragmentation(self) -> float:
        """Share of free space unusable as one contiguous gap.

        ``0`` = all free bytes form one gap (or the cache is full);
        approaching ``1`` = free space is shattered into small gaps.
        Takes the monitor (re-entrant), so it is safe to call from any
        thread; the table's gap index makes it O(1).
        """
        with self.monitor:
            free = self.table.free_bytes
            if free == 0:
                return 0.0
            return 1.0 - self.table.largest_gap() / free

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheBuffer({self.name!r}, level={self.level.name})"
