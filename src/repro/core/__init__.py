"""The paper's contribution: the "Score" checkpoint caching runtime.

Submodules:

* :mod:`~repro.core.sync` — the engine-wide monitor all state shares.
* :mod:`~repro.core.lifecycle` — the Fig.-1 finite-state machine.
* :mod:`~repro.core.catalog` — checkpoint records and per-tier instances.
* :mod:`~repro.core.alloctable` — fragment table of a contiguous cache arena.
* :mod:`~repro.core.restore_queue` — restore-order hints, prefetch distance.
* :mod:`~repro.core.predict` — ``predict_evictable`` time estimation.
* :mod:`~repro.core.scoring` — Algorithm 1 (gap-aware sliding window).
* :mod:`~repro.core.cache` — CacheBuffer: arena + table + eviction + waits.
* :mod:`~repro.core.flusher` — asynchronous D2H / H2F flush cascade.
* :mod:`~repro.core.prefetcher` — asynchronous multi-tier prefetch thread.
* :mod:`~repro.core.engine` — one process's engine.
* :mod:`~repro.core.client` — the VELOC-like public API.
"""

from repro.core.lifecycle import CkptState
from repro.core.engine import ScoreEngine
from repro.core.client import Client

__all__ = ["CkptState", "ScoreEngine", "Client"]
