"""Per-checkpoint chunk pipeline for the streamed flush/prefetch cascades.

One :class:`ChunkPipeline` coordinates the stages of a single checkpoint's
streamed transfer (``d2h`` → ``h2f`` → ``f2p``, or ``read`` → ``h2d`` on
the promote path).  Every stage moves the same number of chunks (stage
byte counts may differ under reduction — chunk *boundaries* are per
stage); a consumer stage charges chunk ``i`` on its link only once the
upstream stage has published chunk ``i``, and a producer stage parks once
it runs :attr:`ring` chunks ahead of its slowest consumer — the bounded
ring buffer providing backpressure.

The pipeline is pure coordination: payload bytes are still written whole
at each stage's commit (the simulator charges transfer *time* per chunk,
it does not fragment the numpy payloads), so a torn stream leaves nothing
behind on a durable tier — chunk streaming cannot violate the manifest
journal's crash consistency.

Stall time spent in :meth:`await_upstream` / :meth:`throttle` is tallied
per stage, and an interval integrator tracks how long ≥2 stages were
simultaneously mid-chunk — the ``flush.stream.overlap_ratio`` headline
metric (1.0 = perfectly pipelined, → 0 = store-and-forward).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.clock import VirtualClock


def plan_chunks(nbytes: int, chunk_bytes: int, min_chunks: int) -> Optional[List[int]]:
    """Split ``nbytes`` into near-equal chunk sizes, or ``None`` when the
    transfer is too small to stream (fewer than ``min_chunks`` chunks)."""
    if nbytes <= 0 or chunk_bytes <= 0:
        return None
    count = (nbytes + chunk_bytes - 1) // chunk_bytes
    if count < min_chunks:
        return None
    base, rem = divmod(nbytes, count)
    return [base + (1 if i < rem else 0) for i in range(count)]


def chunk_sizes_for(nbytes: int, count: int) -> List[int]:
    """``nbytes`` split into exactly ``count`` near-equal chunks.

    Stages of one pipeline share a chunk *count* (so completion events
    align) while moving different byte totals under reduction.
    """
    base, rem = divmod(nbytes, count)
    return [base + (1 if i < rem else 0) for i in range(count)]


class StageFailed(Exception):
    """Internal signal: an upstream stage failed or was abandoned."""


class ChunkPipeline:
    """Completion-event fabric between the streamed stages of one checkpoint.

    Stages are registered up front with :meth:`add_stage` (order matters:
    each stage's upstream is the previously added one).  A stage that
    aborts calls :meth:`fail`, which releases every waiter; a stage that
    is skipped entirely (e.g. the PFS hop after a reroute already landed
    the blob there) calls :meth:`skip` so downstream consumers return
    quietly.
    """

    #: wall-clock re-check period for waits, seconds.  Waits are woken by
    #: publish/fail/skip notifications; the timeout is only a
    #: missed-wakeup/crash-detection guard, not a polling interval.
    _WAIT_TICK = 0.05

    def __init__(
        self,
        ckpt_id: int,
        chunks: int,
        ring: int,
        clock: VirtualClock,
        cancelled: Optional[threading.Event] = None,
        crashed: Optional[threading.Event] = None,
    ) -> None:
        self.ckpt_id = ckpt_id
        self.chunks = chunks
        self.ring = ring
        self.clock = clock
        self.cancelled = cancelled
        self.crashed = crashed
        self._cond = threading.Condition()
        self._done: Dict[str, int] = {}
        self._finished: Dict[str, bool] = {}
        self._failed: Dict[str, bool] = {}
        self._skipped: Dict[str, bool] = {}
        self._order: List[str] = []
        #: inter-stage payload handoff: the producer stage parks the
        #: post-encode physical payload here so consumers need not wait
        #: for the whole upstream copy to land before starting work.
        self.payload = None
        #: where the durable put landed ("ssd" / "pfs" / None), set by the
        #: durable stage before it finishes.
        self.ssd_outcome: Optional[str] = None
        #: per-stage nominal seconds spent stalled in await/throttle.
        self.stall_s: Dict[str, float] = {}
        #: chunk-completion callbacks (event-driven handoff for metrics
        #: and tests); fired outside the lock, after publish.
        self._chunk_callbacks: List[Callable[[str, int], None]] = []
        self._workers = 0
        # -- overlap integrator (virtual time, ≥2 stages mid-chunk) --
        self._active = 0
        self._active_since: Optional[float] = None
        self._overlap_since: Optional[float] = None
        self.active_s = 0.0
        self.overlap_s = 0.0

    # -- worker refcount ----------------------------------------------------
    def retain(self, workers: int) -> None:
        """Declare how many stage workers will run this pipeline."""
        with self._cond:
            self._workers = workers

    def release(self) -> bool:
        """One worker exited; ``True`` for the last one out (it owns the
        pipeline's metrics roll-up)."""
        with self._cond:
            self._workers -= 1
            return self._workers == 0

    # -- registration -------------------------------------------------------
    def add_stage(self, name: str) -> None:
        with self._cond:
            if name in self._done:
                raise ValueError(f"stage {name!r} already registered")
            self._order.append(name)
            self._done[name] = 0
            self._finished[name] = False
            self._failed[name] = False
            self._skipped[name] = False
            self.stall_s[name] = 0.0

    def upstream_of(self, name: str) -> Optional[str]:
        idx = self._order.index(name)
        return self._order[idx - 1] if idx > 0 else None

    def downstream_of(self, name: str) -> Optional[str]:
        idx = self._order.index(name)
        return self._order[idx + 1] if idx + 1 < len(self._order) else None

    def add_chunk_callback(self, fn: Callable[[str, int], None]) -> None:
        with self._cond:
            self._chunk_callbacks.append(fn)

    # -- interruption checks ------------------------------------------------
    def _interrupted(self) -> bool:
        return (self.cancelled is not None and self.cancelled.is_set()) or (
            self.crashed is not None and self.crashed.is_set()
        )

    # -- stage lifecycle ----------------------------------------------------
    def publish(self, stage: str, chunk: int) -> None:
        """Record chunk ``chunk`` of ``stage`` complete; wake all waiters."""
        with self._cond:
            if chunk + 1 > self._done[stage]:
                self._done[stage] = chunk + 1
            self._cond.notify_all()
            callbacks = list(self._chunk_callbacks)
        for fn in callbacks:
            fn(stage, chunk)

    def finish(self, stage: str) -> None:
        """The stage's commit is complete (its epilogue has run)."""
        with self._cond:
            self._finished[stage] = True
            self._done[stage] = self.chunks
            self._cond.notify_all()

    def fail(self, stage: str) -> None:
        """The stage aborted; downstream waiters unblock and abandon."""
        with self._cond:
            if self._finished[stage]:
                return  # completed before the failure signal: keep the result
            self._failed[stage] = True
            self._cond.notify_all()

    def skip(self, stage: str) -> None:
        """The stage will not run (e.g. PFS hop after a reroute landed
        the blob there already); downstream consumers return quietly."""
        with self._cond:
            self._skipped[stage] = True
            self._done[stage] = self.chunks
            self._cond.notify_all()

    def failed(self, stage: str) -> bool:
        with self._cond:
            return self._failed[stage]

    def skipped(self, stage: str) -> bool:
        with self._cond:
            return self._skipped[stage]

    def finished(self, stage: str) -> bool:
        with self._cond:
            return self._finished[stage]

    # -- waits --------------------------------------------------------------
    def _stalled_wait(self, stage: str, ready) -> bool:
        """Wait until ``ready()`` (lock held inside), tallying stall time.

        Returns ``False`` when the wait was interrupted (upstream failure,
        cancellation, injected crash) — the caller abandons its stage.
        """
        started = self.clock.now()
        try:
            with self._cond:
                while True:
                    status = ready()
                    if status is not None:
                        return status
                    if self._interrupted():
                        return False
                    self._cond.wait(self._WAIT_TICK)
        finally:
            waited = self.clock.now() - started
            if waited > 0:
                with self._cond:
                    self.stall_s[stage] += waited

    def await_upstream(self, stage: str, chunk: int) -> bool:
        """Block until the upstream stage published chunk ``chunk``.

        ``True`` once available; ``False`` when the upstream failed (the
        chunk will never arrive) or the pipeline was interrupted.
        """
        upstream = self.upstream_of(stage)
        if upstream is None:
            return True

        def ready():
            if self._done[upstream] > chunk:
                return True
            if self._failed[upstream]:
                return False
            return None

        return self._stalled_wait(stage, ready)

    def await_finished(self, stage: str, other: str) -> bool:
        """Block until ``other``'s commit completed (``False`` on failure)."""

        def ready():
            if self._finished[other] or self._skipped[other]:
                return True
            if self._failed[other]:
                return False
            return None

        return self._stalled_wait(stage, ready)

    def throttle(self, stage: str, chunk: int) -> bool:
        """Backpressure: park until the downstream consumer is within
        :attr:`ring` chunks of ``chunk``.  A failed/skipped downstream
        releases the producer (``True`` — the producer keeps going)."""
        downstream = self.downstream_of(stage)
        if downstream is None:
            return True

        def ready():
            if self._failed[downstream] or self._skipped[downstream]:
                return True
            if chunk - self._done[downstream] < self.ring:
                return True
            return None

        return self._stalled_wait(stage, ready)

    # -- occupancy accounting ----------------------------------------------
    def enter_chunk(self) -> None:
        """A stage starts charging one chunk on its link."""
        now = self.clock.now()
        with self._cond:
            self._active += 1
            if self._active == 1:
                self._active_since = now
            elif self._active == 2:
                self._overlap_since = now

    def exit_chunk(self) -> None:
        """A stage finished charging one chunk."""
        now = self.clock.now()
        with self._cond:
            self._active -= 1
            if self._active == 1 and self._overlap_since is not None:
                self.overlap_s += now - self._overlap_since
                self._overlap_since = None
            if self._active == 0 and self._active_since is not None:
                self.active_s += now - self._active_since
                self._active_since = None
