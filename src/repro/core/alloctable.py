"""Allocation table of one contiguous cache arena.

The arena ``[0, capacity)`` is tiled by an ordered sequence of *fragments*,
each either a checkpoint extent or a gap.  This is the table ``A`` of
Algorithm 1: eviction slides windows over exactly this sequence.

All per-operation metadata is maintained incrementally so the hot paths
stay off the transfer critical path:

* ``used_bytes`` / ``free_bytes`` are counters, not scans;
* ``_index_at`` bisects a mirrored starts list instead of rebuilding it;
* gaps are indexed twice — by offset (first-fit iteration skips checkpoint
  fragments entirely) and by size (a sorted multiset, so ``largest_gap``
  is O(1) and ``find_gap`` rejects impossible requests without scanning).

Invariants (property-tested):

* fragments are sorted by offset, non-overlapping, and tile the arena
  completely (``sum(sizes) == capacity``);
* no two adjacent gaps (gaps coalesce on removal);
* every checkpoint appears at most once;
* the starts mirror and both gap indexes agree with the fragment list.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import AllocationError, CapacityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord


class Fragment:
    """One extent of the arena: a checkpoint or a gap (``record is None``)."""

    __slots__ = ("offset", "size", "record", "inserted_at", "last_access")

    def __init__(
        self,
        offset: int,
        size: int,
        record: Optional["CheckpointRecord"] = None,
        inserted_at: float = 0.0,
    ) -> None:
        self.offset = offset
        self.size = size
        self.record = record
        self.inserted_at = inserted_at
        self.last_access = inserted_at

    @property
    def is_gap(self) -> bool:
        return self.record is None

    @property
    def end(self) -> int:
        return self.offset + self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        what = "gap" if self.is_gap else f"ckpt {self.record.ckpt_id}"
        return f"Fragment([{self.offset}, {self.end}), {what})"


class AllocTable:
    """Ordered fragment table tiling ``[0, capacity)``."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        gap = Fragment(0, capacity)
        self._fragments: List[Fragment] = [gap]
        self._by_ckpt = {}
        # Incremental metadata (kept in lockstep with _fragments):
        self._starts: List[int] = [0]  # fragment offsets, for _index_at
        self._used_bytes = 0
        self._gap_starts: List[int] = [0]  # gap offsets, sorted
        self._gap_by_start: Dict[int, Fragment] = {0: gap}
        self._gap_sizes: List[int] = [capacity]  # gap sizes, sorted multiset

    # -- queries -----------------------------------------------------------
    def fragments(self) -> List[Fragment]:
        """The ordered fragment list (do not mutate)."""
        return self._fragments

    def __len__(self) -> int:
        return len(self._fragments)

    def lookup(self, ckpt_id: int) -> Fragment:
        frag = self._by_ckpt.get(ckpt_id)
        if frag is None:
            raise AllocationError(f"checkpoint {ckpt_id} not in this table")
        return frag

    def contains(self, ckpt_id: int) -> bool:
        return ckpt_id in self._by_ckpt

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used_bytes

    def largest_gap(self, limit: Optional[int] = None) -> int:
        if limit is None:
            return self._gap_sizes[-1] if self._gap_sizes else 0
        best = 0
        hi = bisect.bisect_left(self._gap_starts, limit)
        for start in self._gap_starts[:hi]:
            frag = self._gap_by_start[start]
            best = max(best, min(frag.size, limit - frag.offset))
        return best

    def checkpoint_count(self) -> int:
        return len(self._by_ckpt)

    def find_gap(
        self, size: int, limit: Optional[int] = None, min_offset: int = 0
    ) -> Optional[int]:
        """First-fit: the placement offset of the first gap holding ``size``
        bytes within ``[min_offset, limit)``.

        ``limit`` restricts placement to ``offset + size <= limit``;
        ``min_offset`` to ``offset >= min_offset`` (used by the split
        flush/prefetch cache ablation and by lazily-pinned host caches).
        """
        if size <= 0:
            raise AllocationError(f"size must be positive: {size}")
        # Necessary condition regardless of the placement constraints: some
        # gap must be at least `size` bytes.  This turns the common
        # full-cache retry into an O(1) rejection.
        if not self._gap_sizes or self._gap_sizes[-1] < size:
            return None
        # First gap whose range can intersect [min_offset, ...): the one
        # containing min_offset, or the first one after it.
        lo = bisect.bisect_right(self._gap_starts, min_offset)
        if lo > 0 and self._gap_by_start[self._gap_starts[lo - 1]].end > min_offset:
            lo -= 1
        for start in self._gap_starts[lo:]:
            if limit is not None and start + size > limit:
                break  # later gaps start even further right
            frag = self._gap_by_start[start]
            place = max(frag.offset, min_offset)
            if frag.end - place < size:
                continue
            if limit is None or place + size <= limit:
                return place
        return None

    # -- gap index maintenance ----------------------------------------------
    def _gap_index_add(self, frag: Fragment) -> None:
        bisect.insort(self._gap_starts, frag.offset)
        self._gap_by_start[frag.offset] = frag
        bisect.insort(self._gap_sizes, frag.size)

    def _gap_index_discard(self, frag: Fragment) -> None:
        idx = bisect.bisect_left(self._gap_starts, frag.offset)
        del self._gap_starts[idx]
        del self._gap_by_start[frag.offset]
        idx = bisect.bisect_left(self._gap_sizes, frag.size)
        del self._gap_sizes[idx]

    # -- mutation ------------------------------------------------------------
    def _index_at(self, offset: int) -> int:
        """Index of the fragment containing ``offset``."""
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx < 0 or offset >= self._fragments[idx].end:
            raise AllocationError(f"offset {offset} outside arena [0, {self.capacity})")
        return idx

    def insert(
        self, record: "CheckpointRecord", size: int, offset: int, now: float = 0.0
    ) -> Fragment:
        """Carve a checkpoint fragment out of the gap containing the range."""
        if size <= 0:
            raise AllocationError(f"size must be positive: {size}")
        if size > self.capacity:
            raise CapacityError(
                f"checkpoint of {size} bytes can never fit arena of {self.capacity}"
            )
        if record.ckpt_id in self._by_ckpt:
            raise AllocationError(f"checkpoint {record.ckpt_id} already in table")
        idx = self._index_at(offset)
        gap = self._fragments[idx]
        if not gap.is_gap or offset + size > gap.end:
            raise AllocationError(
                f"range [{offset}, {offset + size}) not inside a free gap"
            )
        pieces: List[Fragment] = []
        if offset > gap.offset:
            pieces.append(Fragment(gap.offset, offset - gap.offset))
        frag = Fragment(offset, size, record, inserted_at=now)
        pieces.append(frag)
        if offset + size < gap.end:
            pieces.append(Fragment(offset + size, gap.end - (offset + size)))
        self._fragments[idx : idx + 1] = pieces
        self._starts[idx : idx + 1] = [p.offset for p in pieces]
        self._gap_index_discard(gap)
        for piece in pieces:
            if piece.is_gap:
                self._gap_index_add(piece)
        self._used_bytes += size
        self._by_ckpt[record.ckpt_id] = frag
        return frag

    def remove(self, ckpt_id: int) -> int:
        """Turn a checkpoint fragment into a gap (coalescing); return size."""
        frag = self._by_ckpt.pop(ckpt_id, None)
        if frag is None:
            raise AllocationError(f"checkpoint {ckpt_id} not in this table")
        idx = self._index_at(frag.offset)
        assert self._fragments[idx] is frag
        size = frag.size
        start, end = frag.offset, frag.end
        lo, hi = idx, idx + 1
        if lo > 0 and self._fragments[lo - 1].is_gap:
            start = self._fragments[lo - 1].offset
            self._gap_index_discard(self._fragments[lo - 1])
            lo -= 1
        if hi < len(self._fragments) and self._fragments[hi].is_gap:
            end = self._fragments[hi].end
            self._gap_index_discard(self._fragments[hi])
            hi += 1
        merged = Fragment(start, end - start)
        self._fragments[lo:hi] = [merged]
        self._starts[lo:hi] = [start]
        self._gap_index_add(merged)
        self._used_bytes -= size
        return size

    def touch(self, ckpt_id: int, now: float) -> None:
        """Record an access (LRU ablation bookkeeping)."""
        self.lookup(ckpt_id).last_access = now

    # -- invariant check (used by tests) -------------------------------------
    def check_invariants(self) -> None:
        frags = self._fragments
        if not frags:
            raise AssertionError("empty fragment list")
        if frags[0].offset != 0 or frags[-1].end != self.capacity:
            raise AssertionError("fragments do not span the arena")
        for a, b in zip(frags, frags[1:]):
            if a.end != b.offset:
                raise AssertionError(f"gap/overlap between {a} and {b}")
            if a.is_gap and b.is_gap:
                raise AssertionError(f"adjacent gaps {a}, {b}")
        ids = [f.record.ckpt_id for f in frags if not f.is_gap]
        if len(ids) != len(set(ids)):
            raise AssertionError("duplicate checkpoint in table")
        if set(ids) != set(self._by_ckpt):
            raise AssertionError("index out of sync with fragment list")
        if self._starts != [f.offset for f in frags]:
            raise AssertionError("starts mirror out of sync with fragment list")
        if self._used_bytes != sum(f.size for f in frags if not f.is_gap):
            raise AssertionError(
                f"used_bytes counter {self._used_bytes} != scanned total"
            )
        gaps = [f for f in frags if f.is_gap]
        if self._gap_starts != [g.offset for g in gaps]:
            raise AssertionError("gap-offset index out of sync")
        if {o: g for o, g in zip(self._gap_starts, gaps)} != self._gap_by_start or any(
            self._gap_by_start[g.offset] is not g for g in gaps
        ):
            raise AssertionError("gap-by-start index out of sync")
        if self._gap_sizes != sorted(g.size for g in gaps):
            raise AssertionError("gap-size multiset out of sync")
