"""Allocation table of one contiguous cache arena.

The arena ``[0, capacity)`` is tiled by an ordered sequence of *fragments*,
each either a checkpoint extent or a gap.  This is the table ``A`` of
Algorithm 1: eviction slides windows over exactly this sequence.

Invariants (property-tested):

* fragments are sorted by offset, non-overlapping, and tile the arena
  completely (``sum(sizes) == capacity``);
* no two adjacent gaps (gaps coalesce on removal);
* every checkpoint appears at most once.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, TYPE_CHECKING

from repro.errors import AllocationError, CapacityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord


class Fragment:
    """One extent of the arena: a checkpoint or a gap (``record is None``)."""

    __slots__ = ("offset", "size", "record", "inserted_at", "last_access")

    def __init__(
        self,
        offset: int,
        size: int,
        record: Optional["CheckpointRecord"] = None,
        inserted_at: float = 0.0,
    ) -> None:
        self.offset = offset
        self.size = size
        self.record = record
        self.inserted_at = inserted_at
        self.last_access = inserted_at

    @property
    def is_gap(self) -> bool:
        return self.record is None

    @property
    def end(self) -> int:
        return self.offset + self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        what = "gap" if self.is_gap else f"ckpt {self.record.ckpt_id}"
        return f"Fragment([{self.offset}, {self.end}), {what})"


class AllocTable:
    """Ordered fragment table tiling ``[0, capacity)``."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._fragments: List[Fragment] = [Fragment(0, capacity)]
        self._by_ckpt = {}

    # -- queries -----------------------------------------------------------
    def fragments(self) -> List[Fragment]:
        """The ordered fragment list (do not mutate)."""
        return self._fragments

    def __len__(self) -> int:
        return len(self._fragments)

    def lookup(self, ckpt_id: int) -> Fragment:
        frag = self._by_ckpt.get(ckpt_id)
        if frag is None:
            raise AllocationError(f"checkpoint {ckpt_id} not in this table")
        return frag

    def contains(self, ckpt_id: int) -> bool:
        return ckpt_id in self._by_ckpt

    @property
    def used_bytes(self) -> int:
        return sum(f.size for f in self._fragments if not f.is_gap)

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def largest_gap(self, limit: Optional[int] = None) -> int:
        best = 0
        for frag in self._fragments:
            if frag.is_gap:
                size = frag.size
                if limit is not None:
                    size = min(size, max(0, limit - frag.offset))
                best = max(best, size)
        return best

    def checkpoint_count(self) -> int:
        return len(self._by_ckpt)

    def find_gap(
        self, size: int, limit: Optional[int] = None, min_offset: int = 0
    ) -> Optional[int]:
        """First-fit: the placement offset of the first gap holding ``size``
        bytes within ``[min_offset, limit)``.

        ``limit`` restricts placement to ``offset + size <= limit``;
        ``min_offset`` to ``offset >= min_offset`` (used by the split
        flush/prefetch cache ablation and by lazily-pinned host caches).
        """
        if size <= 0:
            raise AllocationError(f"size must be positive: {size}")
        for frag in self._fragments:
            if not frag.is_gap:
                continue
            place = max(frag.offset, min_offset)
            if frag.end - place < size:
                continue
            if limit is None or place + size <= limit:
                return place
        return None

    # -- mutation ------------------------------------------------------------
    def _index_at(self, offset: int) -> int:
        """Index of the fragment containing ``offset``."""
        starts = [f.offset for f in self._fragments]
        idx = bisect.bisect_right(starts, offset) - 1
        if idx < 0 or offset >= self._fragments[idx].end:
            raise AllocationError(f"offset {offset} outside arena [0, {self.capacity})")
        return idx

    def insert(
        self, record: "CheckpointRecord", size: int, offset: int, now: float = 0.0
    ) -> Fragment:
        """Carve a checkpoint fragment out of the gap containing the range."""
        if size <= 0:
            raise AllocationError(f"size must be positive: {size}")
        if size > self.capacity:
            raise CapacityError(
                f"checkpoint of {size} bytes can never fit arena of {self.capacity}"
            )
        if record.ckpt_id in self._by_ckpt:
            raise AllocationError(f"checkpoint {record.ckpt_id} already in table")
        idx = self._index_at(offset)
        gap = self._fragments[idx]
        if not gap.is_gap or offset + size > gap.end:
            raise AllocationError(
                f"range [{offset}, {offset + size}) not inside a free gap"
            )
        pieces: List[Fragment] = []
        if offset > gap.offset:
            pieces.append(Fragment(gap.offset, offset - gap.offset))
        frag = Fragment(offset, size, record, inserted_at=now)
        pieces.append(frag)
        if offset + size < gap.end:
            pieces.append(Fragment(offset + size, gap.end - (offset + size)))
        self._fragments[idx : idx + 1] = pieces
        self._by_ckpt[record.ckpt_id] = frag
        return frag

    def remove(self, ckpt_id: int) -> int:
        """Turn a checkpoint fragment into a gap (coalescing); return size."""
        frag = self._by_ckpt.pop(ckpt_id, None)
        if frag is None:
            raise AllocationError(f"checkpoint {ckpt_id} not in this table")
        idx = self._index_at(frag.offset)
        assert self._fragments[idx] is frag
        size = frag.size
        start, end = frag.offset, frag.end
        lo, hi = idx, idx + 1
        if lo > 0 and self._fragments[lo - 1].is_gap:
            start = self._fragments[lo - 1].offset
            lo -= 1
        if hi < len(self._fragments) and self._fragments[hi].is_gap:
            end = self._fragments[hi].end
            hi += 1
        self._fragments[lo:hi] = [Fragment(start, end - start)]
        return size

    def touch(self, ckpt_id: int, now: float) -> None:
        """Record an access (LRU ablation bookkeeping)."""
        self.lookup(ckpt_id).last_access = now

    # -- invariant check (used by tests) -------------------------------------
    def check_invariants(self) -> None:
        frags = self._fragments
        if not frags:
            raise AssertionError("empty fragment list")
        if frags[0].offset != 0 or frags[-1].end != self.capacity:
            raise AssertionError("fragments do not span the arena")
        for a, b in zip(frags, frags[1:]):
            if a.end != b.offset:
                raise AssertionError(f"gap/overlap between {a} and {b}")
            if a.is_gap and b.is_gap:
                raise AssertionError(f"adjacent gaps {a}, {b}")
        ids = [f.record.ckpt_id for f in frags if not f.is_gap]
        if len(ids) != len(set(ids)):
            raise AssertionError("duplicate checkpoint in table")
        if set(ids) != set(self._by_ckpt):
            raise AssertionError("index out of sync with fragment list")
