"""Asynchronous multi-level flushing (T_D2H and T_H2F of Section 4.3.1).

Each process runs two dedicated flush streams:

* ``flush-d2h`` — GPU cache → pinned host cache, over the (shared) PCIe
  link;
* ``flush-h2f`` — host cache → node-local SSD (and optionally onward to the
  parallel file system when persistence beyond the node is requested).

The cascade follows the life cycle: a tier's instance becomes ``FLUSHED``
(evictable) only once the next slower tier holds a complete copy.  The
flusher snapshots the payload out of the source arena *before* the
throttled transfer, so an instance that becomes consumable mid-flight can be
evicted without corrupting the flush (``Instance.flush_pending`` guards the
snapshot window).

Problem condition (5): flushes of discarded checkpoints are abandoned —
``record.cancel_flush`` is checked chunk-wise inside the link transfer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.core.lifecycle import CkptState
from repro.core.streaming import ChunkPipeline, chunk_sizes_for, plan_chunks
from repro.errors import (
    AllocationError,
    ReproError,
    TransferError,
    TransientTransferError,
)
from repro.log import get_logger
from repro.metrics.recorder import OpEvent, OpKind
from repro.sched.request import TransferClass
from repro.telemetry.causal import (
    CAT_REDUCE,
    CAT_REROUTE,
    CAT_RESERVE,
    CAT_RETRY,
    CAT_TRANSFER,
    NULL_OP,
)
from repro.tiers.base import TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord
    from repro.core.engine import ScoreEngine

log = get_logger(__name__)


class Flusher:
    """The flush cascade of one engine."""

    def __init__(self, engine: "ScoreEngine") -> None:
        self.engine = engine
        self.d2h_stream = engine.device.create_stream("flush-d2h")
        self.h2f_stream = engine.device.create_stream("flush-h2f")
        self.f2p_stream = (
            engine.device.create_stream("flush-f2p") if engine.flush_to_pfs else None
        )
        # Streamed-only companion to f2p: the SSD read-back runs as its own
        # pipeline stage so the read of chunk i+1 overlaps the PFS write of
        # chunk i (store-and-forward f2p serialises the two legs).
        self.f2r_stream = (
            engine.device.create_stream("flush-f2r")
            if engine.streaming and engine.flush_to_pfs
            else None
        )
        self.repl_stream = (
            engine.device.create_stream("flush-repl")
            if engine.partner_ssd is not None
            else None
        )
        self.abandoned = 0
        self.replicated = 0
        #: self-healing tallies (resilience; all zero when it is off).
        self.retries = 0
        self.rerouted = 0
        self.reflushed = 0
        self.backfilled = 0
        #: records rerouted to the PFS while the SSD was dark, awaiting a
        #: catch-up copy back onto the node-local tier once it returns.
        self._backfill: deque = deque()
        self._backfill_lock = threading.Lock()
        self.telemetry = engine.telemetry
        pid = engine.process_id
        self._tracks = {
            "d2h": f"p{pid}-flush-d2h",
            "d2s": f"p{pid}-flush-d2h",  # GPUDirect rides the d2h stream
            "h2f": f"p{pid}-flush-h2f",
            "f2p": f"p{pid}-flush-f2p",
            "f2r": f"p{pid}-flush-f2r",
            "repl": f"p{pid}-flush-repl",
        }
        registry = self.telemetry.registry
        self._m_bytes = {
            stage: registry.counter(f"flush.{stage}.bytes")
            for stage in ("d2h", "d2s", "h2f", "f2p", "repl")
        }
        self._m_abandoned = registry.counter("flush.abandoned")
        self._m_d2h_depth = registry.gauge("flush.d2h.depth")
        self._m_h2f_depth = registry.gauge("flush.h2f.depth")
        self._m_retries = registry.counter("resilience.flush_retries")
        self._m_reroutes = registry.counter("resilience.reroutes")
        self._m_reflush = registry.counter("resilience.reflushes")
        self._m_backfills = registry.counter("resilience.backfills")
        # Pipeline-occupancy metrics exist only when streaming is on, so a
        # disabled run's metrics snapshot stays byte-identical to pre-stream.
        self._stream_lock = threading.Lock()
        self._stream_active_s = 0.0
        self._stream_overlap_s = 0.0
        if engine.streaming:
            self._m_streamed = registry.counter("flush.stream.pipelines")
            self._m_overlap = registry.gauge("flush.stream.overlap_ratio")
            self._m_stall = {
                stage: registry.gauge(f"flush.{stage}.stall_time")
                for stage in ("d2h", "h2f", "f2r", "f2p")
            }

    @property
    def backfill_depth(self) -> int:
        """Records durable only on the PFS, awaiting SSD catch-up copies."""
        with self._backfill_lock:
            return len(self._backfill)

    def _track_for(self, stage: str) -> str:
        return self._tracks.get(stage.split("-", 1)[0], self._tracks["h2f"])

    def _op(self, record: "CheckpointRecord"):
        """The record's causal handle (``NULL_OP`` when tracing is off)."""
        op = record.op
        return op if op is not None else NULL_OP

    def _causal(self, op, tier: str) -> dict:
        """Extra span kwargs tying a flush leg to its op, empty when off.

        Gated on ``op.op_id`` so disabled runs emit byte-identical spans
        (the ``tier`` arg must not appear in their args dicts).
        """
        if op.op_id is None:
            return {}
        return {"op_id": op.op_id, "category": CAT_TRANSFER, "tier": tier}

    def _mark_durable(self, record: "CheckpointRecord", op, stage: str, level: TierLevel) -> None:
        """First durable landing: emit the ``durable`` instant + SLO sample."""
        if op.op_id is None:
            return
        engine = self.engine
        now = engine.clock.now()
        op.instant(
            "durable",
            track=self._track_for(stage),
            tier=level.name.lower(),
            level=level.name,
        )
        if engine.slo is not None:
            engine.slo.observe_durability(now, now - op.start, op_id=op.op_id)

    def _abandon(self, stage: str, record: "CheckpointRecord", reason: str) -> None:
        """Count + trace + log one abandoned flush leg (monitor NOT required)."""
        self.abandoned += 1
        self._m_abandoned.inc()
        self.telemetry.bus.instant(
            "flush-abandoned",
            self._tracks[stage],
            op_id=self._op(record).op_id,
            ckpt=record.ckpt_id,
            reason=reason,
        )
        log.debug(
            "p%d: abandoning %s flush of checkpoint %d (%s)",
            self.engine.process_id,
            stage,
            record.ckpt_id,
            reason,
        )

    def schedule(self, record: "CheckpointRecord") -> None:
        """Queue the D2H (or GPUDirect D2S) leg after the GPU write."""
        with self.engine.monitor:
            record.instance(TierLevel.GPU).flush_pending = True
        if self.engine.gpudirect:
            self.d2h_stream.submit(
                lambda: self._flush_d2s(record), label=f"d2s-{record.ckpt_id}"
            )
        elif not self._schedule_streamed(record):
            self.d2h_stream.submit(
                lambda: self._flush_d2h(record), label=f"d2h-{record.ckpt_id}"
            )
        self._m_d2h_depth.set(self.d2h_stream.depth)

    def _schedule_streamed(self, record: "CheckpointRecord") -> bool:
        """Co-submit the streamed cascade stages; ``False`` when this record
        takes the legacy store-and-forward path (streaming off, or the
        transfer is too small to amortise per-chunk latency).

        All stages of one checkpoint are submitted together, in cascade
        order, onto their per-stage FIFO streams.  Because every checkpoint
        submits in the same stage order, the only cross-stage waits are
        *backward* (consumer on producer of the same checkpoint, producer
        throttled by its own consumer) — the dependency graph stays acyclic
        and the co-scheduled workers cannot deadlock.
        """
        engine = self.engine
        if not engine.streaming:
            return False
        scfg = engine.config.stream
        sizes = plan_chunks(
            record.wire_size(TierLevel.GPU, TierLevel.HOST),
            scfg.stream_chunk_bytes,
            scfg.min_stream_chunks,
        )
        if sizes is None:
            return False
        pipeline = ChunkPipeline(
            record.ckpt_id,
            len(sizes),
            scfg.ring_chunks,
            engine.clock,
            cancelled=record.cancel_flush,
            crashed=engine.crashed,
        )
        pipeline.add_stage("d2h")
        pipeline.add_stage("h2f")
        stages = [("d2h", self.d2h_stream, self._stream_d2h),
                  ("h2f", self.h2f_stream, self._stream_h2f)]
        if self.f2p_stream is not None:
            # The PFS upgrade runs as two stages — SSD read-back producing
            # for the PFS writer — so chunk reads overlap chunk writes.
            pipeline.add_stage("f2r")
            pipeline.add_stage("f2p")
            stages.append(("f2r", self.f2r_stream, self._stream_f2r))
            stages.append(("f2p", self.f2p_stream, self._stream_f2p))
        pipeline.retain(len(stages))
        self._m_streamed.inc()
        for name, stream, body in stages:
            event = stream.submit(
                lambda body=body: body(record, pipeline),
                label=f"{name}-{record.ckpt_id}",
            )
            # Event-driven failure propagation: a stage worker that dies
            # with an unhandled error (or is cancelled at stream close)
            # fails its pipeline stage so neighbours unblock immediately
            # instead of timing out in their waits.
            event.add_done_callback(
                lambda ev, name=name: pipeline.fail(name)
                if (ev.error is not None or ev.cancelled)
                else None
            )
        self._m_h2f_depth.set(self.h2f_stream.depth)
        return True

    def _request(self, record: "CheckpointRecord"):
        """QoS tag for one flush leg (None when scheduling is off).

        The record's ``cancel_flush`` event doubles as the request's
        cancellation channel, so abandonment (condition (5)) interrupts a
        leg whether it is mid-transfer or still queued in an arbiter.
        """
        return self.engine._sched_request(
            TransferClass.CASCADE_FLUSH, cancel_event=record.cancel_flush
        )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for the whole cascade to settle (the paper's WAIT variant).

        ``timeout`` is in wall-clock seconds (callers convert nominal time
        via ``clock.to_real``); returns ``False`` when any stream still has
        work in flight at the deadline, ``True`` once everything drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        streams = [
            stream
            for stream in (
                self.d2h_stream,
                self.h2f_stream,
                self.repl_stream,
                self.f2r_stream,
                self.f2p_stream,
            )
            if stream is not None
        ]
        # Sweep until every stream is *simultaneously* idle: a drained d2h
        # item may have enqueued h2f work which enqueues repl/f2p work (and
        # with chunk streaming, stages co-run), so a fixed pass count can
        # return while the tail of the cascade is still in flight.  Each
        # sweep also gives rerouted records a chance to backfill onto a
        # healed SSD; a *stuck* backfill (tier still dark) does not hold
        # drain hostage — matching the historical contract.
        while True:
            backfill_before = self.backfill_depth
            self._drain_backfill()
            for stream in streams:
                if deadline is None:
                    stream.synchronize()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not stream.synchronize(timeout=remaining):
                    return False
            if any(stream.depth > 0 for stream in streams):
                continue  # a synced stage enqueued downstream work mid-sweep
            depth = self.backfill_depth
            if depth and depth != backfill_before:
                continue  # backfill progressed; give it another sweep
            return True

    def close(self) -> None:
        self.d2h_stream.close(drain=True)
        self.h2f_stream.close(drain=True)
        if self.repl_stream is not None:
            self.repl_stream.close(drain=True)
        if self.f2r_stream is not None:
            self.f2r_stream.close(drain=True)
        if self.f2p_stream is not None:
            self.f2p_stream.close(drain=True)

    # -- self-healing machinery ----------------------------------------------
    def _retrying(self, stage: str, record: "CheckpointRecord", fn, breaker=None):
        """Run one flush leg, retrying injected transient faults.

        A plain call when resilience is off — the
        :class:`TransientTransferError` then propagates into the stage's
        historical ``TransferError`` handling, so disabled behavior is
        unchanged.  Each attempt feeds the endpoint's circuit breaker when
        ``breaker`` names one; exponential backoff with deterministic jitter
        is charged on the virtual clock.
        """
        engine = self.engine
        policy = engine.retry_policy
        attempt = 0
        while True:
            try:
                result = fn()
            except TransientTransferError:
                if breaker is not None:
                    engine.health.failure(breaker)
                if (
                    policy is None
                    or attempt >= policy.budget("CASCADE_FLUSH")
                    or record.cancel_flush.is_set()
                    or engine.crashed.is_set()
                ):
                    raise
                delay = policy.backoff(attempt, stage, record.ckpt_id)
                self.retries += 1
                self._m_retries.inc()
                op = self._op(record)
                self.telemetry.bus.instant(
                    "flush-retry",
                    self._track_for(stage),
                    op_id=op.op_id,
                    ckpt=record.ckpt_id,
                    stage=stage,
                    attempt=attempt,
                    delay=delay,
                )
                with op.stage(
                    "backoff", CAT_RETRY, track=self._track_for(stage), leg=stage
                ):
                    engine.clock.sleep(delay)
                attempt += 1
                continue
            if breaker is not None:
                engine.health.success(breaker)
            return result

    def _reverify(self, stage: str, record: "CheckpointRecord", store, breaker, reput) -> bool:
        """Post-flush CRC re-verification with bounded re-flush.

        Scrubs the just-written blob against the pristine CRC stamped at
        put() time; a mismatch (injected at-rest corruption) deletes the
        blob and re-puts it from the in-hand pristine payload, twice at
        most.  Returns ``True`` once the stored copy verifies.
        """
        engine = self.engine
        key = engine.store_key(record)
        for attempt in range(2):
            if store.verify(key):
                return True
            self.reflushed += 1
            self._m_reflush.inc()
            self.telemetry.bus.instant(
                "flush-reverify",
                self._track_for(stage),
                op_id=self._op(record).op_id,
                ckpt=record.ckpt_id,
                stage=stage,
                tier=getattr(store, "_track", "pfs"),
                attempt=attempt,
            )
            log.warning(
                "p%d: %s flush of checkpoint %d failed CRC verification; "
                "re-flushing",
                engine.process_id, stage, record.ckpt_id,
            )
            store.delete(key)
            try:
                self._retrying(stage, record, reput, breaker=breaker)
            except TransferError:
                return False
        return store.verify(key)

    def _durable_ssd_put(self, stage: str, record: "CheckpointRecord", payload):
        """Land ``payload`` durably: the local SSD, or the PFS when the SSD
        is dark (circuit breaker open, outage window) and rerouting is on.

        Returns ``"ssd"`` or ``"pfs"`` naming where the blob landed —
        durability, chunk attachment and the journal entry are already
        committed for ``"pfs"`` (handled by the reroute) — or ``None``
        after abandoning the leg.
        """
        engine = self.engine
        key = engine.store_key(record)
        breaker = engine.ssd._track
        rcfg = engine.config.resilience
        op = self._op(record)
        track = self._track_for(stage)

        def put(copy: bool) -> None:
            engine.ssd.put(
                key,
                payload,
                record.stored_size(TierLevel.SSD),
                cancelled=record.cancel_flush,
                meta=engine.recovery_meta(record),
                copy=copy,
                request=self._request(record),
            )

        if engine.resilient and not engine.health.allow(breaker):
            # Blacklisted: don't feed the dark tier another doomed write.
            if rcfg.reroute and engine.pfs is not None:
                return "pfs" if self._reroute_to_pfs(stage, record, payload) else None
            self._abandon(stage, record, "ssd circuit breaker open")
            return None
        try:
            # First attempt hands ownership of the snapshot to the store
            # (copy=False, the historical zero-copy path); re-puts copy.
            with op.stage("ssd-put", CAT_TRANSFER, track=track, tier="ssd"):
                self._retrying(stage, record, lambda: put(False), breaker=breaker)
        except TransientTransferError as exc:
            if engine.resilient and rcfg.reroute and engine.pfs is not None:
                return "pfs" if self._reroute_to_pfs(stage, record, payload) else None
            self._abandon(stage, record, f"{type(exc).__name__} mid-transfer")
            return None
        except TransferError:
            self._abandon(stage, record, "cancelled mid-transfer")
            return None
        if engine.resilient and rcfg.reverify:
            with op.stage("reverify", CAT_RETRY, track=track, tier="ssd"):
                verified = self._reverify(
                    stage, record, engine.ssd, breaker, lambda: put(True)
                )
            if not verified:
                engine.ssd.delete(key)
                engine._journal_retract(record, breaker)
                if rcfg.reroute and engine.pfs is not None:
                    return "pfs" if self._reroute_to_pfs(stage, record, payload) else None
                self._abandon(stage, record, "persistent corruption on SSD put")
                return None
        return "ssd"

    def _reroute_to_pfs(self, stage: str, record: "CheckpointRecord", payload) -> bool:
        """Reroute a durable put around a dark SSD, straight to the PFS.

        On success the record is durable at PFS (journaled, chunks
        attached) and queued for backfill — a catch-up copy onto the SSD
        once it returns.  Returns ``False`` after abandoning.
        """
        engine = self.engine
        pfs = engine.pfs
        key = engine.store_key(record)
        rcfg = engine.config.resilience
        op = self._op(record)
        self.rerouted += 1
        self._m_reroutes.inc()
        self.telemetry.bus.instant(
            "flush-reroute",
            self._track_for(stage),
            op_id=op.op_id,
            ckpt=record.ckpt_id,
            stage=stage,
        )
        log.info(
            "p%d: rerouting %s flush of checkpoint %d around the dark SSD "
            "to the PFS",
            engine.process_id, stage, record.ckpt_id,
        )

        def put() -> None:
            pfs.put(
                key,
                payload,
                record.stored_size(TierLevel.PFS),
                node_id=engine.node_id,
                cancelled=record.cancel_flush,
                meta=engine.recovery_meta(record),
                request=self._request(record),
            )

        reroute_stage = f"{stage}-reroute"
        try:
            with op.stage(
                "reroute", CAT_REROUTE, track=self._track_for(stage), tier="pfs"
            ):
                self._retrying(reroute_stage, record, put, breaker="pfs")
                if rcfg.reverify and not self._reverify(
                    reroute_stage, record, pfs, "pfs", put
                ):
                    pfs.delete(key)
                    engine._journal_retract(record, "pfs")
                    self._abandon(stage, record, "persistent corruption on PFS reroute")
                    return False
        except TransferError as exc:
            self._abandon(stage, record, f"PFS reroute failed ({type(exc).__name__})")
            return False
        first_durable = False
        with engine.monitor:
            if record.durable_level is None or record.durable_level < TierLevel.PFS:
                first_durable = record.durable_level is None
                record.durable_level = TierLevel.PFS
            if engine._reduced_at(record, TierLevel.PFS):
                engine.reducer.attach(record, TierLevel.PFS)
            engine.monitor.notify_all()
        engine._journal_commit(record, TierLevel.PFS, "pfs")
        if first_durable:
            self._mark_durable(record, op, stage, TierLevel.PFS)
        if rcfg.backfill:
            with self._backfill_lock:
                self._backfill.append(record)
        return True

    def _drain_backfill(self) -> None:
        """Catch-up copies for rerouted records once the SSD returns.

        Pops queued records and copies their PFS blobs back onto the local
        SSD, breaker-gated; a failure (tier still dark) re-queues the record
        and stops until the next drain opportunity.
        """
        engine = self.engine
        if not engine.resilient:
            return
        breaker = engine.ssd._track
        while True:
            with self._backfill_lock:
                if not self._backfill:
                    return
                record = self._backfill.popleft()
            key = engine.store_key(record)
            if record.discarded or engine.crashed.is_set():
                continue
            if engine.ssd.contains(key):
                continue  # already healed by another path
            if engine.faults.hard_outage("ssd") or not engine.health.allow(breaker):
                with self._backfill_lock:
                    self._backfill.appendleft(record)
                return
            op = self._op(record)
            # The op has been idle since its reroute, waiting for the dark
            # SSD to heal: label that whole gap before timing the copy, so
            # its timeline stays gap-free.
            op.fill("await-heal", CAT_REROUTE, track=self._track_for("h2f"))
            backfill_t0 = engine.clock.now()
            try:
                payload, _ = engine.pfs.get(
                    key, node_id=engine.node_id, request=self._request(record)
                )
                engine.ssd.put(
                    key,
                    payload,
                    record.stored_size(TierLevel.SSD),
                    cancelled=record.cancel_flush,
                    meta=engine.recovery_meta(record),
                    request=self._request(record),
                )
            except (TransferError, ReproError):
                engine.health.failure(breaker)
                with self._backfill_lock:
                    self._backfill.appendleft(record)
                return
            engine.health.success(breaker)
            with engine.monitor:
                if engine._reduced_at(record, TierLevel.SSD):
                    engine.reducer.attach(record, TierLevel.SSD)
                engine.monitor.notify_all()
            engine._journal_commit(record, TierLevel.SSD, breaker)
            self.backfilled += 1
            self._m_backfills.inc()
            if op.op_id is not None:
                now = engine.clock.now()
                self.telemetry.bus.complete(
                    "backfill",
                    self._track_for("h2f"),
                    backfill_t0,
                    now - backfill_t0,
                    op_id=op.op_id,
                    category=CAT_REROUTE,
                    tier="ssd",
                )
            self.telemetry.bus.instant(
                "flush-backfill",
                self._track_for("h2f"),
                op_id=op.op_id,
                ckpt=record.ckpt_id,
            )

    # -- stages --------------------------------------------------------------
    def _flush_d2h(self, record: "CheckpointRecord") -> None:
        engine = self.engine
        if engine.crashed.is_set():
            return  # the incarnation is dead; drop queued work
        engine._maybe_crash("before-d2h", record)
        started = engine.clock.now()
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["d2h"])
        with engine.monitor:
            gpu_inst = record.peek(TierLevel.GPU)
            if record.discarded or gpu_inst is None:
                if gpu_inst is not None:
                    gpu_inst.flush_pending = False
                self._abandon("d2h", record, "discarded or already evicted")
                engine.monitor.notify_all()
                return
        # Snapshot the bytes, then release the instance for eviction.
        try:
            payload = engine.gpu_cache.read_payload(record)
        except AllocationError:
            # Discarded and evicted between the check and the snapshot.
            self._abandon("d2h", record, "evicted during payload snapshot")
            return
        with engine.monitor:
            gpu_inst.flush_pending = False
            engine.monitor.notify_all()
        if (
            engine.reducer is not None
            and engine.reducer.site == "host"
            and record.reduction is None
        ):
            # Host-site reduction: encode off the application's critical
            # path, on this flush thread, before the host placement — the
            # host cache and everything below hold the physical form.
            with op.stage("encode", CAT_REDUCE, track=self._tracks["d2h"]):
                engine.reducer.encode(record, payload)
        wire = record.wire_size(TierLevel.GPU, TierLevel.HOST)
        # Claim host cache space (blocks for evictions as needed).
        with op.stage("reserve-host", CAT_RESERVE, track=self._tracks["d2h"]):
            engine.host_cache.reserve(
                record, CkptState.WRITE_IN_PROGRESS, blocking=True
            )
        with self.telemetry.bus.span(
            "d2h",
            self._tracks["d2h"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "pcie"),
        ) as span:
            try:
                self._retrying(
                    "d2h",
                    record,
                    lambda: engine.device.d2h_link.transfer(
                        wire,
                        cancelled=record.cancel_flush,
                        request=self._request(record),
                    ),
                )
            except TransferError:
                span.add(abandoned=True)
                # Abandon: release the half-written host extent.
                engine.host_cache.release(record)
                self._abandon("d2h", record, "cancelled mid-transfer")
                return
        self._m_bytes["d2h"].inc(wire)
        if engine._reduced_at(record, TierLevel.HOST):
            engine.host_cache.write_payload(
                record, engine.reducer.physical_payload(record)
            )
        else:
            engine.host_cache.write_payload(record, payload)
        with engine.monitor:
            host_inst = record.instance(TierLevel.HOST)
            host_inst.transition(CkptState.WRITE_COMPLETE, engine.clock.now())
            host_inst.flush_pending = True
            if engine._reduced_at(record, TierLevel.HOST):
                engine.reducer.attach(record, TierLevel.HOST)
            gpu_now = record.peek(TierLevel.GPU)
            if gpu_now is not None:
                gpu_now.try_transition(CkptState.FLUSHED, engine.clock.now())
            engine.monitor.notify_all()
        engine.recorder.record(
            OpEvent(
                kind=OpKind.FLUSH,
                ckpt_id=record.ckpt_id,
                started_at=started,
                blocked=engine.clock.now() - started,
                nominal_bytes=record.nominal_size,
                source_level=TierLevel.GPU.name,
            )
        )
        engine._maybe_crash("after-d2h", record)
        self.h2f_stream.submit(lambda: self._flush_h2f(record), label=f"h2f-{record.ckpt_id}")
        self._m_h2f_depth.set(self.h2f_stream.depth)

    def _flush_d2s(self, record: "CheckpointRecord") -> None:
        """GPUDirect storage flush: GPU cache → SSD, no host staging."""
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-d2s", record)
        started = engine.clock.now()
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["d2s"])
        with engine.monitor:
            gpu_inst = record.peek(TierLevel.GPU)
            if record.discarded or gpu_inst is None:
                if gpu_inst is not None:
                    gpu_inst.flush_pending = False
                self._abandon("d2s", record, "discarded or already evicted")
                engine.monitor.notify_all()
                return
        try:
            payload = engine.gpu_cache.read_payload(record)
        except AllocationError:
            self._abandon("d2s", record, "evicted during payload snapshot")
            return
        with engine.monitor:
            gpu_inst.flush_pending = False
            engine.monitor.notify_all()
        wire = record.wire_size(TierLevel.GPU, TierLevel.SSD)
        with self.telemetry.bus.span(
            "d2s",
            self._tracks["d2s"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "ssd"),
        ) as span:
            try:
                # The DMA crosses the same PCIe link, then commits to the drive.
                self._retrying(
                    "d2s",
                    record,
                    lambda: engine.device.d2h_link.transfer(
                        wire,
                        cancelled=record.cancel_flush,
                        request=self._request(record),
                    ),
                )
            except TransferError:
                span.add(abandoned=True)
                self._abandon("d2s", record, "cancelled mid-transfer")
                return
            outcome = self._durable_ssd_put("d2s", record, payload)
            if outcome is None:
                span.add(abandoned=True)
                return
            if outcome == "pfs":
                span.add(rerouted=True)
        self._m_bytes["d2s"].inc(wire)
        first_durable = False
        with engine.monitor:
            if outcome == "ssd":
                if record.durable_level is None or record.durable_level < TierLevel.SSD:
                    first_durable = record.durable_level is None
                    record.durable_level = TierLevel.SSD
                if engine._reduced_at(record, TierLevel.SSD):
                    engine.reducer.attach(record, TierLevel.SSD)
            gpu_now = record.peek(TierLevel.GPU)
            if gpu_now is not None:
                gpu_now.try_transition(CkptState.FLUSHED, engine.clock.now())
            engine.monitor.notify_all()
        if outcome == "ssd":
            engine._journal_commit(record, TierLevel.SSD, engine.ssd._track)
            if first_durable:
                self._mark_durable(record, op, "d2s", TierLevel.SSD)
        engine.recorder.record(
            OpEvent(
                kind=OpKind.FLUSH,
                ckpt_id=record.ckpt_id,
                started_at=started,
                blocked=engine.clock.now() - started,
                nominal_bytes=record.nominal_size,
                source_level=TierLevel.GPU.name,
            )
        )
        engine._maybe_crash("after-d2s", record)
        if outcome == "ssd":
            self._drain_backfill()
            if self.f2p_stream is not None:
                self.f2p_stream.submit(
                    lambda: self._flush_f2p(record), label=f"f2p-{record.ckpt_id}"
                )

    def _flush_h2f(self, record: "CheckpointRecord") -> None:
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-h2f", record)
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["h2f"])
        with engine.monitor:
            host_inst = record.peek(TierLevel.HOST)
            if record.discarded or host_inst is None:
                if host_inst is not None:
                    host_inst.flush_pending = False
                self._abandon("h2f", record, "discarded or already evicted")
                engine.monitor.notify_all()
                return
        try:
            payload = engine.host_cache.read_payload(record)
        except AllocationError:
            self._abandon("h2f", record, "evicted during payload snapshot")
            return
        with engine.monitor:
            host_inst.flush_pending = False
            engine.monitor.notify_all()
        wire = record.wire_size(TierLevel.HOST, TierLevel.SSD)
        with self.telemetry.bus.span(
            "h2f",
            self._tracks["h2f"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "ssd"),
        ) as span:
            outcome = self._durable_ssd_put("h2f", record, payload)
            if outcome is None:
                span.add(abandoned=True)
                return
            if outcome == "pfs":
                span.add(rerouted=True)
        self._m_bytes["h2f"].inc(wire)
        first_durable = False
        with engine.monitor:
            if outcome == "ssd":
                if record.durable_level is None or record.durable_level < TierLevel.SSD:
                    first_durable = record.durable_level is None
                    record.durable_level = TierLevel.SSD
                if engine._reduced_at(record, TierLevel.SSD):
                    engine.reducer.attach(record, TierLevel.SSD)
            host_now = record.peek(TierLevel.HOST)
            if host_now is not None:
                host_now.try_transition(CkptState.FLUSHED, engine.clock.now())
            engine.monitor.notify_all()
        if outcome == "ssd":
            engine._journal_commit(record, TierLevel.SSD, engine.ssd._track)
            if first_durable:
                self._mark_durable(record, op, "h2f", TierLevel.SSD)
        engine._maybe_crash("after-h2f", record)
        if outcome == "ssd":
            self._drain_backfill()
            if self.repl_stream is not None:
                self.repl_stream.submit(
                    lambda: self._replicate(record), label=f"repl-{record.ckpt_id}"
                )
            if self.f2p_stream is not None:
                self.f2p_stream.submit(
                    lambda: self._flush_f2p(record), label=f"f2p-{record.ckpt_id}"
                )

    def _replicate(self, record: "CheckpointRecord") -> None:
        """Copy the durable checkpoint to its replica targets' SSDs.

        One target is the legacy partner pair; the cluster fabric supplies
        ``replica_factor - 1`` ring successors instead. Targets are copied
        in ring order; a failed target abandons the remaining ones —
        replication is best-effort beyond the first durable copy.
        """
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-repl", record)
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["repl"])
        with engine.monitor:
            if record.discarded:
                self._abandon("repl", record, "discarded before replication")
                return
        # Partner replicas are verbatim SSD blobs and stay outside the chunk
        # accounting: the home node owns the recipe, the partner only keeps a
        # byte-copy for node-failure recovery.
        stored = record.stored_size(TierLevel.SSD)
        targets = engine.replica_targets
        if engine.fabric is not None and engine.fabric.membership.active:
            # Under node chaos, skip dead/partitioned targets instead of
            # burning retries into an offline SSD; the repairer restores
            # the factor once the target is back (or replaced).
            engine.fabric.membership.tick()
            targets = engine.fabric.live_replica_targets(engine.node_id)
        for _target_node, target_ssd, target_link in targets:

            def copy_to_partner(ssd=target_ssd, link=target_link) -> None:
                payload, _ = engine.ssd.get(
                    engine.store_key(record), request=self._request(record)
                )
                link.transfer(
                    stored,
                    cancelled=record.cancel_flush,
                    request=self._request(record),
                )
                ssd.put(
                    engine.store_key(record),
                    payload,
                    stored,
                    cancelled=record.cancel_flush,
                    meta=engine.recovery_meta(record),
                    request=self._request(record),
                )

            with self.telemetry.bus.span(
                "repl",
                self._tracks["repl"],
                ckpt=record.ckpt_id,
                bytes=stored,
                **self._causal(op, "fabric"),
            ) as span:
                try:
                    self._retrying("repl", record, copy_to_partner)
                except (TransferError, ReproError) as exc:
                    span.add(abandoned=True)
                    self._abandon(
                        "repl", record, f"{type(exc).__name__} during replication"
                    )
                    return
            self._m_bytes["repl"].inc(stored)
            self.replicated += 1
            engine._journal_commit(record, TierLevel.SSD, target_ssd._track)
        engine._maybe_crash("after-repl", record)

    def _flush_f2p(self, record: "CheckpointRecord") -> None:
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-f2p", record)
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["f2p"])
        with engine.monitor:
            if record.discarded:
                self._abandon("f2p", record, "discarded before PFS flush")
                return
        pfs = engine.pfs
        if pfs is None:
            return
        if engine.resilient and not engine.health.allow("pfs"):
            # The SSD copy is already durable; skip the dark PFS rather
            # than feed its breaker another doomed upgrade write.
            self._abandon("f2p", record, "pfs circuit breaker open")
            return
        key = engine.store_key(record)
        stored = record.stored_size(TierLevel.PFS)
        wire = record.wire_size(TierLevel.SSD, TierLevel.PFS)
        with self.telemetry.bus.span(
            "f2p",
            self._tracks["f2p"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "pfs"),
        ) as span:
            try:
                # This SSD read-back shares the read link with demand
                # restores — the QoS tag keeps it behind them.  Retried
                # separately from the PFS write so an SSD failure never
                # counts against the PFS breaker.
                with op.stage(
                    "read-back", CAT_TRANSFER, track=self._tracks["f2p"], tier="ssd"
                ):
                    payload, _ = self._retrying(
                        "f2p",
                        record,
                        lambda: engine.ssd.get(key, request=self._request(record)),
                    )
            except TransferError:
                span.add(abandoned=True)
                self._abandon("f2p", record, "cancelled mid-transfer")
                return

            def put() -> None:
                # Routed through the fabric's per-node write aggregator when
                # the cluster is enabled (concurrent whole-object flushes
                # coalesce into one batched PFS commit); the direct store
                # call otherwise. Reroute/backfill and the streamed cascade
                # stay unaggregated: their chunk pacing and failure
                # semantics are per-object by design.
                engine._pfs_put(
                    key,
                    payload,
                    stored,
                    cancelled=record.cancel_flush,
                    meta=engine.recovery_meta(record),
                    request=self._request(record),
                )

            try:
                self._retrying("f2p", record, put, breaker="pfs")
            except TransferError:
                span.add(abandoned=True)
                self._abandon("f2p", record, "cancelled mid-transfer")
                return
            if engine.resilient and engine.config.resilience.reverify:
                with op.stage(
                    "reverify", CAT_RETRY, track=self._tracks["f2p"], tier="pfs"
                ):
                    verified = self._reverify("f2p", record, pfs, "pfs", put)
                if not verified:
                    pfs.delete(key)
                    engine._journal_retract(record, "pfs")
                    span.add(abandoned=True)
                    self._abandon("f2p", record, "persistent corruption on PFS put")
                    return
        self._m_bytes["f2p"].inc(wire)
        with engine.monitor:
            record.durable_level = TierLevel.PFS
            if engine._reduced_at(record, TierLevel.PFS):
                engine.reducer.attach(record, TierLevel.PFS)
            engine.monitor.notify_all()
        engine._journal_commit(record, TierLevel.PFS, "pfs")
        engine._maybe_crash("after-f2p", record)

    # -- streamed stages ------------------------------------------------------
    # The pipelined counterparts of the store-and-forward stages above.  A
    # stage keeps its legacy preamble (discard checks, crash points) and
    # epilogue (state transitions, journal commits) verbatim; only the
    # middle changes: the single whole-object link charge becomes a loop of
    # chunk charges interleaved with the neighbouring stages through the
    # checkpoint's ChunkPipeline.  Payload *bytes* still move and commit
    # whole-object — a torn stream leaves nothing on any tier, so the
    # manifest journal's crash consistency is untouched.

    def _stream_bail(self, stage: str, record: "CheckpointRecord", reason: str) -> None:
        """Quiet abandonment of a streamed leg whose upstream already
        abandoned (and counted) the flush — log only, no double-count."""
        log.debug(
            "p%d: streamed %s leg of checkpoint %d bailing (%s)",
            self.engine.process_id, stage, record.ckpt_id, reason,
        )

    def _chunk_span(
        self,
        stage: str,
        tier: str,
        record: "CheckpointRecord",
        chunk: int,
        nbytes: int,
        t0: float,
    ) -> None:
        """One chunk slice, nested under the stage span on the same track."""
        self.telemetry.bus.complete(
            f"{stage}-chunk",
            self._track_for(stage),
            t0,
            self.engine.clock.now() - t0,
            ckpt=record.ckpt_id,
            chunk=chunk,
            bytes=nbytes,
            **self._causal(self._op(record), tier),
        )

    def _account_stream(self, pipeline: ChunkPipeline) -> None:
        """Roll one finished pipeline into the occupancy gauges."""
        with self._stream_lock:
            self._stream_active_s += pipeline.active_s
            self._stream_overlap_s += pipeline.overlap_s
            active = self._stream_active_s
            overlap = self._stream_overlap_s
            for stage, stalled in pipeline.stall_s.items():
                gauge = self._m_stall.get(stage)
                if gauge is not None and stalled > 0:
                    gauge.add(stalled)
        if active > 0:
            self._m_overlap.set(overlap / active)

    def _stream_d2h(self, record: "CheckpointRecord", pipeline: ChunkPipeline) -> None:
        """Streamed D2H: produce chunks into the pipeline as they cross PCIe."""
        engine = self.engine
        ok = False
        try:
            if engine.crashed.is_set():
                return
            engine._maybe_crash("before-d2h", record)
            started = engine.clock.now()
            op = self._op(record)
            op.fill("flush-queue", track=self._tracks["d2h"])
            with engine.monitor:
                gpu_inst = record.peek(TierLevel.GPU)
                if record.discarded or gpu_inst is None:
                    if gpu_inst is not None:
                        gpu_inst.flush_pending = False
                    self._abandon("d2h", record, "discarded or already evicted")
                    engine.monitor.notify_all()
                    return
            try:
                payload = engine.gpu_cache.read_payload(record)
            except AllocationError:
                self._abandon("d2h", record, "evicted during payload snapshot")
                return
            with engine.monitor:
                gpu_inst.flush_pending = False
                engine.monitor.notify_all()
            if (
                engine.reducer is not None
                and engine.reducer.site == "host"
                and record.reduction is None
            ):
                with op.stage("encode", CAT_REDUCE, track=self._tracks["d2h"]):
                    engine.reducer.encode(record, payload)
            # Hand the post-encode physical payload to the consumers up
            # front: they charge their links chunk-by-chunk against our
            # published completions instead of waiting for the host copy.
            if engine._reduced_at(record, TierLevel.HOST):
                pipeline.payload = engine.reducer.physical_payload(record)
            else:
                pipeline.payload = payload
            wire = record.wire_size(TierLevel.GPU, TierLevel.HOST)
            with op.stage("reserve-host", CAT_RESERVE, track=self._tracks["d2h"]):
                engine.host_cache.reserve(
                    record, CkptState.WRITE_IN_PROGRESS, blocking=True
                )
            sizes = chunk_sizes_for(wire, pipeline.chunks)
            with self.telemetry.bus.span(
                "d2h",
                self._tracks["d2h"],
                ckpt=record.ckpt_id,
                bytes=wire,
                chunks=pipeline.chunks,
                **self._causal(op, "pcie"),
            ) as span:
                try:
                    for i, nbytes in enumerate(sizes):
                        if not pipeline.throttle("d2h", i):
                            raise TransferError("stream interrupted")
                        t0 = engine.clock.now()
                        pipeline.enter_chunk()
                        try:
                            self._retrying(
                                "d2h",
                                record,
                                lambda nb=nbytes: engine.device.d2h_link.transfer(
                                    nb,
                                    cancelled=record.cancel_flush,
                                    request=self._request(record),
                                ),
                            )
                        finally:
                            pipeline.exit_chunk()
                        self._chunk_span("d2h", "pcie", record, i, nbytes, t0)
                        pipeline.publish("d2h", i)
                except TransferError:
                    span.add(abandoned=True)
                    engine.host_cache.release(record)
                    self._abandon("d2h", record, "cancelled mid-transfer")
                    return
            self._m_bytes["d2h"].inc(wire)
            engine.host_cache.write_payload(record, pipeline.payload)
            with engine.monitor:
                host_inst = record.instance(TierLevel.HOST)
                host_inst.transition(CkptState.WRITE_COMPLETE, engine.clock.now())
                host_inst.flush_pending = True
                if engine._reduced_at(record, TierLevel.HOST):
                    engine.reducer.attach(record, TierLevel.HOST)
                gpu_now = record.peek(TierLevel.GPU)
                if gpu_now is not None:
                    gpu_now.try_transition(CkptState.FLUSHED, engine.clock.now())
                engine.monitor.notify_all()
            engine.recorder.record(
                OpEvent(
                    kind=OpKind.FLUSH,
                    ckpt_id=record.ckpt_id,
                    started_at=started,
                    blocked=engine.clock.now() - started,
                    nominal_bytes=record.nominal_size,
                    source_level=TierLevel.GPU.name,
                )
            )
            engine._maybe_crash("after-d2h", record)
            pipeline.finish("d2h")
            ok = True
        finally:
            if not ok:
                pipeline.fail("d2h")
            if pipeline.release():
                self._account_stream(pipeline)
            self._m_h2f_depth.set(self.h2f_stream.depth)

    def _stream_h2f(self, record: "CheckpointRecord", pipeline: ChunkPipeline) -> None:
        """Streamed durable hop: consume D2H chunks, charge the SSD per
        chunk, commit-at-end; reroutes to the PFS resume at the failed chunk."""
        engine = self.engine
        ok = False
        try:
            if engine.crashed.is_set():
                return
            op = self._op(record)
            op.fill("flush-queue", track=self._tracks["h2f"])
            # The preamble needs the post-encode payload and wire sizes, so
            # first wait for the producer to publish its opening chunk.
            if not pipeline.await_upstream("h2f", 0):
                self._stream_bail("h2f", record, "upstream abandoned")
                return
            engine._maybe_crash("before-h2f", record)
            with engine.monitor:
                if record.discarded:
                    host_inst = record.peek(TierLevel.HOST)
                    if host_inst is not None:
                        host_inst.flush_pending = False
                    self._abandon("h2f", record, "discarded mid-stream")
                    engine.monitor.notify_all()
                    return
            payload = pipeline.payload
            wire = record.wire_size(TierLevel.HOST, TierLevel.SSD)
            with self.telemetry.bus.span(
                "h2f",
                self._tracks["h2f"],
                ckpt=record.ckpt_id,
                bytes=wire,
                chunks=pipeline.chunks,
                **self._causal(op, "ssd"),
            ) as span:
                outcome = self._stream_durable_put(record, pipeline, payload, wire)
                if outcome is None:
                    span.add(abandoned=True)
                    return
                if outcome == "pfs":
                    span.add(rerouted=True)
            # The producer's epilogue owns the host instance's
            # WRITE_COMPLETE transition; settle it before flipping FLUSHED.
            if not pipeline.await_finished("h2f", "d2h"):
                self._stream_bail("h2f", record, "producer failed post-commit")
                return
            self._m_bytes["h2f"].inc(wire)
            pipeline.ssd_outcome = outcome
            first_durable = False
            with engine.monitor:
                if outcome == "ssd":
                    if record.durable_level is None or record.durable_level < TierLevel.SSD:
                        first_durable = record.durable_level is None
                        record.durable_level = TierLevel.SSD
                    if engine._reduced_at(record, TierLevel.SSD):
                        engine.reducer.attach(record, TierLevel.SSD)
                host_now = record.peek(TierLevel.HOST)
                if host_now is not None:
                    host_now.flush_pending = False
                    host_now.try_transition(CkptState.FLUSHED, engine.clock.now())
                engine.monitor.notify_all()
            if outcome == "ssd":
                engine._journal_commit(record, TierLevel.SSD, engine.ssd._track)
                if first_durable:
                    self._mark_durable(record, op, "h2f", TierLevel.SSD)
            engine._maybe_crash("after-h2f", record)
            pipeline.finish("h2f")
            ok = True
            if outcome == "ssd":
                self._drain_backfill()
                if self.repl_stream is not None:
                    self.repl_stream.submit(
                        lambda: self._replicate(record), label=f"repl-{record.ckpt_id}"
                    )
        finally:
            if not ok:
                pipeline.fail("h2f")
                if self.f2p_stream is not None:
                    pipeline.skip("f2r")
                    pipeline.skip("f2p")
                # The producer's epilogue pinned the host copy for us; an
                # abandoned durable hop must unpin it or it is unevictable
                # forever (legacy h2f unpinned right after its snapshot).
                with engine.monitor:
                    host_now = record.peek(TierLevel.HOST)
                    if host_now is not None and host_now.flush_pending:
                        host_now.flush_pending = False
                        engine.monitor.notify_all()
            if pipeline.release():
                self._account_stream(pipeline)

    def _stream_durable_put(
        self, record: "CheckpointRecord", pipeline: ChunkPipeline, payload, wire: int
    ):
        """Streamed analogue of :meth:`_durable_ssd_put`.

        Chunks are charged on the SSD write link as the producer publishes
        them; the blob commits (and only then becomes visible) after the
        last chunk.  A transient failure retries *the failed chunk*; an
        exhausted retry budget (or an open breaker) reroutes the stream to
        the PFS, resuming at the failed chunk — upstream chunks are not
        re-transferred.  Returns ``"ssd"``/``"pfs"``/``None`` like the
        store-and-forward version.
        """
        engine = self.engine
        key = engine.store_key(record)
        breaker = engine.ssd._track
        rcfg = engine.config.resilience
        op = self._op(record)
        track = self._track_for("h2f")
        stored = record.stored_size(TierLevel.SSD)

        if engine.resilient and not engine.health.allow(breaker):
            if rcfg.reroute and engine.pfs is not None:
                return (
                    "pfs"
                    if self._stream_reroute(record, pipeline, payload, consumed=0)
                    else None
                )
            self._abandon("h2f", record, "ssd circuit breaker open")
            return None
        sizes = chunk_sizes_for(wire, pipeline.chunks)
        consumed = 0
        try:
            with op.stage("ssd-put", CAT_TRANSFER, track=track, tier="ssd"):
                # The open draws the tier gate (a dark SSD raises here, at
                # chunk 0 of the stream) and the at-rest corruption for this
                # put attempt; retries re-open, re-drawing both.
                handle = self._retrying(
                    "h2f",
                    record,
                    lambda: engine.ssd.open_put(
                        key, stored, int(payload.size),
                        cancelled=record.cancel_flush,
                    ),
                    breaker=breaker,
                )
                for i, nbytes in enumerate(sizes):
                    if not pipeline.await_upstream("h2f", i):
                        handle.abort()
                        self._stream_bail("h2f", record, "upstream abandoned")
                        return None
                    consumed = i + 1
                    if not pipeline.throttle("h2f", i):
                        handle.abort()
                        raise TransferError("stream interrupted")
                    t0 = engine.clock.now()
                    pipeline.enter_chunk()
                    try:
                        self._retrying(
                            "h2f",
                            record,
                            lambda nb=nbytes: handle.write(
                                nb, request=self._request(record)
                            ),
                            breaker=breaker,
                        )
                    finally:
                        pipeline.exit_chunk()
                    self._chunk_span("h2f", "ssd", record, i, nbytes, t0)
                    pipeline.publish("h2f", i)
                # Commit-at-end: ownership of the snapshot passes to the
                # store (copy=False, the historical zero-copy path).
                handle.commit(
                    payload, meta=engine.recovery_meta(record), copy=False
                )
        except TransientTransferError as exc:
            if engine.resilient and rcfg.reroute and engine.pfs is not None:
                return (
                    "pfs"
                    if self._stream_reroute(record, pipeline, payload, consumed)
                    else None
                )
            self._abandon("h2f", record, f"{type(exc).__name__} mid-transfer")
            return None
        except TransferError:
            self._abandon("h2f", record, "cancelled mid-transfer")
            return None

        def reput() -> None:
            engine.ssd.put(
                key,
                payload,
                stored,
                cancelled=record.cancel_flush,
                meta=engine.recovery_meta(record),
                copy=True,
                request=self._request(record),
            )

        if engine.resilient and rcfg.reverify:
            with op.stage("reverify", CAT_RETRY, track=track, tier="ssd"):
                verified = self._reverify("h2f", record, engine.ssd, breaker, reput)
            if not verified:
                engine.ssd.delete(key)
                engine._journal_retract(record, breaker)
                if rcfg.reroute and engine.pfs is not None:
                    return (
                        "pfs"
                        if self._stream_reroute(record, pipeline, payload, pipeline.chunks)
                        else None
                    )
                self._abandon("h2f", record, "persistent corruption on SSD put")
                return None
        return "ssd"

    def _stream_reroute(
        self,
        record: "CheckpointRecord",
        pipeline: ChunkPipeline,
        payload,
        consumed: int,
    ) -> bool:
        """Mid-stream reroute around a dark SSD, straight to the PFS.

        ``consumed`` producer chunks already crossed into host staging, so
        they replay onto the PFS links immediately; the remaining chunks
        keep streaming against the producer as before — consumption resumes
        at the right chunk instead of restarting the cascade.  On success
        the record is durable (journaled) at the PFS and queued for SSD
        backfill, exactly like the store-and-forward reroute.
        """
        engine = self.engine
        pfs = engine.pfs
        key = engine.store_key(record)
        rcfg = engine.config.resilience
        op = self._op(record)
        track = self._track_for("h2f")
        if self.f2p_stream is not None:
            # The SSD upgrade hop is moot: the blob is going to the PFS now.
            pipeline.skip("f2r")
            pipeline.skip("f2p")
        self.rerouted += 1
        self._m_reroutes.inc()
        self.telemetry.bus.instant(
            "flush-reroute",
            track,
            op_id=op.op_id,
            ckpt=record.ckpt_id,
            stage="h2f",
            chunk=consumed,
        )
        log.info(
            "p%d: rerouting streamed h2f flush of checkpoint %d around the "
            "dark SSD to the PFS at chunk %d/%d",
            engine.process_id, record.ckpt_id, consumed, pipeline.chunks,
        )
        stored = record.stored_size(TierLevel.PFS)
        sizes = chunk_sizes_for(stored, pipeline.chunks)

        def reput() -> None:
            pfs.put(
                key,
                payload,
                stored,
                node_id=engine.node_id,
                cancelled=record.cancel_flush,
                meta=engine.recovery_meta(record),
                request=self._request(record),
            )

        try:
            with op.stage("reroute", CAT_REROUTE, track=track, tier="pfs"):
                handle = self._retrying(
                    "h2f-reroute",
                    record,
                    lambda: pfs.open_put(
                        key,
                        stored,
                        int(payload.size),
                        node_id=engine.node_id,
                        cancelled=record.cancel_flush,
                    ),
                    breaker="pfs",
                )
                for i, nbytes in enumerate(sizes):
                    if i >= consumed and not pipeline.await_upstream("h2f", i):
                        handle.abort()
                        self._stream_bail("h2f", record, "upstream abandoned")
                        return False
                    t0 = engine.clock.now()
                    pipeline.enter_chunk()
                    try:
                        self._retrying(
                            "h2f-reroute",
                            record,
                            lambda nb=nbytes: handle.write(
                                nb, request=self._request(record)
                            ),
                            breaker="pfs",
                        )
                    finally:
                        pipeline.exit_chunk()
                    self._chunk_span("h2f", "pfs", record, i, nbytes, t0)
                    pipeline.publish("h2f", i)
                handle.commit(payload, meta=engine.recovery_meta(record))
                if rcfg.reverify and not self._reverify(
                    "h2f-reroute", record, pfs, "pfs", reput
                ):
                    pfs.delete(key)
                    engine._journal_retract(record, "pfs")
                    self._abandon("h2f", record, "persistent corruption on PFS reroute")
                    return False
        except TransferError as exc:
            self._abandon("h2f", record, f"PFS reroute failed ({type(exc).__name__})")
            return False
        first_durable = False
        with engine.monitor:
            if record.durable_level is None or record.durable_level < TierLevel.PFS:
                first_durable = record.durable_level is None
                record.durable_level = TierLevel.PFS
            if engine._reduced_at(record, TierLevel.PFS):
                engine.reducer.attach(record, TierLevel.PFS)
            engine.monitor.notify_all()
        engine._journal_commit(record, TierLevel.PFS, "pfs")
        if first_durable:
            self._mark_durable(record, op, "h2f", TierLevel.PFS)
        if rcfg.backfill:
            with self._backfill_lock:
                self._backfill.append(record)
        return True

    def _stream_f2r(self, record: "CheckpointRecord", pipeline: ChunkPipeline) -> None:
        """Streamed SSD read-back: the producer half of the PFS upgrade.

        Runs as its own pipeline stage so the read of chunk *i+1* overlaps
        the PFS write of chunk *i* — store-and-forward f2p serialises the
        whole read behind the whole write, which would otherwise pace the
        streamed cascade at read+write per chunk.  The read-back overlaps
        the not-yet-committed SSD put (the drive streams its write buffer
        through), so the handle takes the size explicitly instead of the
        store index.
        """
        engine = self.engine
        ok = False
        try:
            if engine.crashed.is_set():
                return
            if pipeline.skipped("f2r"):
                ok = True
                return
            engine._maybe_crash("before-f2p", record)
            # Sizes and the physical payload settle once the producer has
            # run its preamble (host-site encode), signalled by its first
            # published chunk reaching the durable hop.
            if not pipeline.await_upstream("f2r", 0):
                self._stream_bail("f2r", record, "durable hop abandoned")
                return
            if pipeline.skipped("f2r"):
                ok = True
                return
            key = engine.store_key(record)
            read_total = record.stored_size(TierLevel.SSD)
            read_sizes = chunk_sizes_for(read_total, pipeline.chunks)
            try:
                reader = engine.ssd.open_get(key, nominal_size=read_total)
            except TransferError as exc:
                self._abandon("f2p", record, f"{type(exc).__name__} at read-back open")
                return
            op = self._op(record)
            with self.telemetry.bus.span(
                "f2r",
                self._tracks["f2r"],
                ckpt=record.ckpt_id,
                bytes=read_total,
                chunks=pipeline.chunks,
                **self._causal(op, "ssd"),
            ) as span:
                try:
                    for i, nbytes in enumerate(read_sizes):
                        if not pipeline.await_upstream("f2r", i):
                            self._stream_bail("f2r", record, "durable hop abandoned")
                            span.add(abandoned=True)
                            return
                        if pipeline.skipped("f2r") or pipeline.skipped("f2p"):
                            ok = True
                            return
                        if pipeline.failed("f2p"):
                            # The writer already abandoned (and counted) the
                            # upgrade; reading for a dead consumer is waste.
                            ok = True
                            return
                        if not pipeline.throttle("f2r", i):
                            raise TransferError("stream interrupted")
                        t0 = engine.clock.now()
                        pipeline.enter_chunk()
                        try:
                            with op.stage(
                                "read-back",
                                CAT_TRANSFER,
                                track=self._tracks["f2r"],
                                tier="ssd",
                            ):
                                self._retrying(
                                    "f2p",
                                    record,
                                    lambda nb=nbytes: reader.read(
                                        nb, request=self._request(record)
                                    ),
                                )
                        finally:
                            pipeline.exit_chunk()
                        self._chunk_span("f2r", "ssd", record, i, nbytes, t0)
                        pipeline.publish("f2r", i)
                except TransferError:
                    span.add(abandoned=True)
                    self._abandon("f2p", record, "read-back cancelled mid-transfer")
                    return
            pipeline.finish("f2r")
            ok = True
        finally:
            if not ok:
                pipeline.fail("f2r")
            if pipeline.release():
                self._account_stream(pipeline)

    def _stream_f2p(self, record: "CheckpointRecord", pipeline: ChunkPipeline) -> None:
        """Streamed PFS upgrade: consume read-back chunks, charge the PFS
        per chunk, commit-at-end — overlapping the durable hop *and* the
        SSD read-back still streaming chunk *i+1*."""
        engine = self.engine
        ok = False
        try:
            if engine.crashed.is_set():
                return
            if pipeline.skipped("f2p"):
                ok = True
                return
            op = self._op(record)
            op.fill("flush-queue", track=self._tracks["f2p"])
            with engine.monitor:
                if record.discarded:
                    self._abandon("f2p", record, "discarded before PFS flush")
                    return
            pfs = engine.pfs
            if pfs is None:
                ok = True
                return
            if engine.resilient and not engine.health.allow("pfs"):
                self._abandon("f2p", record, "pfs circuit breaker open")
                return
            # The read-back's opening chunk implies the producer preamble
            # ran, so the physical payload and stored sizes are settled.
            if not pipeline.await_upstream("f2p", 0):
                self._stream_bail("f2p", record, "read-back abandoned")
                return
            if pipeline.skipped("f2p"):
                ok = True
                return
            key = engine.store_key(record)
            stored = record.stored_size(TierLevel.PFS)
            wire = record.wire_size(TierLevel.SSD, TierLevel.PFS)
            write_sizes = chunk_sizes_for(stored, pipeline.chunks)
            try:
                writer = pfs.open_put(
                    key,
                    stored,
                    int(pipeline.payload.size),
                    node_id=engine.node_id,
                    cancelled=record.cancel_flush,
                )
            except TransferError as exc:
                self._abandon("f2p", record, f"{type(exc).__name__} at open")
                return
            with self.telemetry.bus.span(
                "f2p",
                self._tracks["f2p"],
                ckpt=record.ckpt_id,
                bytes=wire,
                chunks=pipeline.chunks,
                **self._causal(op, "pfs"),
            ) as span:
                try:
                    for i in range(pipeline.chunks):
                        if not pipeline.await_upstream("f2p", i):
                            writer.abort()
                            self._stream_bail("f2p", record, "read-back abandoned")
                            span.add(abandoned=True)
                            return
                        if pipeline.skipped("f2p"):
                            writer.abort()
                            ok = True
                            return
                        t0 = engine.clock.now()
                        pipeline.enter_chunk()
                        try:
                            self._retrying(
                                "f2p",
                                record,
                                lambda nb=write_sizes[i]: writer.write(
                                    nb, request=self._request(record)
                                ),
                                breaker="pfs",
                            )
                        finally:
                            pipeline.exit_chunk()
                        self._chunk_span("f2p", "pfs", record, i, write_sizes[i], t0)
                        pipeline.publish("f2p", i)
                except TransferError:
                    writer.abort()
                    span.add(abandoned=True)
                    self._abandon("f2p", record, "cancelled mid-transfer")
                    return
                # The upgrade only commits over a blob the durable hop
                # actually landed on the SSD (reroutes skip this stage).
                if not pipeline.await_finished("f2p", "h2f"):
                    writer.abort()
                    span.add(abandoned=True)
                    self._stream_bail("f2p", record, "durable hop failed")
                    return
                if pipeline.skipped("f2p") or pipeline.ssd_outcome != "ssd":
                    writer.abort()
                    ok = True
                    return
                writer.commit(pipeline.payload, meta=engine.recovery_meta(record))

                def reput() -> None:
                    pfs.put(
                        key,
                        pipeline.payload,
                        stored,
                        node_id=engine.node_id,
                        cancelled=record.cancel_flush,
                        meta=engine.recovery_meta(record),
                        request=self._request(record),
                    )

                if engine.resilient and engine.config.resilience.reverify:
                    with op.stage(
                        "reverify", CAT_RETRY, track=self._tracks["f2p"], tier="pfs"
                    ):
                        verified = self._reverify("f2p", record, pfs, "pfs", reput)
                    if not verified:
                        pfs.delete(key)
                        engine._journal_retract(record, "pfs")
                        span.add(abandoned=True)
                        self._abandon("f2p", record, "persistent corruption on PFS put")
                        return
            self._m_bytes["f2p"].inc(wire)
            with engine.monitor:
                record.durable_level = TierLevel.PFS
                if engine._reduced_at(record, TierLevel.PFS):
                    engine.reducer.attach(record, TierLevel.PFS)
                engine.monitor.notify_all()
            engine._journal_commit(record, TierLevel.PFS, "pfs")
            engine._maybe_crash("after-f2p", record)
            pipeline.finish("f2p")
            ok = True
        finally:
            if not ok:
                pipeline.fail("f2p")
            if pipeline.release():
                self._account_stream(pipeline)
