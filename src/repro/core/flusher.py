"""Asynchronous multi-level flushing (T_D2H and T_H2F of Section 4.3.1).

Each process runs two dedicated flush streams:

* ``flush-d2h`` — GPU cache → pinned host cache, over the (shared) PCIe
  link;
* ``flush-h2f`` — host cache → node-local SSD (and optionally onward to the
  parallel file system when persistence beyond the node is requested).

The cascade follows the life cycle: a tier's instance becomes ``FLUSHED``
(evictable) only once the next slower tier holds a complete copy.  The
flusher snapshots the payload out of the source arena *before* the
throttled transfer, so an instance that becomes consumable mid-flight can be
evicted without corrupting the flush (``Instance.flush_pending`` guards the
snapshot window).

Problem condition (5): flushes of discarded checkpoints are abandoned —
``record.cancel_flush`` is checked chunk-wise inside the link transfer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.core.lifecycle import CkptState
from repro.errors import (
    AllocationError,
    ReproError,
    TransferError,
    TransientTransferError,
)
from repro.log import get_logger
from repro.metrics.recorder import OpEvent, OpKind
from repro.sched.request import TransferClass
from repro.telemetry.causal import (
    CAT_REDUCE,
    CAT_REROUTE,
    CAT_RESERVE,
    CAT_RETRY,
    CAT_TRANSFER,
    NULL_OP,
)
from repro.tiers.base import TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord
    from repro.core.engine import ScoreEngine

log = get_logger(__name__)


class Flusher:
    """The flush cascade of one engine."""

    def __init__(self, engine: "ScoreEngine") -> None:
        self.engine = engine
        self.d2h_stream = engine.device.create_stream("flush-d2h")
        self.h2f_stream = engine.device.create_stream("flush-h2f")
        self.f2p_stream = (
            engine.device.create_stream("flush-f2p") if engine.flush_to_pfs else None
        )
        self.repl_stream = (
            engine.device.create_stream("flush-repl")
            if engine.partner_ssd is not None
            else None
        )
        self.abandoned = 0
        self.replicated = 0
        #: self-healing tallies (resilience; all zero when it is off).
        self.retries = 0
        self.rerouted = 0
        self.reflushed = 0
        self.backfilled = 0
        #: records rerouted to the PFS while the SSD was dark, awaiting a
        #: catch-up copy back onto the node-local tier once it returns.
        self._backfill: deque = deque()
        self._backfill_lock = threading.Lock()
        self.telemetry = engine.telemetry
        pid = engine.process_id
        self._tracks = {
            "d2h": f"p{pid}-flush-d2h",
            "d2s": f"p{pid}-flush-d2h",  # GPUDirect rides the d2h stream
            "h2f": f"p{pid}-flush-h2f",
            "f2p": f"p{pid}-flush-f2p",
            "repl": f"p{pid}-flush-repl",
        }
        registry = self.telemetry.registry
        self._m_bytes = {
            stage: registry.counter(f"flush.{stage}.bytes")
            for stage in ("d2h", "d2s", "h2f", "f2p", "repl")
        }
        self._m_abandoned = registry.counter("flush.abandoned")
        self._m_d2h_depth = registry.gauge("flush.d2h.depth")
        self._m_h2f_depth = registry.gauge("flush.h2f.depth")
        self._m_retries = registry.counter("resilience.flush_retries")
        self._m_reroutes = registry.counter("resilience.reroutes")
        self._m_reflush = registry.counter("resilience.reflushes")
        self._m_backfills = registry.counter("resilience.backfills")

    @property
    def backfill_depth(self) -> int:
        """Records durable only on the PFS, awaiting SSD catch-up copies."""
        with self._backfill_lock:
            return len(self._backfill)

    def _track_for(self, stage: str) -> str:
        return self._tracks.get(stage.split("-", 1)[0], self._tracks["h2f"])

    def _op(self, record: "CheckpointRecord"):
        """The record's causal handle (``NULL_OP`` when tracing is off)."""
        op = record.op
        return op if op is not None else NULL_OP

    def _causal(self, op, tier: str) -> dict:
        """Extra span kwargs tying a flush leg to its op, empty when off.

        Gated on ``op.op_id`` so disabled runs emit byte-identical spans
        (the ``tier`` arg must not appear in their args dicts).
        """
        if op.op_id is None:
            return {}
        return {"op_id": op.op_id, "category": CAT_TRANSFER, "tier": tier}

    def _mark_durable(self, record: "CheckpointRecord", op, stage: str, level: TierLevel) -> None:
        """First durable landing: emit the ``durable`` instant + SLO sample."""
        if op.op_id is None:
            return
        engine = self.engine
        now = engine.clock.now()
        op.instant(
            "durable",
            track=self._track_for(stage),
            tier=level.name.lower(),
            level=level.name,
        )
        if engine.slo is not None:
            engine.slo.observe_durability(now, now - op.start, op_id=op.op_id)

    def _abandon(self, stage: str, record: "CheckpointRecord", reason: str) -> None:
        """Count + trace + log one abandoned flush leg (monitor NOT required)."""
        self.abandoned += 1
        self._m_abandoned.inc()
        self.telemetry.bus.instant(
            "flush-abandoned",
            self._tracks[stage],
            op_id=self._op(record).op_id,
            ckpt=record.ckpt_id,
            reason=reason,
        )
        log.debug(
            "p%d: abandoning %s flush of checkpoint %d (%s)",
            self.engine.process_id,
            stage,
            record.ckpt_id,
            reason,
        )

    def schedule(self, record: "CheckpointRecord") -> None:
        """Queue the D2H (or GPUDirect D2S) leg after the GPU write."""
        with self.engine.monitor:
            record.instance(TierLevel.GPU).flush_pending = True
        if self.engine.gpudirect:
            self.d2h_stream.submit(
                lambda: self._flush_d2s(record), label=f"d2s-{record.ckpt_id}"
            )
        else:
            self.d2h_stream.submit(
                lambda: self._flush_d2h(record), label=f"d2h-{record.ckpt_id}"
            )
        self._m_d2h_depth.set(self.d2h_stream.depth)

    def _request(self, record: "CheckpointRecord"):
        """QoS tag for one flush leg (None when scheduling is off).

        The record's ``cancel_flush`` event doubles as the request's
        cancellation channel, so abandonment (condition (5)) interrupts a
        leg whether it is mid-transfer or still queued in an arbiter.
        """
        return self.engine._sched_request(
            TransferClass.CASCADE_FLUSH, cancel_event=record.cancel_flush
        )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for the whole cascade to settle (the paper's WAIT variant).

        ``timeout`` is in wall-clock seconds (callers convert nominal time
        via ``clock.to_real``); returns ``False`` when any stream still has
        work in flight at the deadline, ``True`` once everything drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for _ in range(2):
            # Two passes: a d2h item may have enqueued h2f (and onward)
            # work after the first downstream sync.  Each pass also gives
            # rerouted records a chance to backfill onto a healed SSD.
            self._drain_backfill()
            for stream in (
                self.d2h_stream,
                self.h2f_stream,
                self.repl_stream,
                self.f2p_stream,
            ):
                if stream is None:
                    continue
                if deadline is None:
                    stream.synchronize()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not stream.synchronize(timeout=remaining):
                    return False
        return True

    def close(self) -> None:
        self.d2h_stream.close(drain=True)
        self.h2f_stream.close(drain=True)
        if self.repl_stream is not None:
            self.repl_stream.close(drain=True)
        if self.f2p_stream is not None:
            self.f2p_stream.close(drain=True)

    # -- self-healing machinery ----------------------------------------------
    def _retrying(self, stage: str, record: "CheckpointRecord", fn, breaker=None):
        """Run one flush leg, retrying injected transient faults.

        A plain call when resilience is off — the
        :class:`TransientTransferError` then propagates into the stage's
        historical ``TransferError`` handling, so disabled behavior is
        unchanged.  Each attempt feeds the endpoint's circuit breaker when
        ``breaker`` names one; exponential backoff with deterministic jitter
        is charged on the virtual clock.
        """
        engine = self.engine
        policy = engine.retry_policy
        attempt = 0
        while True:
            try:
                result = fn()
            except TransientTransferError:
                if breaker is not None:
                    engine.health.failure(breaker)
                if (
                    policy is None
                    or attempt >= policy.budget("CASCADE_FLUSH")
                    or record.cancel_flush.is_set()
                    or engine.crashed.is_set()
                ):
                    raise
                delay = policy.backoff(attempt, stage, record.ckpt_id)
                self.retries += 1
                self._m_retries.inc()
                op = self._op(record)
                self.telemetry.bus.instant(
                    "flush-retry",
                    self._track_for(stage),
                    op_id=op.op_id,
                    ckpt=record.ckpt_id,
                    stage=stage,
                    attempt=attempt,
                    delay=delay,
                )
                with op.stage(
                    "backoff", CAT_RETRY, track=self._track_for(stage), leg=stage
                ):
                    engine.clock.sleep(delay)
                attempt += 1
                continue
            if breaker is not None:
                engine.health.success(breaker)
            return result

    def _reverify(self, stage: str, record: "CheckpointRecord", store, breaker, reput) -> bool:
        """Post-flush CRC re-verification with bounded re-flush.

        Scrubs the just-written blob against the pristine CRC stamped at
        put() time; a mismatch (injected at-rest corruption) deletes the
        blob and re-puts it from the in-hand pristine payload, twice at
        most.  Returns ``True`` once the stored copy verifies.
        """
        engine = self.engine
        key = engine.store_key(record)
        for attempt in range(2):
            if store.verify(key):
                return True
            self.reflushed += 1
            self._m_reflush.inc()
            self.telemetry.bus.instant(
                "flush-reverify",
                self._track_for(stage),
                op_id=self._op(record).op_id,
                ckpt=record.ckpt_id,
                stage=stage,
                tier=getattr(store, "_track", "pfs"),
                attempt=attempt,
            )
            log.warning(
                "p%d: %s flush of checkpoint %d failed CRC verification; "
                "re-flushing",
                engine.process_id, stage, record.ckpt_id,
            )
            store.delete(key)
            try:
                self._retrying(stage, record, reput, breaker=breaker)
            except TransferError:
                return False
        return store.verify(key)

    def _durable_ssd_put(self, stage: str, record: "CheckpointRecord", payload):
        """Land ``payload`` durably: the local SSD, or the PFS when the SSD
        is dark (circuit breaker open, outage window) and rerouting is on.

        Returns ``"ssd"`` or ``"pfs"`` naming where the blob landed —
        durability, chunk attachment and the journal entry are already
        committed for ``"pfs"`` (handled by the reroute) — or ``None``
        after abandoning the leg.
        """
        engine = self.engine
        key = engine.store_key(record)
        breaker = engine.ssd._track
        rcfg = engine.config.resilience
        op = self._op(record)
        track = self._track_for(stage)

        def put(copy: bool) -> None:
            engine.ssd.put(
                key,
                payload,
                record.stored_size(TierLevel.SSD),
                cancelled=record.cancel_flush,
                meta=engine.recovery_meta(record),
                copy=copy,
                request=self._request(record),
            )

        if engine.resilient and not engine.health.allow(breaker):
            # Blacklisted: don't feed the dark tier another doomed write.
            if rcfg.reroute and engine.pfs is not None:
                return "pfs" if self._reroute_to_pfs(stage, record, payload) else None
            self._abandon(stage, record, "ssd circuit breaker open")
            return None
        try:
            # First attempt hands ownership of the snapshot to the store
            # (copy=False, the historical zero-copy path); re-puts copy.
            with op.stage("ssd-put", CAT_TRANSFER, track=track, tier="ssd"):
                self._retrying(stage, record, lambda: put(False), breaker=breaker)
        except TransientTransferError as exc:
            if engine.resilient and rcfg.reroute and engine.pfs is not None:
                return "pfs" if self._reroute_to_pfs(stage, record, payload) else None
            self._abandon(stage, record, f"{type(exc).__name__} mid-transfer")
            return None
        except TransferError:
            self._abandon(stage, record, "cancelled mid-transfer")
            return None
        if engine.resilient and rcfg.reverify:
            with op.stage("reverify", CAT_RETRY, track=track, tier="ssd"):
                verified = self._reverify(
                    stage, record, engine.ssd, breaker, lambda: put(True)
                )
            if not verified:
                engine.ssd.delete(key)
                engine._journal_retract(record, breaker)
                if rcfg.reroute and engine.pfs is not None:
                    return "pfs" if self._reroute_to_pfs(stage, record, payload) else None
                self._abandon(stage, record, "persistent corruption on SSD put")
                return None
        return "ssd"

    def _reroute_to_pfs(self, stage: str, record: "CheckpointRecord", payload) -> bool:
        """Reroute a durable put around a dark SSD, straight to the PFS.

        On success the record is durable at PFS (journaled, chunks
        attached) and queued for backfill — a catch-up copy onto the SSD
        once it returns.  Returns ``False`` after abandoning.
        """
        engine = self.engine
        pfs = engine.pfs
        key = engine.store_key(record)
        rcfg = engine.config.resilience
        op = self._op(record)
        self.rerouted += 1
        self._m_reroutes.inc()
        self.telemetry.bus.instant(
            "flush-reroute",
            self._track_for(stage),
            op_id=op.op_id,
            ckpt=record.ckpt_id,
            stage=stage,
        )
        log.info(
            "p%d: rerouting %s flush of checkpoint %d around the dark SSD "
            "to the PFS",
            engine.process_id, stage, record.ckpt_id,
        )

        def put() -> None:
            pfs.put(
                key,
                payload,
                record.stored_size(TierLevel.PFS),
                node_id=engine.node_id,
                cancelled=record.cancel_flush,
                meta=engine.recovery_meta(record),
                request=self._request(record),
            )

        reroute_stage = f"{stage}-reroute"
        try:
            with op.stage(
                "reroute", CAT_REROUTE, track=self._track_for(stage), tier="pfs"
            ):
                self._retrying(reroute_stage, record, put, breaker="pfs")
                if rcfg.reverify and not self._reverify(
                    reroute_stage, record, pfs, "pfs", put
                ):
                    pfs.delete(key)
                    engine._journal_retract(record, "pfs")
                    self._abandon(stage, record, "persistent corruption on PFS reroute")
                    return False
        except TransferError as exc:
            self._abandon(stage, record, f"PFS reroute failed ({type(exc).__name__})")
            return False
        first_durable = False
        with engine.monitor:
            if record.durable_level is None or record.durable_level < TierLevel.PFS:
                first_durable = record.durable_level is None
                record.durable_level = TierLevel.PFS
            if engine._reduced_at(record, TierLevel.PFS):
                engine.reducer.attach(record, TierLevel.PFS)
            engine.monitor.notify_all()
        engine._journal_commit(record, TierLevel.PFS, "pfs")
        if first_durable:
            self._mark_durable(record, op, stage, TierLevel.PFS)
        if rcfg.backfill:
            with self._backfill_lock:
                self._backfill.append(record)
        return True

    def _drain_backfill(self) -> None:
        """Catch-up copies for rerouted records once the SSD returns.

        Pops queued records and copies their PFS blobs back onto the local
        SSD, breaker-gated; a failure (tier still dark) re-queues the record
        and stops until the next drain opportunity.
        """
        engine = self.engine
        if not engine.resilient:
            return
        breaker = engine.ssd._track
        while True:
            with self._backfill_lock:
                if not self._backfill:
                    return
                record = self._backfill.popleft()
            key = engine.store_key(record)
            if record.discarded or engine.crashed.is_set():
                continue
            if engine.ssd.contains(key):
                continue  # already healed by another path
            if engine.faults.hard_outage("ssd") or not engine.health.allow(breaker):
                with self._backfill_lock:
                    self._backfill.appendleft(record)
                return
            op = self._op(record)
            # The op has been idle since its reroute, waiting for the dark
            # SSD to heal: label that whole gap before timing the copy, so
            # its timeline stays gap-free.
            op.fill("await-heal", CAT_REROUTE, track=self._track_for("h2f"))
            backfill_t0 = engine.clock.now()
            try:
                payload, _ = engine.pfs.get(
                    key, node_id=engine.node_id, request=self._request(record)
                )
                engine.ssd.put(
                    key,
                    payload,
                    record.stored_size(TierLevel.SSD),
                    cancelled=record.cancel_flush,
                    meta=engine.recovery_meta(record),
                    request=self._request(record),
                )
            except (TransferError, ReproError):
                engine.health.failure(breaker)
                with self._backfill_lock:
                    self._backfill.appendleft(record)
                return
            engine.health.success(breaker)
            with engine.monitor:
                if engine._reduced_at(record, TierLevel.SSD):
                    engine.reducer.attach(record, TierLevel.SSD)
                engine.monitor.notify_all()
            engine._journal_commit(record, TierLevel.SSD, breaker)
            self.backfilled += 1
            self._m_backfills.inc()
            if op.op_id is not None:
                now = engine.clock.now()
                self.telemetry.bus.complete(
                    "backfill",
                    self._track_for("h2f"),
                    backfill_t0,
                    now - backfill_t0,
                    op_id=op.op_id,
                    category=CAT_REROUTE,
                    tier="ssd",
                )
            self.telemetry.bus.instant(
                "flush-backfill",
                self._track_for("h2f"),
                op_id=op.op_id,
                ckpt=record.ckpt_id,
            )

    # -- stages --------------------------------------------------------------
    def _flush_d2h(self, record: "CheckpointRecord") -> None:
        engine = self.engine
        if engine.crashed.is_set():
            return  # the incarnation is dead; drop queued work
        engine._maybe_crash("before-d2h", record)
        started = engine.clock.now()
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["d2h"])
        with engine.monitor:
            gpu_inst = record.peek(TierLevel.GPU)
            if record.discarded or gpu_inst is None:
                if gpu_inst is not None:
                    gpu_inst.flush_pending = False
                self._abandon("d2h", record, "discarded or already evicted")
                engine.monitor.notify_all()
                return
        # Snapshot the bytes, then release the instance for eviction.
        try:
            payload = engine.gpu_cache.read_payload(record)
        except AllocationError:
            # Discarded and evicted between the check and the snapshot.
            self._abandon("d2h", record, "evicted during payload snapshot")
            return
        with engine.monitor:
            gpu_inst.flush_pending = False
            engine.monitor.notify_all()
        if (
            engine.reducer is not None
            and engine.reducer.site == "host"
            and record.reduction is None
        ):
            # Host-site reduction: encode off the application's critical
            # path, on this flush thread, before the host placement — the
            # host cache and everything below hold the physical form.
            with op.stage("encode", CAT_REDUCE, track=self._tracks["d2h"]):
                engine.reducer.encode(record, payload)
        wire = record.wire_size(TierLevel.GPU, TierLevel.HOST)
        # Claim host cache space (blocks for evictions as needed).
        with op.stage("reserve-host", CAT_RESERVE, track=self._tracks["d2h"]):
            engine.host_cache.reserve(
                record, CkptState.WRITE_IN_PROGRESS, blocking=True
            )
        with self.telemetry.bus.span(
            "d2h",
            self._tracks["d2h"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "pcie"),
        ) as span:
            try:
                self._retrying(
                    "d2h",
                    record,
                    lambda: engine.device.d2h_link.transfer(
                        wire,
                        cancelled=record.cancel_flush,
                        request=self._request(record),
                    ),
                )
            except TransferError:
                span.add(abandoned=True)
                # Abandon: release the half-written host extent.
                engine.host_cache.release(record)
                self._abandon("d2h", record, "cancelled mid-transfer")
                return
        self._m_bytes["d2h"].inc(wire)
        if engine._reduced_at(record, TierLevel.HOST):
            engine.host_cache.write_payload(
                record, engine.reducer.physical_payload(record)
            )
        else:
            engine.host_cache.write_payload(record, payload)
        with engine.monitor:
            host_inst = record.instance(TierLevel.HOST)
            host_inst.transition(CkptState.WRITE_COMPLETE, engine.clock.now())
            host_inst.flush_pending = True
            if engine._reduced_at(record, TierLevel.HOST):
                engine.reducer.attach(record, TierLevel.HOST)
            gpu_now = record.peek(TierLevel.GPU)
            if gpu_now is not None:
                gpu_now.try_transition(CkptState.FLUSHED, engine.clock.now())
            engine.monitor.notify_all()
        engine.recorder.record(
            OpEvent(
                kind=OpKind.FLUSH,
                ckpt_id=record.ckpt_id,
                started_at=started,
                blocked=engine.clock.now() - started,
                nominal_bytes=record.nominal_size,
                source_level=TierLevel.GPU.name,
            )
        )
        engine._maybe_crash("after-d2h", record)
        self.h2f_stream.submit(lambda: self._flush_h2f(record), label=f"h2f-{record.ckpt_id}")
        self._m_h2f_depth.set(self.h2f_stream.depth)

    def _flush_d2s(self, record: "CheckpointRecord") -> None:
        """GPUDirect storage flush: GPU cache → SSD, no host staging."""
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-d2s", record)
        started = engine.clock.now()
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["d2s"])
        with engine.monitor:
            gpu_inst = record.peek(TierLevel.GPU)
            if record.discarded or gpu_inst is None:
                if gpu_inst is not None:
                    gpu_inst.flush_pending = False
                self._abandon("d2s", record, "discarded or already evicted")
                engine.monitor.notify_all()
                return
        try:
            payload = engine.gpu_cache.read_payload(record)
        except AllocationError:
            self._abandon("d2s", record, "evicted during payload snapshot")
            return
        with engine.monitor:
            gpu_inst.flush_pending = False
            engine.monitor.notify_all()
        wire = record.wire_size(TierLevel.GPU, TierLevel.SSD)
        with self.telemetry.bus.span(
            "d2s",
            self._tracks["d2s"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "ssd"),
        ) as span:
            try:
                # The DMA crosses the same PCIe link, then commits to the drive.
                self._retrying(
                    "d2s",
                    record,
                    lambda: engine.device.d2h_link.transfer(
                        wire,
                        cancelled=record.cancel_flush,
                        request=self._request(record),
                    ),
                )
            except TransferError:
                span.add(abandoned=True)
                self._abandon("d2s", record, "cancelled mid-transfer")
                return
            outcome = self._durable_ssd_put("d2s", record, payload)
            if outcome is None:
                span.add(abandoned=True)
                return
            if outcome == "pfs":
                span.add(rerouted=True)
        self._m_bytes["d2s"].inc(wire)
        first_durable = False
        with engine.monitor:
            if outcome == "ssd":
                if record.durable_level is None or record.durable_level < TierLevel.SSD:
                    first_durable = record.durable_level is None
                    record.durable_level = TierLevel.SSD
                if engine._reduced_at(record, TierLevel.SSD):
                    engine.reducer.attach(record, TierLevel.SSD)
            gpu_now = record.peek(TierLevel.GPU)
            if gpu_now is not None:
                gpu_now.try_transition(CkptState.FLUSHED, engine.clock.now())
            engine.monitor.notify_all()
        if outcome == "ssd":
            engine._journal_commit(record, TierLevel.SSD, engine.ssd._track)
            if first_durable:
                self._mark_durable(record, op, "d2s", TierLevel.SSD)
        engine.recorder.record(
            OpEvent(
                kind=OpKind.FLUSH,
                ckpt_id=record.ckpt_id,
                started_at=started,
                blocked=engine.clock.now() - started,
                nominal_bytes=record.nominal_size,
                source_level=TierLevel.GPU.name,
            )
        )
        engine._maybe_crash("after-d2s", record)
        if outcome == "ssd":
            self._drain_backfill()
            if self.f2p_stream is not None:
                self.f2p_stream.submit(
                    lambda: self._flush_f2p(record), label=f"f2p-{record.ckpt_id}"
                )

    def _flush_h2f(self, record: "CheckpointRecord") -> None:
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-h2f", record)
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["h2f"])
        with engine.monitor:
            host_inst = record.peek(TierLevel.HOST)
            if record.discarded or host_inst is None:
                if host_inst is not None:
                    host_inst.flush_pending = False
                self._abandon("h2f", record, "discarded or already evicted")
                engine.monitor.notify_all()
                return
        try:
            payload = engine.host_cache.read_payload(record)
        except AllocationError:
            self._abandon("h2f", record, "evicted during payload snapshot")
            return
        with engine.monitor:
            host_inst.flush_pending = False
            engine.monitor.notify_all()
        wire = record.wire_size(TierLevel.HOST, TierLevel.SSD)
        with self.telemetry.bus.span(
            "h2f",
            self._tracks["h2f"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "ssd"),
        ) as span:
            outcome = self._durable_ssd_put("h2f", record, payload)
            if outcome is None:
                span.add(abandoned=True)
                return
            if outcome == "pfs":
                span.add(rerouted=True)
        self._m_bytes["h2f"].inc(wire)
        first_durable = False
        with engine.monitor:
            if outcome == "ssd":
                if record.durable_level is None or record.durable_level < TierLevel.SSD:
                    first_durable = record.durable_level is None
                    record.durable_level = TierLevel.SSD
                if engine._reduced_at(record, TierLevel.SSD):
                    engine.reducer.attach(record, TierLevel.SSD)
            host_now = record.peek(TierLevel.HOST)
            if host_now is not None:
                host_now.try_transition(CkptState.FLUSHED, engine.clock.now())
            engine.monitor.notify_all()
        if outcome == "ssd":
            engine._journal_commit(record, TierLevel.SSD, engine.ssd._track)
            if first_durable:
                self._mark_durable(record, op, "h2f", TierLevel.SSD)
        engine._maybe_crash("after-h2f", record)
        if outcome == "ssd":
            self._drain_backfill()
            if self.repl_stream is not None:
                self.repl_stream.submit(
                    lambda: self._replicate(record), label=f"repl-{record.ckpt_id}"
                )
            if self.f2p_stream is not None:
                self.f2p_stream.submit(
                    lambda: self._flush_f2p(record), label=f"f2p-{record.ckpt_id}"
                )

    def _replicate(self, record: "CheckpointRecord") -> None:
        """Copy the durable checkpoint to the partner node's SSD."""
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-repl", record)
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["repl"])
        with engine.monitor:
            if record.discarded:
                self._abandon("repl", record, "discarded before replication")
                return
        # Partner replicas are verbatim SSD blobs and stay outside the chunk
        # accounting: the home node owns the recipe, the partner only keeps a
        # byte-copy for node-failure recovery.
        stored = record.stored_size(TierLevel.SSD)

        def copy_to_partner() -> None:
            payload, _ = engine.ssd.get(
                engine.store_key(record), request=self._request(record)
            )
            engine.partner_link.transfer(
                stored,
                cancelled=record.cancel_flush,
                request=self._request(record),
            )
            engine.partner_ssd.put(
                engine.store_key(record),
                payload,
                stored,
                cancelled=record.cancel_flush,
                meta=engine.recovery_meta(record),
                request=self._request(record),
            )

        with self.telemetry.bus.span(
            "repl",
            self._tracks["repl"],
            ckpt=record.ckpt_id,
            bytes=stored,
            **self._causal(op, "fabric"),
        ) as span:
            try:
                self._retrying("repl", record, copy_to_partner)
            except (TransferError, ReproError) as exc:
                span.add(abandoned=True)
                self._abandon("repl", record, f"{type(exc).__name__} during replication")
                return
        self._m_bytes["repl"].inc(stored)
        self.replicated += 1
        engine._journal_commit(record, TierLevel.SSD, engine.partner_ssd._track)
        engine._maybe_crash("after-repl", record)

    def _flush_f2p(self, record: "CheckpointRecord") -> None:
        engine = self.engine
        if engine.crashed.is_set():
            return
        engine._maybe_crash("before-f2p", record)
        op = self._op(record)
        op.fill("flush-queue", track=self._tracks["f2p"])
        with engine.monitor:
            if record.discarded:
                self._abandon("f2p", record, "discarded before PFS flush")
                return
        pfs = engine.pfs
        if pfs is None:
            return
        if engine.resilient and not engine.health.allow("pfs"):
            # The SSD copy is already durable; skip the dark PFS rather
            # than feed its breaker another doomed upgrade write.
            self._abandon("f2p", record, "pfs circuit breaker open")
            return
        key = engine.store_key(record)
        stored = record.stored_size(TierLevel.PFS)
        wire = record.wire_size(TierLevel.SSD, TierLevel.PFS)
        with self.telemetry.bus.span(
            "f2p",
            self._tracks["f2p"],
            ckpt=record.ckpt_id,
            bytes=wire,
            **self._causal(op, "pfs"),
        ) as span:
            try:
                # This SSD read-back shares the read link with demand
                # restores — the QoS tag keeps it behind them.  Retried
                # separately from the PFS write so an SSD failure never
                # counts against the PFS breaker.
                with op.stage(
                    "read-back", CAT_TRANSFER, track=self._tracks["f2p"], tier="ssd"
                ):
                    payload, _ = self._retrying(
                        "f2p",
                        record,
                        lambda: engine.ssd.get(key, request=self._request(record)),
                    )
            except TransferError:
                span.add(abandoned=True)
                self._abandon("f2p", record, "cancelled mid-transfer")
                return

            def put() -> None:
                pfs.put(
                    key,
                    payload,
                    stored,
                    node_id=engine.node_id,
                    cancelled=record.cancel_flush,
                    meta=engine.recovery_meta(record),
                    request=self._request(record),
                )

            try:
                self._retrying("f2p", record, put, breaker="pfs")
            except TransferError:
                span.add(abandoned=True)
                self._abandon("f2p", record, "cancelled mid-transfer")
                return
            if engine.resilient and engine.config.resilience.reverify:
                with op.stage(
                    "reverify", CAT_RETRY, track=self._tracks["f2p"], tier="pfs"
                ):
                    verified = self._reverify("f2p", record, pfs, "pfs", put)
                if not verified:
                    pfs.delete(key)
                    engine._journal_retract(record, "pfs")
                    span.add(abandoned=True)
                    self._abandon("f2p", record, "persistent corruption on PFS put")
                    return
        self._m_bytes["f2p"].inc(wire)
        with engine.monitor:
            record.durable_level = TierLevel.PFS
            if engine._reduced_at(record, TierLevel.PFS):
                engine.reducer.attach(record, TierLevel.PFS)
            engine.monitor.notify_all()
        engine._journal_commit(record, TierLevel.PFS, "pfs")
        engine._maybe_crash("after-f2p", record)
