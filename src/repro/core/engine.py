"""The per-process checkpointing engine ("Score").

One :class:`ScoreEngine` per application process (one process per GPU).  It
owns the process's GPU and host cache buffers, the flush cascade, the
prefetch thread, the restore-order queue and the checkpoint catalog, and
implements the blocking semantics of the problem formulation (Section 2):

* ``checkpoint`` blocks only until the data is copied into the GPU cache;
  flushing to slower tiers proceeds asynchronously;
* ``restore`` is served from the GPU cache when possible; otherwise it
  blocks while the prefetcher promotes the checkpoint level by level;
* restore-order hints drive prefetching and the eviction scores;
* consumed checkpoints become evictable everywhere; when the engine runs
  with ``discard_consumed=True`` their pending flushes are abandoned
  (condition (5)).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.clock import Stopwatch
from repro.config import RuntimeConfig
from repro.core.cache import CacheBuffer
from repro.core.catalog import Catalog, CheckpointRecord
from repro.core.flusher import Flusher
from repro.core.lifecycle import CkptState
from repro.core.prefetcher import Prefetcher
from repro.core.restore_queue import RestoreQueue
from repro.core.scoring import ScorePolicy
from repro.core.streaming import ChunkPipeline, chunk_sizes_for, plan_chunks
from repro.core.sync import Monitor
from repro.errors import (
    BackpressureError,
    CheckpointNotFound,
    EngineClosedError,
    FlushTimeoutError,
    InjectedCrash,
    IntegrityError,
    LifecycleError,
    ReproError,
    TransferError,
    TransientTransferError,
)
from repro.faults.retry import RetryPolicy
from repro.log import get_logger
from repro.metrics.recorder import OpEvent, OpKind, Recorder
from repro.predict.queue import SyntheticRestoreQueue
from repro.predict.runtime import PredictRuntime
from repro.reduce.pipeline import Reducer
from repro.sched.request import TransferClass, TransferRequest
from repro.simgpu.memory import DeviceBuffer, checksum_payload
from repro.analysis.slo import SloMonitor
from repro.telemetry import Telemetry
from repro.telemetry.causal import (
    CAT_JOURNAL,
    CAT_QUEUE,
    CAT_REDUCE,
    CAT_RESERVE,
    CAT_RETRY,
    CAT_TRANSFER,
    NULL_OP,
    OpTracer,
)
from repro.tiers.base import TierLevel
from repro.tiers.topology import ProcessContext

log = get_logger(__name__)


class ScoreEngine:
    """Checkpoint runtime for one process."""

    def __init__(
        self,
        context: ProcessContext,
        recorder: Optional[Recorder] = None,
        eviction_policy=None,
        discard_consumed: bool = False,
        verify_restores: bool = True,
        flush_to_pfs: bool = False,
        prefetch_budget_fraction: float = 0.9,
        prefetch_lookahead: int = 64,
        gpudirect: bool = False,
        partner_replication: bool = False,
    ) -> None:
        self.context = context
        self.config: RuntimeConfig = context.config
        self.clock = context.clock
        self.scale = context.scale
        self.device = context.device
        self.ssd = context.ssd
        self.pfs = context.pfs
        self.process_id = context.process_id
        self.node_id = context.node.node_id
        self.discard_consumed = discard_consumed
        self.verify_restores = verify_restores
        self.flush_to_pfs = flush_to_pfs
        self.prefetch_budget_fraction = prefetch_budget_fraction
        #: GPUDirect storage (the paper's future-work item): flushes move
        #: GPU cache → SSD directly over PCIe DMA, bypassing the host cache;
        #: promotions likewise read SSD → GPU.  The host tier is unused.
        self.gpudirect = gpudirect
        #: VELOC-style partner replication: once durable on the local SSD,
        #: a copy also crosses the fabric to the next node's SSD, so a full
        #: node failure loses nothing (Section 3.1's complementary
        #: resilience strategy).  No-op on single-node clusters.
        self.partner_replication = partner_replication
        cluster = context.node.cluster
        #: shared-link QoS arbitration (no-op fleet unless
        #: ``config.sched.enabled``); transfers are tagged with a
        #: :class:`TransferRequest` via :meth:`_sched_request`.
        self.sched = cluster.sched
        #: fault injection + self-healing: the cluster-wide fault domain,
        #: per-tier circuit breakers, the crash-consistent manifest journal
        #: and the chunk-recipe sidecar.  ``resilient`` gates every handling
        #: path; with it off the engine is bit-identical to the historical
        #: runtime (``tests/test_faults_equivalence.py``).
        self.faults = cluster.faults
        self.health = cluster.health
        self.journal = cluster.journal
        self.recipes = cluster.recipes
        self.resilient = self.config.resilience.enabled
        self.retry_policy = (
            RetryPolicy(self.config.resilience, self.config.faults.seed)
            if self.resilient
            else None
        )
        #: pipelined chunk streaming (``config.stream.enabled``): the flush
        #: cascade and the promote path move in overlapped chunks through
        #: per-checkpoint ring buffers (:mod:`repro.core.streaming`); off,
        #: every hop is the historical store-and-forward whole object.
        self.streaming = bool(self.config.stream.enabled)
        #: set once an injected crash point fires; flush streams drop their
        #: remaining work and public entry points raise
        #: :class:`~repro.errors.InjectedCrash` until re-incarnation.
        self.crashed = threading.Event()
        self.partner_node_id = None
        self.partner_ssd = None
        if partner_replication and len(cluster.nodes) > 1:
            self.partner_node_id = (self.node_id + 1) % len(cluster.nodes)
            self.partner_ssd = cluster.nodes[self.partner_node_id].ssd
            self.partner_link = cluster.internode_link(self.node_id, self.partner_node_id)
        #: distributed checkpoint fabric (None unless ``config.cluster``
        #: enables it): peer-SSD read routing, ring-replica targets, and
        #: PFS write aggregation (:mod:`repro.cluster.fabric`).
        self.fabric = getattr(cluster, "fabric", None)
        #: SSD replica destinations ``(node_id, ssd, link)`` beyond the home
        #: node: the legacy partner pair when ``partner_replication`` asked
        #: for it, else the fabric's ``replica_factor - 1`` ring successors.
        self.replica_targets = []
        if self.partner_ssd is not None:
            self.replica_targets = [
                (self.partner_node_id, self.partner_ssd, self.partner_link)
            ]
        elif self.fabric is not None:
            self.replica_targets = self.fabric.replica_targets(self.node_id)
            if self.replica_targets:
                # Keep the legacy aliases pointing at the first replica so
                # recovery and repair scan it exactly as a partner pair.
                self.partner_node_id, self.partner_ssd, self.partner_link = (
                    self.replica_targets[0]
                )

        self.monitor = Monitor(self.clock)
        self.telemetry: Telemetry = (
            getattr(context, "telemetry", None) or Telemetry.disabled()
        )
        self._app_track = f"p{self.process_id}-app"
        self._lifecycle_track = f"p{self.process_id}-lifecycle"
        if self.fabric is not None:
            # Per-node trace lanes: stamp this engine's p<pid>-* tracks with
            # its node id so Perfetto and `repro analyze` group per node.
            self.telemetry.bus.bind_process(self.process_id, self.node_id)
            # Membership needs the engine list so a node crash can kill
            # every engine the node hosts.
            self.fabric.membership.register_engine(self)
        #: causal tracing (:mod:`repro.telemetry.causal`): when
        #: ``config.analysis.enabled`` (and the bus records), every
        #: checkpoint/restore/prefetch chain gets an op id that rides on all
        #: its spans; otherwise ``ops`` hands out NULL_OP and the runtime is
        #: bit-identical to the pre-causal build.
        self.causal = bool(self.config.analysis.enabled)
        self.ops = OpTracer(self.telemetry.bus, self.process_id, self.causal)
        self.slo: Optional[SloMonitor] = None
        if self.ops.enabled:
            self.slo = SloMonitor(
                self.config.analysis.slo,
                self.telemetry.bus,
                track=f"p{self.process_id}-slo",
                registry=self.telemetry.registry,
            )
        registry = self.telemetry.registry
        self._m_ckpt_ops = registry.counter("engine.checkpoint.ops")
        self._m_ckpt_bytes = registry.counter("engine.checkpoint.bytes")
        self._m_ckpt_blocked = registry.histogram("engine.checkpoint.blocked_s")
        self._m_ckpt_shed = registry.counter("engine.checkpoint.shed")
        self._m_ckpt_backpressure = registry.histogram("engine.checkpoint.backpressure_s")
        self._m_restore_ops = registry.counter("engine.restore.ops")
        self._m_restore_bytes = registry.counter("engine.restore.bytes")
        self._m_restore_blocked = registry.histogram("engine.restore.blocked_s")
        self._m_queue_depth = registry.gauge("prefetch.queue_depth")
        self.catalog = Catalog(on_transition=self._fsm_hook())
        #: online access-pattern prediction (None unless
        #: ``config.predict.enabled``); when present the hint queue is a
        #: SyntheticRestoreQueue whose predicted overlay feeds the
        #: prefetcher and eviction scoring exactly like explicit hints.
        self.predict: Optional[PredictRuntime] = None
        if self.config.predict.enabled:
            self.queue: RestoreQueue = SyntheticRestoreQueue(
                telemetry=self.telemetry
            )
            self.predict = PredictRuntime(
                self.config.predict,
                self.queue,
                telemetry=self.telemetry,
                process_id=self.process_id,
            )
        else:
            self.queue = RestoreQueue(telemetry=self.telemetry)
        self.recorder = recorder or Recorder(process_id=self.process_id)
        #: restores currently promoting on demand; while non-zero the
        #: prefetcher backs off so demand never loses a freed cache slot to
        #: a speculative prefetch (demand-first priority, Section 4.3.2).
        self.demand_active = 0
        self._closed = False

        #: data-reduction pipeline (None unless ``config.reduce.enabled``);
        #: when present, physical (reduced) sizes flow into every placement,
        #: scoring and transfer decision at or below the reduction site.
        self.reducer: Optional[Reducer] = None
        if self.config.reduce.enabled:
            self.reducer = Reducer(
                self.config.reduce,
                self.scale,
                self.clock,
                telemetry=self.telemetry,
                process_id=self.process_id,
                gpudirect=gpudirect,
                # Durable recipe sidecar: with resilience on, encoded chunk
                # recipes survive a crash so recover_history() can rebuild
                # reduced checkpoints.
                recipes=cluster.recipes if self.resilient else None,
            )
        evict_hooks = []
        if self.reducer is not None:
            evict_hooks.append(self._reduce_detach)
        if self.predict is not None:
            evict_hooks.append(self._predict_evict)
        if not evict_hooks:
            on_evict = None
        elif len(evict_hooks) == 1:
            on_evict = evict_hooks[0]
        else:

            def on_evict(record, level, _hooks=tuple(evict_hooks)):
                for hook in _hooks:
                    hook(record, level)
        policy = eviction_policy or self._default_policy()
        gpu_arena = context.gpu_cache_arena()
        host_arena = context.host_cache_arena()
        self.gpu_cache = CacheBuffer(
            name=f"p{self.process_id}-gpu",
            level=TierLevel.GPU,
            arena=gpu_arena,
            monitor=self.monitor,
            clock=self.clock,
            restore_queue=self.queue,
            flush_estimate=lambda n: self.device.d2h_link.estimate(n),
            policy=policy,
            on_evict=on_evict,
            telemetry=self.telemetry,
        )
        self.host_cache = CacheBuffer(
            name=f"p{self.process_id}-host",
            level=TierLevel.HOST,
            arena=host_arena,
            monitor=self.monitor,
            clock=self.clock,
            restore_queue=self.queue,
            flush_estimate=lambda n: self.ssd.write_link.estimate(n),
            policy=policy,
            usable_capacity=context.host_usable_capacity,
            on_evict=on_evict,
            telemetry=self.telemetry,
        )
        if not self.config.shared_cache:
            # Section 4.1.2 ablation: statically split each cache into a
            # flush half and a prefetch half instead of sharing the space.
            self.gpu_cache.write_boundary = self.scale.align(
                self.gpu_cache.table.capacity // 2
            )
            self.host_cache.write_boundary = self.scale.align(
                self.host_cache.table.capacity // 2
            )
        #: dedicated consumer stream for streamed promotions: the storage
        #: read-back (producer, on the promoting thread) overlaps the H2D
        #: crossing chunk-by-chunk through a ChunkPipeline, mirroring the
        #: flush cascade in the opposite direction.
        self.promote_stream = (
            self.device.create_stream("promote-h2d") if self.streaming else None
        )
        self.flusher = Flusher(self)
        self.prefetcher = Prefetcher(self, lookahead=prefetch_lookahead)

    def _default_policy(self):
        name = self.config.eviction_policy
        if name == "score":
            return ScorePolicy()
        from repro.baselines.naive import FifoPolicy, LruPolicy  # cycle-free

        return {"lru": LruPolicy(), "fifo": FifoPolicy()}[name]

    def _fsm_hook(self):
        """Catalog transition hook tracing every FSM edge (Fig. 1); ``None``
        when the trace bus is disabled so instances carry no observer."""
        if not self.telemetry.bus.enabled:
            return None
        bus = self.telemetry.bus
        track = self._lifecycle_track
        causal, pid = self.causal, self.process_id

        def hook(ckpt_id, inst, old, new, now):
            bus.instant(
                "fsm",
                track,
                # FSM edges belong to the checkpoint's own op (its id is
                # deterministic, so no record lookup is needed here).
                op_id=f"c{pid}:{ckpt_id}" if causal else None,
                ckpt=ckpt_id,
                level=inst.level.name,
                **{"from": old.value, "to": new.value},
            )

        return hook

    # -- helpers -----------------------------------------------------------------
    def store_key(self, record: CheckpointRecord):
        # Adopted foreign records keep their home engine's key so every
        # tier store (local, peer, PFS) resolves the same durable blob.
        pid = self.process_id if record.home_pid is None else record.home_pid
        return (pid, record.ckpt_id)

    def durable_store_of(self, record: CheckpointRecord):
        """The object store holding this record's durable copy."""
        if record.durable_store is not None:
            return record.durable_store
        if record.durable_level is TierLevel.PFS:
            return self.pfs
        return self.ssd

    def durable_read_source(self, record: CheckpointRecord):
        """The fastest ``(level, store)`` holding a durable copy.

        The PFS flush leg is a *copy* — the node-SSD object stays behind —
        but it advances ``durable_level`` to PFS for resilience accounting.
        Reads must not follow that promotion: a restore that pays the PFS
        links while the local drive still holds the bytes wastes an order
        of magnitude of bandwidth.
        """
        if record.durable_store is not None:
            return record.durable_level, record.durable_store
        key = self.store_key(record)
        if self.fabric is not None:
            routed = self._fabric_read_source(key)
            if routed is not None:
                return routed
        if self.resilient and self.pfs is not None and self.pfs.contains(key):
            # Self-healing read routing: skip the local SSD while it is
            # missing the blob, inside a hard-outage window, or blacklisted
            # by its circuit breaker (``healthy`` never consumes the
            # write-side half-open probe).
            if (
                not self.ssd.contains(key)
                or self.faults.hard_outage("ssd")
                or not self.health.healthy(self.ssd._track)
            ):
                return TierLevel.PFS, self.pfs
        if record.durable_level is TierLevel.PFS and not self.ssd.contains(key):
            return TierLevel.PFS, self.pfs
        return TierLevel.SSD, self.ssd

    def _fabric_read_source(self, key):
        """Cluster read routing: local SSD, then a peer's SSD, then PFS.

        Returns None when the local drive can serve the read (the legacy
        resolution applies unchanged) or when the fabric has nothing
        better to offer.
        """
        if self.ssd.contains(key):
            dark = self.faults.enabled and self.faults.hard_outage("ssd")
            sick = self.resilient and not self.health.healthy(self.ssd._track)
            if not (dark or sick):
                return None
        peer = self.fabric.peer_source(self.node_id, key)
        if peer is not None:
            return TierLevel.SSD, peer
        if self.pfs is not None and self.pfs.contains(key):
            return TierLevel.PFS, self.pfs
        return None

    def _pfs_put(
        self, key, payload, nominal_size, *, cancelled=None, meta=None, request=None
    ) -> float:
        """Whole-object PFS write, routed through the fabric's per-node
        write aggregator when one exists; the direct legacy call (same
        timings, same op count) otherwise."""
        if self.fabric is not None:
            return self.fabric.pfs_put(
                self.node_id,
                key,
                payload,
                nominal_size,
                cancelled=cancelled,
                meta=meta,
                request=request,
            )
        return self.pfs.put(
            key,
            payload,
            nominal_size,
            node_id=self.node_id,
            cancelled=cancelled,
            meta=meta,
            request=request,
        )

    def adopt_foreign(self, home_pid: int, ckpt_id: int) -> CheckpointRecord:
        """Adopt another engine's durable checkpoint into this catalog.

        The cluster service's cross-node restore entry point: the record
        keeps its home process id (:attr:`CheckpointRecord.home_pid`), so
        every store lookup resolves the owner's blob, and promotion routes
        through the fabric — a healthy peer SSD when one holds the copy,
        the PFS otherwise. Idempotent; raises
        :class:`~repro.errors.CheckpointNotFound` when no durable copy is
        reachable from this node.
        """
        self._require_open()
        key = (home_pid, ckpt_id)
        with self.monitor:
            existing = self.catalog.maybe_get(ckpt_id)
            if existing is not None:
                return existing
        meta = None
        level = None
        if self.ssd.contains(key):
            meta = self.ssd.meta(key) or {}
            nominal = self.ssd.size_of(key)
            level = TierLevel.SSD
        if meta is None and self.fabric is not None:
            peer = self.fabric.peer_source(self.node_id, key)
            if peer is not None:
                meta = peer.meta(key) or {}
                nominal = peer.size_of(key)
                level = TierLevel.SSD
        if meta is None and self.pfs is not None and self.pfs.contains(key):
            meta = self.pfs.meta(key) or {}
            nominal = self.pfs.size_of(key)
            level = TierLevel.PFS
        if meta is None:
            raise CheckpointNotFound(
                f"checkpoint {ckpt_id} of process {home_pid} has no durable "
                f"copy reachable from node {self.node_id}"
            )
        if meta.get("reduced"):
            raise CheckpointNotFound(
                f"reduced checkpoint {ckpt_id} of process {home_pid} cannot "
                "be adopted cross-process (its chunk recipe lives with the "
                "home engine)"
            )
        with self.monitor:
            existing = self.catalog.maybe_get(ckpt_id)
            if existing is not None:
                return existing
            record = self.catalog.create(
                ckpt_id,
                nominal,
                int(meta.get("true_size", nominal)),
                int(meta.get("checksum", 0)),
            )
            record.home_pid = home_pid
            # durable_store stays None: read routing re-resolves the best
            # holder per restore (a peer can die between adopt and read).
            record.durable_level = level
            self.monitor.notify_all()
        return record

    def _require_open(self) -> None:
        if self._closed:
            raise EngineClosedError(f"engine p{self.process_id} is closed")
        if self.crashed.is_set():
            raise InjectedCrash(
                f"engine p{self.process_id} hit an injected crash point; "
                "re-incarnate and recover_history() to continue"
            )

    def _maybe_crash(self, point: str, record: CheckpointRecord) -> None:
        """Trip an armed process-crash point (flush-stage granularity).

        Fires at most once per fault plan; the raised
        :class:`~repro.errors.InjectedCrash` unwinds the flush stage before
        its commit (``before-*``) or after it (``after-*``), modeling a
        process killed between flush stages.
        """
        if self.faults.enabled and self.faults.crash_point(point, record.ckpt_id):
            self.crashed.set()
            with self.monitor:
                self.monitor.notify_all()
            raise InjectedCrash(
                f"p{self.process_id}: injected crash at {point} "
                f"(checkpoint {record.ckpt_id})"
            )

    def _journal_commit(self, record: CheckpointRecord, level: TierLevel, store_id: str) -> None:
        """Append a durable-commit entry after a blob landed on ``store_id``.

        Written *after* the blob is durable: a crash in between leaves at
        worst an unjournaled blob the recovery scan still finds.
        """
        if not (self.resilient and self.config.resilience.journal):
            return
        op = record.op if record.op is not None else NULL_OP
        with op.stage("journal-commit", CAT_JOURNAL, store=store_id, level=level.name):
            self.journal.commit(
                self.process_id,
                record.ckpt_id,
                store=store_id,
                level=level.name,
                nominal_size=record.stored_size(level),
                meta=self.recovery_meta(record),
            )

    def _journal_retract(self, record: CheckpointRecord, store_id: str) -> None:
        """Append a retract entry after deleting ``store_id``'s blob."""
        if not (self.resilient and self.config.resilience.journal):
            return
        op = record.op if record.op is not None else NULL_OP
        with op.stage("journal-retract", CAT_JOURNAL, store=store_id):
            self.journal.retract(self.process_id, record.ckpt_id, store=store_id)

    def _reduce_detach(self, record: CheckpointRecord, level: TierLevel) -> None:
        """Cache eviction hook: release the extent's chunk references."""
        self.reducer.detach(record, level)

    def _predict_evict(self, record: CheckpointRecord, level: TierLevel) -> None:
        """Cache eviction hook: an unconsumed speculative staging that loses
        its cached copy is abandoned speculation (monitor held)."""
        self.predict.on_evict(record, level, self.clock.now())

    def _reduced_at(self, record: CheckpointRecord, level: TierLevel) -> bool:
        """Whether ``level``'s copy of ``record`` is the physical form."""
        reduction = record.reduction
        return reduction is not None and level >= reduction.site_level

    def _sched_request(
        self,
        tclass: TransferClass,
        deadline: Optional[float] = None,
        cancel_event=None,
        op=NULL_OP,
    ) -> Optional[TransferRequest]:
        """A QoS-tagged transfer request, or ``None`` when scheduling is off
        (untagged transfers always take the legacy FIFO path).  ``op`` ties
        the transfer's sched queue wait to its operation's span DAG."""
        if not self.sched.enabled:
            return None
        if cancel_event is not None:
            return TransferRequest(
                tclass,
                engine_id=self.process_id,
                deadline=deadline,
                cancel_event=cancel_event,
                op_id=op.op_id,
            )
        return TransferRequest(
            tclass, engine_id=self.process_id, deadline=deadline, op_id=op.op_id
        )

    # -- write path ------------------------------------------------------------------
    def checkpoint(
        self, ckpt_id: int, buffer: DeviceBuffer, producer: Optional[object] = None
    ) -> float:
        """Checkpoint an application GPU buffer under ``ckpt_id``.

        Blocks until the data sits in the GPU cache (the checkpoint is then
        safe against application overwrites); returns the nominal seconds
        the caller was blocked.

        ``producer`` names the stable identity behind a stream of
        checkpoint versions (a serving session, a revolve state slot) for
        the access-pattern predictor; ignored unless
        ``config.predict.enabled``.

        Under flush-backlog overload, ``SchedConfig`` admission control
        applies first: ``"block"`` waits here until the backlog drains below
        ``max_flush_backlog``, ``"shed"`` raises
        :class:`~repro.errors.BackpressureError` without writing anything.
        """
        self._require_open()
        nominal = self.scale.align(buffer.nominal_size)
        checksum = buffer.checksum()
        started = self.clock.now()
        op = self.ops.checkpoint(ckpt_id, self._app_track)
        with self.telemetry.bus.span(
            "checkpoint", self._app_track, op_id=op.op_id, ckpt=ckpt_id, bytes=nominal
        ):
            with op.stage("admission", CAT_QUEUE):
                backpressured = self._flush_backpressure(ckpt_id)
            with self.monitor:
                record = self.catalog.create(ckpt_id, nominal, buffer.nominal_size, checksum)
                if self.predict is not None:
                    self.predict.on_checkpoint(record, producer, self.clock.now())
            record.op = op
            try:
                encoded = 0.0
                if self.reducer is not None and self.reducer.site == "gpu":
                    # Device-side reduction happens before placement, so the
                    # GPU cache (and everything below) holds the physical form.
                    with op.stage("encode", CAT_REDUCE):
                        encoded = self.reducer.encode(record, buffer.payload)
                with op.stage("reserve-gpu", CAT_RESERVE):
                    waited = self.gpu_cache.reserve(
                        record, CkptState.WRITE_IN_PROGRESS, blocking=True
                    )
                with op.stage("copy-in", CAT_TRANSFER, tier="gpu"):
                    # Device-to-device copy of the protected region into the
                    # cache.
                    copied = self.device.d2d_link.transfer(
                        record.stored_size(TierLevel.GPU)
                    )
                    if self._reduced_at(record, TierLevel.GPU):
                        # The extent models the physical footprint; the
                        # logical bytes live in the reduction image's chunks.
                        self.gpu_cache.write_payload(
                            record, self.reducer.physical_payload(record)
                        )
                    else:
                        self.gpu_cache.write_payload(record, buffer.payload)
                with self.monitor:
                    record.instance(TierLevel.GPU).transition(
                        CkptState.WRITE_COMPLETE, self.clock.now()
                    )
                    if self._reduced_at(record, TierLevel.GPU):
                        self.reducer.attach(record, TierLevel.GPU)
                    self.monitor.notify_all()
                self.flusher.schedule(record)
            except Exception:
                self._rollback_checkpoint(record)
                raise
        # Blocking time = admission wait + encode + eviction wait + cache
        # copy (accounted, so the figure stays exact under aggressive time
        # scaling).
        blocked = backpressured + encoded + (waited or 0.0) + copied
        self._m_ckpt_ops.inc()
        self._m_ckpt_bytes.inc(nominal)
        self._m_ckpt_blocked.observe(blocked)
        self.recorder.record(
            OpEvent(
                kind=OpKind.CHECKPOINT,
                ckpt_id=ckpt_id,
                started_at=started,
                blocked=blocked,
                nominal_bytes=nominal,
            )
        )
        return blocked

    def _rollback_checkpoint(self, record: CheckpointRecord) -> None:
        """Undo a partially-completed ``checkpoint()``.

        Exception safety for the write path: releases the GPU cache slot
        (which detaches any chunk references through the eviction hook),
        rewinds the reducer's delta chain head and recipe, and forgets the
        catalog record — so a failed write leaves no orphaned
        WRITE_IN_PROGRESS extent and no dangling chunk refcounts.
        """
        try:
            self.gpu_cache.release(record)
        except Exception:  # pragma: no cover - teardown must not mask the cause
            log.exception(
                "p%d: checkpoint rollback: GPU slot release failed", self.process_id
            )
        if self.reducer is not None:
            self.reducer.abort(record)
        with self.monitor:
            self.catalog.forget(record.ckpt_id)
            if self.predict is not None:
                self.predict.forget(record.ckpt_id)
            self.monitor.notify_all()
        self.telemetry.bus.instant(
            "checkpoint-rollback", self._app_track, ckpt=record.ckpt_id
        )

    def _flush_backpressure(self, ckpt_id: int) -> float:
        """Engine-level admission control for the write path.

        Bounds how far ``checkpoint()`` may run ahead of the flush cascade:
        when the D2H flush stream holds ``max_flush_backlog`` or more
        pending flushes, either block (returning the nominal seconds spent
        waiting) or shed with :class:`BackpressureError` per
        ``SchedConfig.admission``.  A no-op when scheduling is disabled.
        """
        scfg = self.config.sched
        if not self.sched.enabled or scfg.admission == "off":
            return 0.0
        stream = self.flusher.d2h_stream
        if stream.depth < scfg.max_flush_backlog:
            return 0.0
        if scfg.admission == "shed":
            self._m_ckpt_shed.inc()
            self.telemetry.bus.instant(
                "checkpoint-shed", self._app_track, ckpt=ckpt_id, depth=stream.depth
            )
            raise BackpressureError(
                f"checkpoint {ckpt_id} shed: flush backlog {stream.depth} >= "
                f"{scfg.max_flush_backlog} (admission policy 'shed')"
            )
        with Stopwatch(self.clock) as sw:
            stream.wait_depth_below(scfg.max_flush_backlog)
        self._m_ckpt_backpressure.observe(sw.elapsed)
        return sw.elapsed

    # -- hints ---------------------------------------------------------------------------
    def prefetch_enqueue(self, ckpt_id: int) -> None:
        """Hint: ``ckpt_id`` will be restored after all earlier hints."""
        self._require_open()
        with self.monitor:
            self.queue.enqueue(ckpt_id)
            self._m_queue_depth.set(len(self.queue))
            self.monitor.notify_all()

    def prefetch_start(self) -> None:
        """Allow the prefetcher to start acting on the hints."""
        self._require_open()
        with self.monitor:
            self.queue.start()
            self.monitor.notify_all()

    # -- read path ------------------------------------------------------------------------
    def recover_size(self, ckpt_id: int) -> int:
        """True (unaligned) size of a checkpoint, as the application wrote it."""
        self._require_open()
        with self.monitor:
            return self.catalog.get(ckpt_id).true_size

    def restore(self, ckpt_id: int, buffer: DeviceBuffer) -> float:
        """Restore checkpoint ``ckpt_id`` into an application GPU buffer.

        Returns the nominal seconds the caller was blocked.  The checkpoint
        is marked *consumed* afterwards and will not be served again.
        """
        self._require_open()
        started = self.clock.now()
        op = self.ops.restore(ckpt_id, self._app_track)
        with self.telemetry.bus.span(
            "restore", self._app_track, op_id=op.op_id, parent_id=op.parent_id, ckpt=ckpt_id
        ) as span:
            with self.monitor:
                record = self.catalog.get(ckpt_id)
                if record.consumed:
                    raise LifecycleError(f"checkpoint {ckpt_id} was already consumed")
                distance = self._sample_prefetch_distance(ckpt_id)
                source = self._current_source_level(record)
            span.add(bytes=record.nominal_size, source=source, distance=distance)
            waited = 0.0
            decoded = 0.0
            copied = 0.0
            repairs = 0
            while True:
                # _await_gpu_copy pins the extent (crossover to READ_COMPLETE)
                # before returning, so it cannot be evicted under the copy
                # below.
                waited += self._await_gpu_copy(record, op=op)
                if self._reduced_at(record, TierLevel.GPU):
                    # The GPU extent holds the physical form: reassemble the
                    # logical payload (chunk concat + modeled delta apply and
                    # decode charge) before handing bytes to the application.
                    with op.stage("decode", CAT_REDUCE):
                        payload, step_decoded = self.reducer.reconstruct(
                            record, TierLevel.GPU
                        )
                    decoded += step_decoded
                else:
                    # Copy out to the application buffer (device-to-device).
                    # The GPU instance is READ_COMPLETE (pinned) until
                    # ``_consume`` below, so a zero-copy view of the extent is
                    # safe: this thread is the only one that could force-evict
                    # pinned extents.
                    payload = self.gpu_cache.read_payload(record, copy=False)
                with op.stage("copy-out", CAT_TRANSFER, tier="gpu"):
                    copied += self.device.d2d_link.transfer(record.nominal_size)
                    buffer.copy_from(payload)
                if self.verify_restores:
                    actual = checksum_payload(payload[: buffer.payload.size])
                    if actual != record.checksum:
                        # Self-healing: CRC-scrub the at-rest copies, drop
                        # the corrupt ones, and re-stage from a surviving
                        # pristine copy before giving up.
                        if (
                            self.resilient
                            and repairs < 2
                            and self._repair_corruption(record)
                        ):
                            repairs += 1
                            span.add(repaired=repairs)
                            continue
                        raise IntegrityError(
                            f"checkpoint {ckpt_id} payload corrupt: "
                            f"crc {actual:#010x} != {record.checksum:#010x}"
                        )
                break
            self._consume(record)
        # After the root span closes, so the fill reaches (past) its end and
        # the op's timeline stays gap-free to the last instant.
        op.fill("finalize")
        blocked = waited + decoded + copied
        if self.slo is not None:
            self.slo.observe_restore(self.clock.now(), blocked, op_id=op.op_id)
        self._m_restore_ops.inc()
        self._m_restore_bytes.inc(record.nominal_size)
        self._m_restore_blocked.observe(blocked)
        self.telemetry.registry.counter(f"restore.source.{source.lower()}").inc()
        self.recorder.record(
            OpEvent(
                kind=OpKind.RESTORE,
                ckpt_id=ckpt_id,
                started_at=started,
                blocked=blocked,
                nominal_bytes=record.nominal_size,
                prefetch_distance=distance,
                source_level=source,
            )
        )
        return blocked

    def _repair_corruption(self, record: CheckpointRecord) -> bool:
        """Recover from an at-rest corrupt durable copy found at restore.

        CRC-scrubs every durable copy (local SSD, partner SSD, PFS) against
        the pristine checksum stamped at put() time, deletes the copies
        whose bytes diverged (journaling the retract), drops the cache
        copies hydrated from them, recomputes the durable placement from
        what survived, and re-flushes the repaired tier from an upper-tier
        pristine copy.  Returns ``False`` when nothing is provably corrupt
        at rest or no pristine copy remains — the caller then raises
        :class:`IntegrityError` as before.
        """
        key = self.store_key(record)
        stores = []
        if self.ssd.contains(key):
            stores.append((TierLevel.SSD, self.ssd, self.ssd._track))
        if self.partner_ssd is not None and self.partner_ssd.contains(key):
            stores.append((TierLevel.SSD, self.partner_ssd, self.partner_ssd._track))
        if self.pfs is not None and self.pfs.contains(key):
            stores.append((TierLevel.PFS, self.pfs, "pfs"))
        bad = [entry for entry in stores if not entry[1].verify(key)]
        if not bad or len(bad) == len(stores):
            return False
        for level, store, track in bad:
            store.delete(key)
            if store in (self.ssd, self.pfs):
                # Partner replicas stay outside the chunk accounting.
                if self._reduced_at(record, level):
                    self.reducer.detach(record, level)
            self._journal_retract(record, track)
            self.telemetry.registry.counter("resilience.corruption_repairs").inc()
            self.telemetry.bus.instant(
                "restore-corrupt", self._app_track, ckpt=record.ckpt_id, tier=track
            )
            log.warning(
                "p%d: dropped corrupt at-rest copy of checkpoint %d on %s",
                self.process_id, record.ckpt_id, track,
            )
        # The cache copies were hydrated from a corrupt blob: drop them so
        # the re-promotion below re-reads a pristine durable copy.
        self.gpu_cache.release(record)
        self.host_cache.release(record)
        has_ssd = self.ssd.contains(key)
        has_pfs = self.pfs is not None and self.pfs.contains(key)
        partner_has = self.partner_ssd is not None and self.partner_ssd.contains(key)
        with self.monitor:
            if has_pfs:
                record.durable_level = TierLevel.PFS
            elif has_ssd or partner_has:
                record.durable_level = TierLevel.SSD
            else:
                record.durable_level = None
            record.durable_store = (
                self.partner_ssd if (partner_has and not has_ssd and not has_pfs) else None
            )
            self.monitor.notify_all()
        if has_pfs and not has_ssd:
            # Re-flush the repaired SSD tier from the pristine PFS copy so
            # the node-local fast path heals too (best effort: the PFS copy
            # alone already satisfies durability).
            try:
                payload, _ = self.pfs.get(
                    key,
                    node_id=self.node_id,
                    request=self._sched_request(TransferClass.DEMAND_READ),
                )
                self.ssd.put(
                    key,
                    payload,
                    record.stored_size(TierLevel.SSD),
                    meta=self.recovery_meta(record),
                    request=self._sched_request(TransferClass.CASCADE_FLUSH),
                )
                with self.monitor:
                    if self._reduced_at(record, TierLevel.SSD):
                        self.reducer.attach(record, TierLevel.SSD)
                    self.monitor.notify_all()
                self._journal_commit(record, TierLevel.SSD, self.ssd._track)
            except (TransferError, ReproError):
                log.warning(
                    "p%d: SSD re-flush of repaired checkpoint %d failed; "
                    "reads stay on the PFS",
                    self.process_id, record.ckpt_id,
                )
        return record.durable_level is not None

    def _await_gpu_copy(self, record: CheckpointRecord, op=NULL_OP) -> float:
        """Block until the GPU cache holds a full copy of ``record``;
        returns the nominal seconds charged to the caller.

        Demand promotion runs *inline* in the calling thread: a restore that
        misses the GPU cache promotes the checkpoint level by level itself
        (with blocking reservations and permission to force-evict
        prefetched-but-unconsumed extents — the hint-deviation penalty).
        When the prefetcher is already moving this checkpoint, the restore
        just waits for that transfer to land.

        On success the GPU instance has crossed over to ``READ_COMPLETE``
        (pinned) *within the same monitor section* that observed the copy —
        otherwise a concurrent prefetch reservation could evict a FLUSHED
        extent between the check and the restore's payload read.
        """

        def ready() -> bool:
            inst = record.peek(TierLevel.GPU)
            if inst is None or not inst.has_copy:
                return False
            # Pin: cached write-path instances cross to the read path.
            inst.try_transition(CkptState.READ_COMPLETE, self.clock.now())
            # A speculative staging claimed by a demand restore stops being
            # revocable: the pin must hold through the copy-out below.
            inst.speculative = False
            return True

        with self.monitor:
            if ready():
                return 0.0
            # Pause the prefetcher for the whole demand episode so it never
            # races the restore for freed cache slots or for this record.
            self.demand_active += 1
            if self.predict is not None:
                self.predict.on_demand_miss(record, self.clock.now())
        self.telemetry.bus.instant("gpu-miss", self._app_track, ckpt=record.ckpt_id)
        blocked = 0.0
        try:
            while True:
                step = None
                with self.monitor:
                    if ready():
                        return blocked
                    # Every state change we wait on here (transfers landing,
                    # flushes finishing) ends in a notify_all on this
                    # monitor, so the timeout is only a missed-wakeup guard,
                    # not a polling interval.
                    if record.prefetch_inflight or self._transfer_inflight(record):
                        wait_started = self.clock.now()
                        self.monitor.wait(virtual_timeout=1.0)
                        blocked += self.clock.now() - wait_started
                        op.fill("stall-inflight")
                        continue
                    step = self.promotion_step(record)
                    if step is None:
                        # Only copy is mid-flush; wait for the flusher.
                        wait_started = self.clock.now()
                        self.monitor.wait(virtual_timeout=1.0)
                        blocked += self.clock.now() - wait_started
                        op.fill("stall-flush")
                        continue
                    record.prefetch_inflight = True
                src, dst = step
                seconds: Optional[float] = None
                try:
                    seconds = self.promote_once(
                        record,
                        src,
                        dst,
                        blocking=True,
                        allow_pinned=True,
                        # Highest class: jumps every queue and preempts
                        # in-flight speculative prefetches on the way.
                        request=self._sched_request(TransferClass.DEMAND_READ, op=op),
                        op=op,
                    )
                except TransientTransferError:
                    # Injected transient fault (link fault, tier outage):
                    # back off on the virtual clock before re-resolving so a
                    # dark tier doesn't busy-spin the demand loop.
                    delay = 0.05
                    if self.retry_policy is not None:
                        delay = self.retry_policy.backoff(0, "demand", record.ckpt_id)
                    with op.stage("backoff", CAT_RETRY):
                        self.clock.sleep(delay)
                except ReproError:
                    # The source moved while we promoted; re-resolve.
                    pass
                finally:
                    with self.monitor:
                        record.prefetch_inflight = False
                        self.monitor.notify_all()
                if seconds is not None:
                    blocked += seconds
        finally:
            with self.monitor:
                self.demand_active -= 1
                self.monitor.notify_all()

    def _transfer_inflight(self, record: CheckpointRecord) -> bool:
        """Monitor held: a tier extent of this record is mid-transfer."""
        for inst in record.instances.values():
            if inst.state in (CkptState.READ_IN_PROGRESS, CkptState.WRITE_IN_PROGRESS):
                return True
        return False

    # -- promotion machinery (shared with the prefetcher) ---------------------
    def promotion_step(self, record: CheckpointRecord):
        """Monitor held: next one-level promotion toward the GPU, or None."""
        gpu_inst = record.peek(TierLevel.GPU)
        if gpu_inst is not None and (
            gpu_inst.has_copy or gpu_inst.state is CkptState.READ_IN_PROGRESS
        ):
            return None
        host_inst = record.peek(TierLevel.HOST)
        if host_inst is not None and host_inst.has_copy:
            return (TierLevel.HOST, TierLevel.GPU)
        if host_inst is not None:
            return None  # host extent in flight (being written or promoted)
        if record.durable_level is not None:
            src, _ = self.durable_read_source(record)
            if self.gpudirect:
                # GPUDirect reads pull straight from storage into HBM.
                return (src, TierLevel.GPU)
            return (src, TierLevel.HOST)
        return None  # only copy is mid-flush; the flusher will land it

    def promote_once(
        self,
        record: CheckpointRecord,
        src: TierLevel,
        dst: TierLevel,
        blocking: bool,
        allow_pinned: bool,
        request: Optional[TransferRequest] = None,
        op=NULL_OP,
        speculative: bool = False,
    ) -> Optional[float]:
        """Move ``record`` one level toward the GPU.  Monitor NOT held.

        Returns the accounted nominal seconds, or ``None`` when a
        non-blocking reservation could not claim space.  ``request`` tags
        the underlying link transfers for QoS arbitration; a preempted or
        shed transfer releases its reservation and raises
        (:class:`TransferError` / :class:`~repro.errors.AdmissionError`).
        ``op`` attributes the reserve/read/decode stages to the demanding
        restore (or the prefetch chain) when causal tracing is on.
        ``speculative`` marks the landed extents as revocable predicted
        stagings rather than pinned hinted prefetches.
        """
        if (
            self.streaming
            and self.config.stream.prefetch
            and src in (TierLevel.SSD, TierLevel.PFS)
        ):
            result = self._promote_streamed(
                record, src, dst, blocking, allow_pinned, request, op,
                speculative=speculative,
            )
            if result is not NotImplemented:
                return result
        if dst == TierLevel.GPU and src in (TierLevel.SSD, TierLevel.PFS):
            # GPUDirect storage read: SSD/PFS → HBM over PCIe DMA.
            with op.stage("reserve-gpu", CAT_RESERVE):
                waited = self.gpu_cache.reserve(
                    record,
                    CkptState.READ_IN_PROGRESS,
                    blocking=blocking,
                    allow_pinned=allow_pinned,
                    speculative=speculative,
                )
            if waited is None:
                return None
            try:
                src, store = self.durable_read_source(record)
                with op.stage(
                    "promote", CAT_TRANSFER, tier=src.name.lower(), dst=dst.name
                ):
                    if src == TierLevel.PFS:
                        payload, read_seconds = store.get(
                            self.store_key(record), node_id=self.node_id, request=request
                        )
                    else:
                        payload, read_seconds = store.get(
                            self.store_key(record), request=request
                        )
                    seconds = waited + read_seconds
                    seconds += self.device.h2d_link.transfer(
                        record.wire_size(src, TierLevel.GPU), request=request
                    )
            except Exception:
                self._release_reservation(self.gpu_cache, record, TierLevel.GPU)
                raise
            self.gpu_cache.write_payload(record, payload)
            with self.monitor:
                record.instance(TierLevel.GPU).transition(
                    CkptState.READ_COMPLETE, self.clock.now()
                )
                if self._reduced_at(record, TierLevel.GPU):
                    self.reducer.attach(record, TierLevel.GPU)
                self.monitor.notify_all()
            return seconds
        if dst == TierLevel.GPU:
            with op.stage("reserve-gpu", CAT_RESERVE):
                waited = self.gpu_cache.reserve(
                    record,
                    CkptState.READ_IN_PROGRESS,
                    blocking=blocking,
                    allow_pinned=allow_pinned,
                    speculative=speculative,
                )
            if waited is None:
                return None
            # Pin the host source extent for the (short) payload read so
            # eviction cannot reclaim it underneath us; if it vanished
            # while we were reserving, release the reservation and let the
            # caller re-resolve the source level.
            with self.monitor:
                host_inst = record.peek(TierLevel.HOST)
                if host_inst is None or not host_inst.has_copy:
                    self.gpu_cache.release(record)
                    raise TransferError(
                        f"host copy of checkpoint {record.ckpt_id} vanished "
                        "before promotion"
                    )
                host_inst.read_pinned += 1
            decoded = 0.0
            try:
                if self._reduced_at(record, TierLevel.HOST) and not self._reduced_at(
                    record, TierLevel.GPU
                ):
                    # Host-site reduction: decode on the host before the
                    # PCIe crossing, so the GPU cache holds logical bytes
                    # and the wire below moves them at logical size.
                    with op.stage("decode", CAT_REDUCE):
                        payload, decoded = self.reducer.reconstruct(
                            record, TierLevel.HOST
                        )
                else:
                    # Zero-copy: move the bytes host-arena → GPU-arena
                    # through a read-only view while the host extent is
                    # pinned.  The GPU extent is still READ_IN_PROGRESS, so
                    # the early landing is unobservable; the simulated
                    # transfer below charges the time.
                    payload = self.host_cache.read_payload(record, copy=False)
                self.gpu_cache.write_payload(record, payload)
            finally:
                with self.monitor:
                    host_inst.read_pinned -= 1
                    self.monitor.notify_all()
            try:
                with op.stage("promote", CAT_TRANSFER, tier="pcie", dst=dst.name):
                    seconds = waited + decoded + self.device.h2d_link.transfer(
                        record.wire_size(TierLevel.HOST, TierLevel.GPU), request=request
                    )
            except TransferError:
                # Preempted (or cancelled) mid-promotion: the reserved —
                # and eagerly written — GPU extent is released for reuse.
                self._release_reservation(self.gpu_cache, record, TierLevel.GPU)
                raise
            with self.monitor:
                record.instance(TierLevel.GPU).transition(
                    CkptState.READ_COMPLETE, self.clock.now()
                )
                if self._reduced_at(record, TierLevel.GPU):
                    self.reducer.attach(record, TierLevel.GPU)
                self.monitor.notify_all()
            return seconds
        with op.stage("reserve-host", CAT_RESERVE):
            waited = self.host_cache.reserve(
                record,
                CkptState.READ_IN_PROGRESS,
                blocking=blocking,
                allow_pinned=allow_pinned,
                speculative=speculative,
            )
        if waited is None:
            return None
        try:
            src, store = self.durable_read_source(record)
            with op.stage("promote", CAT_TRANSFER, tier=src.name.lower(), dst=dst.name):
                if src == TierLevel.PFS:
                    payload, read_seconds = store.get(
                        self.store_key(record), node_id=self.node_id, request=request
                    )
                else:
                    payload, read_seconds = store.get(
                        self.store_key(record), request=request
                    )
        except Exception:
            self._release_reservation(self.host_cache, record, TierLevel.HOST)
            raise
        self.host_cache.write_payload(record, payload)
        with self.monitor:
            record.instance(TierLevel.HOST).transition(
                CkptState.READ_COMPLETE, self.clock.now()
            )
            if self._reduced_at(record, TierLevel.HOST):
                self.reducer.attach(record, TierLevel.HOST)
            self.monitor.notify_all()
        return waited + read_seconds

    def _promote_streamed(
        self,
        record: CheckpointRecord,
        src: TierLevel,
        dst: TierLevel,
        blocking: bool,
        allow_pinned: bool,
        request: Optional[TransferRequest],
        op=NULL_OP,
        speculative: bool = False,
    ):
        """Streamed promotion off a storage tier: the store read-back and
        the PCIe H2D crossing overlap chunk-by-chunk (the flush cascade run
        backwards).  With ``dst == HOST`` the promotion is *fused*: the GPU
        extent is claimed up front and both levels land from one streamed
        read, so a hinted checkpoint reaches the GPU in ``max(read, h2d)``
        instead of ``read + h2d``.  Returns ``NotImplemented`` to route the
        caller onto the legacy store-and-forward path (transfer too small,
        decode boundary in the way, or a non-blocking GPU claim lost the
        race), ``None`` when a non-blocking reservation could not claim
        space, else the accounted nominal seconds.
        """
        fused = dst == TierLevel.HOST
        if fused and self._reduced_at(record, TierLevel.HOST) and not self._reduced_at(
            record, TierLevel.GPU
        ):
            # The host-site decode sits between the two hops; the fused
            # stream has no host staging step to decode at.
            return NotImplemented
        scfg = self.config.stream
        src_now, store = self.durable_read_source(record)
        read_nominal = record.stored_size(src_now)
        sizes = plan_chunks(
            read_nominal, scfg.stream_chunk_bytes, scfg.min_stream_chunks
        )
        if sizes is None or self.promote_stream is None:
            return NotImplemented
        h2d_wire = record.wire_size(
            src_now if dst == TierLevel.GPU else TierLevel.HOST, TierLevel.GPU
        )
        h2d_sizes = chunk_sizes_for(h2d_wire, len(sizes))
        with op.stage("reserve-gpu", CAT_RESERVE):
            gpu_waited = self.gpu_cache.reserve(
                record,
                CkptState.READ_IN_PROGRESS,
                blocking=blocking,
                allow_pinned=allow_pinned,
                speculative=speculative,
            )
        if gpu_waited is None:
            # Prefetch lost the GPU claim: fall back to the plain one-level
            # hop rather than shed the whole promotion.
            return NotImplemented if fused else None
        host_waited = 0.0
        if fused:
            with op.stage("reserve-host", CAT_RESERVE):
                host_waited = self.host_cache.reserve(
                    record,
                    CkptState.READ_IN_PROGRESS,
                    blocking=blocking,
                    allow_pinned=allow_pinned,
                    speculative=speculative,
                )
            if host_waited is None:
                self._release_reservation(self.gpu_cache, record, TierLevel.GPU)
                return None

        pipeline = ChunkPipeline(
            record.ckpt_id,
            len(sizes),
            scfg.ring_chunks,
            self.clock,
            crashed=self.crashed,
        )
        pipeline.add_stage("read")
        pipeline.add_stage("h2d")
        bus = self.telemetry.bus
        prefetch_track = f"p{self.process_id}-prefetch"

        def chunk_span(stage: str, tier: str, chunk: int, nbytes: int, t0: float):
            causal = (
                {"op_id": op.op_id, "category": CAT_TRANSFER, "tier": tier}
                if op.op_id is not None
                else {}
            )
            bus.complete(
                f"{stage}-chunk",
                prefetch_track,
                t0,
                self.clock.now() - t0,
                ckpt=record.ckpt_id,
                chunk=chunk,
                bytes=nbytes,
                **causal,
            )

        def consume() -> None:
            try:
                for i, nbytes in enumerate(h2d_sizes):
                    if not pipeline.await_upstream("h2d", i):
                        raise TransferError("streamed promotion abandoned")
                    t0 = self.clock.now()
                    pipeline.enter_chunk()
                    try:
                        self.device.h2d_link.transfer(nbytes, request=request)
                    finally:
                        pipeline.exit_chunk()
                    chunk_span("h2d", "pcie", i, nbytes, t0)
                    pipeline.publish("h2d", i)
                pipeline.finish("h2d")
            except BaseException:
                pipeline.fail("h2d")
                raise

        consumer_error: Optional[BaseException] = None
        try:
            with op.stage(
                "promote", CAT_TRANSFER, tier=src_now.name.lower(), dst=dst.name,
                chunks=pipeline.chunks,
            ):
                if src_now == TierLevel.PFS:
                    reader = store.open_get(
                        self.store_key(record), node_id=self.node_id, request=request
                    )
                else:
                    reader = store.open_get(self.store_key(record), request=request)
                read_sizes = chunk_sizes_for(reader.nominal_size, pipeline.chunks)
                event = self.promote_stream.submit(
                    consume, label=f"h2d-{record.ckpt_id}"
                )
                try:
                    for i, nbytes in enumerate(read_sizes):
                        if not pipeline.throttle("read", i):
                            raise TransferError("streamed promotion interrupted")
                        t0 = self.clock.now()
                        pipeline.enter_chunk()
                        try:
                            reader.read(nbytes)
                        finally:
                            pipeline.exit_chunk()
                        chunk_span("read", src_now.name.lower(), i, nbytes, t0)
                        pipeline.publish("read", i)
                    payload, _ = reader.finish()
                    pipeline.payload = payload
                    pipeline.finish("read")
                except BaseException:
                    pipeline.fail("read")
                    raise
                finally:
                    # The consumer owns h2d charges; settle it either way so
                    # reservations are never released under a live transfer.
                    try:
                        event.wait()
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        consumer_error = exc
        except BaseException:
            if fused:
                self._release_reservation(self.host_cache, record, TierLevel.HOST)
            self._release_reservation(self.gpu_cache, record, TierLevel.GPU)
            raise
        if fused:
            # Host landing first: it is the durable staging copy and must be
            # consistent before the GPU extent becomes consumable.
            self.host_cache.write_payload(record, payload)
            with self.monitor:
                record.instance(TierLevel.HOST).transition(
                    CkptState.READ_COMPLETE, self.clock.now()
                )
                if self._reduced_at(record, TierLevel.HOST):
                    self.reducer.attach(record, TierLevel.HOST)
                self.monitor.notify_all()
        if consumer_error is not None:
            # Preempted (or shed) mid-crossing: the host copy — when fused —
            # stays (mirroring the two-step path where the first hop had
            # already landed), the GPU claim is rolled back.
            self._release_reservation(self.gpu_cache, record, TierLevel.GPU)
            raise consumer_error
        self.gpu_cache.write_payload(record, payload)
        with self.monitor:
            record.instance(TierLevel.GPU).transition(
                CkptState.READ_COMPLETE, self.clock.now()
            )
            if self._reduced_at(record, TierLevel.GPU):
                self.reducer.attach(record, TierLevel.GPU)
            self.monitor.notify_all()
        return gpu_waited + host_waited + pipeline.active_s

    def _release_reservation(self, cache, record: CheckpointRecord, level: TierLevel) -> None:
        """Undo a READ_IN_PROGRESS reservation whose transfer failed."""
        cache.release(record)

    def _current_source_level(self, record: CheckpointRecord) -> str:
        fastest = record.fastest_cached_level()
        if fastest is not None:
            return fastest.name
        if record.durable_level is not None:
            return self.durable_read_source(record)[0].name
        return "IN_FLIGHT"

    def _sample_prefetch_distance(self, ckpt_id: int) -> int:
        """Successive upcoming hints already staged on the GPU (Fig. 7)."""
        count = 0
        for upcoming_id in self.queue.upcoming(self.prefetcher.lookahead):
            if upcoming_id == ckpt_id:
                continue
            record = self.catalog.maybe_get(upcoming_id)
            if record is None:
                break
            inst = record.peek(TierLevel.GPU)
            if inst is not None and inst.has_copy:
                count += 1
            else:
                break
        return count

    def _consume(self, record: CheckpointRecord) -> None:
        with self.monitor:
            record.consumed = True
            now = self.clock.now()
            for inst in list(record.instances.values()):
                if inst.state is CkptState.WRITE_COMPLETE:
                    inst.try_transition(CkptState.READ_COMPLETE, now)
                inst.try_transition(CkptState.CONSUMED, now)
            self.queue.consume(record.ckpt_id)
            if self.predict is not None:
                # Scores a pending speculation as a hit and re-ranks the
                # predicted overlay from the freshest history.
                self.predict.on_restore(record, now)
            self._m_queue_depth.set(len(self.queue))
            if self.discard_consumed:
                # Condition (5): pending flushes of a discarded checkpoint
                # need not complete — cancel in-flight transfers and release
                # the snapshot guards so the extents evict immediately.
                record.discarded = True
                record.cancel_flush.set()
                for inst in record.instances.values():
                    inst.flush_pending = False
            self.monitor.notify_all()

    # -- restart recovery --------------------------------------------------------------------
    def recovery_meta(self, record: CheckpointRecord) -> dict:
        """Metadata persisted next to durable copies for restart recovery."""
        meta = {
            "true_size": record.true_size,
            "checksum": record.checksum,
        }
        if record.reduction is not None:
            # The blob is the physical form; reassembly needs the chunk
            # recipe (persisted in the durable RecipeStore sidecar when
            # resilience is on, otherwise only in this incarnation's
            # reducer).
            meta["reduced"] = True
            meta["logical_size"] = record.nominal_size
        return meta

    def recover_history(self) -> int:
        """Rebuild the catalog from the durable tiers after a restart.

        With resilience on, the crash-consistent manifest journal is
        replayed first (commit entries are validated against the stores, so
        a journal entry whose blob vanished is ignored); the store scan then
        fills in anything the journal missed — the node-local SSD, partner
        SSDs holding replicas, and the PFS.  Reduced checkpoints are
        rebuilt from the durable chunk-recipe sidecar and re-attached at
        every durable tier; without a recipe (or without resilience) they
        are skipped with a warning, as before.  Returns the number of
        checkpoints recovered; already-known ids are skipped, so calling
        this on a warm engine is a no-op.
        """
        self._require_open()
        recovered = 0
        sources = [(TierLevel.SSD, self.ssd, self.ssd._track)]
        for node in self.context.node.cluster.nodes:
            if node.ssd is not self.ssd:
                # Partner replicas on other nodes' SSDs are recoverable too.
                sources.append((TierLevel.SSD, node.ssd, node.ssd._track))
        if self.pfs is not None:
            sources.append((TierLevel.PFS, self.pfs, "pfs"))
        store_map = {track: (level, store) for level, store, track in sources}
        with self.monitor:
            if self.resilient and self.config.resilience.journal:
                for ckpt_id, locations in sorted(
                    self.journal.entries_for(self.process_id).items()
                ):
                    for store_id in sorted(locations):
                        resolved = store_map.get(store_id)
                        if resolved is None:
                            continue
                        level, store = resolved
                        entry = locations[store_id]
                        if self._adopt_durable(
                            ckpt_id, level, store, entry.get("meta") or {}
                        ):
                            recovered += 1
            for level, store, _track in sources:
                for key in sorted(store.keys_for_process(self.process_id)):
                    if self._adopt_durable(
                        key[1], level, store, store.meta(key) or {}
                    ):
                        recovered += 1
            self.monitor.notify_all()
        return recovered

    def _adopt_durable(self, ckpt_id: int, level: TierLevel, store, meta: dict) -> bool:
        """Monitor held: adopt one durable blob into the catalog.

        Returns ``True`` when a new record was created; an already-adopted
        checkpoint only gets its reduced image re-attached at this level
        (blobs and chunk references must agree — the validator checks it).
        """
        key = (self.process_id, ckpt_id)
        if not store.contains(key):
            return False  # journal entry whose blob is gone: not trusted
        reduced = bool(meta.get("reduced"))
        home = store in (self.ssd, self.pfs)
        record = self.catalog.maybe_get(ckpt_id)
        if record is not None:
            if reduced and record.reduction is not None and home:
                self.reducer.attach(record, level)
            return False
        nominal = store.size_of(key)
        if reduced:
            image = (
                self.recipes.load(self.process_id, ckpt_id)
                if (self.resilient and self.reducer is not None)
                else None
            )
            if image is None:
                log.warning(
                    "p%d: skipping reduced checkpoint %d on %s during "
                    "recovery (no durable chunk recipe)",
                    self.process_id, ckpt_id, level.name,
                )
                return False
            logical = int(meta.get("logical_size", image.logical_size))
            record = self.catalog.create(
                ckpt_id,
                logical,
                int(meta.get("true_size", logical)),
                int(meta.get("checksum", 0)),
            )
            record.physical_size = image.physical_size
            record.reduction = image
            if home:
                self.reducer.attach(record, level)
        else:
            record = self.catalog.create(
                ckpt_id,
                nominal,
                int(meta.get("true_size", nominal)),
                int(meta.get("checksum", 0)),
            )
        record.durable_level = level
        if store is not self.ssd and level is TierLevel.SSD:
            record.durable_store = store  # a partner node's SSD
        return True

    # -- maintenance ------------------------------------------------------------------------
    def wait_for_flushes(self, timeout: Optional[float] = None) -> float:
        """Block until every pending flush reached its final tier; returns
        the nominal seconds spent waiting (the paper's ~70 s/rank gap
        between the checkpoint and restore phases in the WAIT variant).

        ``timeout`` (nominal seconds) bounds the wait: on expiry a
        :class:`FlushTimeoutError` is raised whose message carries the
        flush-stream depths, the shared-link byte backlog, retry/breaker
        state and — when QoS scheduling is on — the per-link arbiter queue
        snapshots, instead of the historical behaviour of hanging with no
        indication of which stage stalled.  When ``timeout`` is omitted the
        ``RuntimeConfig.flush_wait_timeout`` default applies (``None`` →
        wait forever).
        """
        self._require_open()
        if timeout is None:
            timeout = self.config.flush_wait_timeout
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative timeout: {timeout}")
        with Stopwatch(self.clock) as sw:
            drained = self.flusher.drain(
                timeout=None if timeout is None else self.clock.to_real(timeout)
            )
        if not drained:
            raise FlushTimeoutError(self._flush_stall_diagnostics(timeout))
        return sw.elapsed

    def _flush_stall_diagnostics(self, timeout: float) -> str:
        """One-line stall report for :class:`FlushTimeoutError`."""
        flusher = self.flusher
        depths = [
            f"d2h={flusher.d2h_stream.depth}",
            f"h2f={flusher.h2f_stream.depth}",
        ]
        if flusher.f2p_stream is not None:
            depths.append(f"f2p={flusher.f2p_stream.depth}")
        if flusher.repl_stream is not None:
            depths.append(f"repl={flusher.repl_stream.depth}")
        links = [self.device.d2h_link, self.ssd.write_link, self.ssd.read_link]
        pending = ", ".join(
            f"{link.name}={link.pending_bytes}B" for link in links if link.pending_bytes
        )
        message = (
            f"p{self.process_id}: flushes still pending after {timeout:g}s "
            f"(nominal); stream depths [{', '.join(depths)}]; "
            f"in-flight link bytes [{pending or 'none'}]"
        )
        if self.sched.enabled:
            stalled = [s for s in self.sched.snapshot() if s["depth"]]
            message += f"; scheduler queues {stalled or 'all empty'}"
        if self.resilient:
            message += (
                f"; retries={flusher.retries} rerouted={flusher.rerouted} "
                f"backfill_pending={flusher.backfill_depth}"
                f"; breakers {self.health.snapshot() or 'all closed'}"
            )
        if self.faults.enabled:
            message += f"; injected {self.faults.snapshot()}"
        return message

    def stats(self) -> dict:
        """Counters for diagnostics and the benchmark harness."""
        with self.monitor:
            stats = {
                "process_id": self.process_id,
                "checkpoints": len(self.catalog),
                "gpu_occupancy": self.gpu_cache.table.used_bytes / self.gpu_cache.table.capacity,
                "host_occupancy": self.host_cache.table.used_bytes
                / self.host_cache.table.capacity,
                "gpu_evictions": self.gpu_cache.evictions,
                "host_evictions": self.host_cache.evictions,
                "forced_evictions": self.gpu_cache.forced_evictions
                + self.host_cache.forced_evictions,
                "promotions": self.prefetcher.promotions,
                "abandoned_flushes": self.flusher.abandoned,
                "ssd_objects": self.ssd.object_count(),
            }
            if self.reducer is not None:
                stats["reduction"] = self.reducer.stats()
            if self.predict is not None:
                stats["prediction"] = self.predict.stats()
            if self.resilient:
                stats["resilience"] = {
                    "flush_retries": self.flusher.retries,
                    "rerouted": self.flusher.rerouted,
                    "reflushed": self.flusher.reflushed,
                    "backfilled": self.flusher.backfilled,
                    "backfill_pending": self.flusher.backfill_depth,
                    "breakers": self.health.snapshot(),
                }
            return stats

    def close(self) -> None:
        """Stop background threads; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.prefetcher.stop()
        self.flusher.close()
        if self.promote_stream is not None:
            self.promote_stream.close(drain=True)

    def __enter__(self) -> "ScoreEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
