"""Engine-wide monitor.

Every piece of mutable runtime state of one engine — allocation tables,
checkpoint instance states, the restore-order queue, the demand-request slot
— is protected by a single :class:`Monitor` (one re-entrant mutex plus one
condition).  Long operations (throttled transfers) always happen *outside*
the monitor; the monitor only serializes metadata updates and provides the
"wait until something changed, then re-evaluate" primitive the eviction and
prefetch logic are built on.

A single coarse monitor is a deliberate choice: the runtime performs at most
a few thousand metadata operations per shot, the transfers dominate, and a
monitor gives a trivially deadlock-free design (the C++ original uses
fine-grained locks and a good fraction of its complexity is exactly there).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.clock import VirtualClock


class Monitor:
    """One engine's mutex + condition variable."""

    def __init__(self, clock: VirtualClock) -> None:
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._clock = clock

    def __enter__(self) -> "Monitor":
        self._lock.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self._lock.release()

    def notify_all(self) -> None:
        """Wake every waiter.  The monitor must be held."""
        self._cond.notify_all()

    def wait(self, virtual_timeout: Optional[float] = None) -> None:
        """Release the monitor and sleep until notified (or timeout, given
        in nominal seconds).  The monitor must be held."""
        real = None if virtual_timeout is None else self._clock.to_real(virtual_timeout)
        self._cond.wait(timeout=real)

    def wait_for(
        self, predicate: Callable[[], bool], virtual_timeout: Optional[float] = None
    ) -> bool:
        """``Condition.wait_for`` in nominal time.  The monitor must be held."""
        real = None if virtual_timeout is None else self._clock.to_real(virtual_timeout)
        return self._cond.wait_for(predicate, timeout=real)
