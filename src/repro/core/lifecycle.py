"""Checkpoint life cycle (Figure 1 of the paper).

Every *instance* — one checkpoint's presence on one cache tier — walks the
finite-state machine below.  The checkpointing path runs
``INIT → WRITE_IN_PROGRESS → WRITE_COMPLETE → FLUSHED``; the prefetching
path runs ``INIT → READ_IN_PROGRESS → READ_COMPLETE → CONSUMED``; a cached
instance that serves a restore before being evicted crosses over
(``WRITE_COMPLETE``/``FLUSHED`` → ``READ_COMPLETE`` → ``CONSUMED``).

Only ``FLUSHED`` and ``CONSUMED`` instances are evictable.
``READ_IN_PROGRESS`` / ``READ_COMPLETE`` instances are *pinned*: the paper's
anti-thrashing rule (problem condition (4)) forbids evicting a prefetched
checkpoint before it is consumed.  The one exception is a
:attr:`Instance.speculative` ``READ_COMPLETE`` copy — staged by the
access-pattern predictor rather than an explicit hint, it is revocable
under cache pressure (see the property's docstring).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, FrozenSet, Optional

from repro.errors import LifecycleError

#: Transition observer: ``(instance, old_state, new_state, now)``.  Invoked
#: with the engine monitor held, *after* the state changed — observers must
#: be non-blocking (the telemetry bus appends one ring-buffer entry).
TransitionObserver = Callable[["Instance", "CkptState", "CkptState", float], None]


class CkptState(Enum):
    INIT = "init"
    WRITE_IN_PROGRESS = "write_in_progress"
    WRITE_COMPLETE = "write_complete"
    FLUSHED = "flushed"
    READ_IN_PROGRESS = "read_in_progress"
    READ_COMPLETE = "read_complete"
    CONSUMED = "consumed"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.value}>"


#: Legal transitions of Figure 1 (plus the record-level consumption edge
#: FLUSHED → CONSUMED: consuming a checkpoint marks *all* its cached
#: instances consumed, including already-flushed ones — both states are
#: evictable, so this only widens what eviction may reclaim).
_TRANSITIONS: Dict[CkptState, FrozenSet[CkptState]] = {
    CkptState.INIT: frozenset({CkptState.WRITE_IN_PROGRESS, CkptState.READ_IN_PROGRESS}),
    CkptState.WRITE_IN_PROGRESS: frozenset({CkptState.WRITE_COMPLETE}),
    CkptState.WRITE_COMPLETE: frozenset({CkptState.FLUSHED, CkptState.READ_COMPLETE}),
    CkptState.FLUSHED: frozenset({CkptState.READ_COMPLETE, CkptState.CONSUMED}),
    CkptState.READ_IN_PROGRESS: frozenset({CkptState.READ_COMPLETE}),
    CkptState.READ_COMPLETE: frozenset({CkptState.CONSUMED}),
    CkptState.CONSUMED: frozenset(),
}

#: States in which the instance's bytes on the tier are complete and usable.
COPY_STATES: FrozenSet[CkptState] = frozenset(
    {CkptState.WRITE_COMPLETE, CkptState.FLUSHED, CkptState.READ_COMPLETE, CkptState.CONSUMED}
)

#: States making an instance immediately evictable.
EVICTABLE_STATES: FrozenSet[CkptState] = frozenset({CkptState.FLUSHED, CkptState.CONSUMED})

#: States that pin the instance until consumption (anti-thrashing rule).
PINNED_STATES: FrozenSet[CkptState] = frozenset(
    {CkptState.READ_IN_PROGRESS, CkptState.READ_COMPLETE}
)


def validate_transition(current: CkptState, new: CkptState) -> None:
    """Raise :class:`LifecycleError` unless ``current → new`` is legal."""
    if new not in _TRANSITIONS[current]:
        raise LifecycleError(f"illegal transition {current.value} -> {new.value}")


def allowed_transitions(current: CkptState) -> FrozenSet[CkptState]:
    return _TRANSITIONS[current]


class Instance:
    """One checkpoint's presence on one tier.

    State mutations must happen with the owning engine's monitor held; the
    caller is responsible for notifying the monitor afterwards.
    """

    __slots__ = (
        "level",
        "state",
        "state_since",
        "_flush_pending",
        "_read_pinned",
        "_speculative",
        "version",
        "observer",
        "tracker",
    )

    def __init__(self, level, observer: Optional[TransitionObserver] = None) -> None:
        self.level = level
        self.state = CkptState.INIT
        self.state_since = 0.0
        self._flush_pending = False
        self._read_pinned = 0
        self._speculative = False
        #: bumped on every eviction-relevant change (state transitions,
        #: ``flush_pending`` / ``read_pinned`` flips); lets the cache reuse
        #: Algorithm-1 fragment costs across reservation retries and
        #: invalidate them exactly on state transitions.
        self.version = 0
        #: telemetry hook notified of every state change (None when the
        #: trace bus is disabled, so the FSM pays nothing by default).
        self.observer = observer
        #: owning-cache hook notified of every state change, used for O(1)
        #: pinned-byte accounting; same constraints as ``observer``.
        self.tracker = None

    @property
    def flush_pending(self) -> bool:
        """An in-flight flush still needs to snapshot this tier's bytes;
        until cleared the instance must not be reclaimed even if its state
        is evictable (set on schedule, cleared once the flusher has copied
        the payload out of the arena)."""
        return self._flush_pending

    @flush_pending.setter
    def flush_pending(self, value: bool) -> None:
        if value != self._flush_pending:
            self._flush_pending = value
            self.version += 1

    @property
    def read_pinned(self) -> int:
        """Number of in-flight promotions reading this extent as their
        source; a non-zero count blocks eviction like ``flush_pending``."""
        return self._read_pinned

    @read_pinned.setter
    def read_pinned(self, value: int) -> None:
        if value != self._read_pinned:
            self._read_pinned = value
            self.version += 1

    @property
    def speculative(self) -> bool:
        """The read path that staged this extent was a *predicted* prefetch,
        not an explicit application hint.  A speculative ``READ_COMPLETE``
        copy is revocable: the anti-thrashing pin does not apply (the bytes
        are a duplicate of a durable copy, and a wrong prediction would
        otherwise pin the extent forever — with hints the application's
        promise guarantees consumption, with speculation nothing does, and
        a cache full of never-consumed pins deadlocks the flush path).
        Cleared when a demand restore claims the extent, restoring the pin
        for the copy-out window."""
        return self._speculative

    @speculative.setter
    def speculative(self, value: bool) -> None:
        if value != self._speculative:
            self._speculative = value
            self.version += 1

    def transition(self, new: CkptState, now: float = 0.0) -> None:
        validate_transition(self.state, new)
        old = self.state
        self.state = new
        self.state_since = now
        self.version += 1
        if self.tracker is not None:
            self.tracker(self, old, new, now)
        if self.observer is not None:
            self.observer(self, old, new, now)

    def try_transition(self, new: CkptState, now: float = 0.0) -> bool:
        """Transition if legal; return whether it happened."""
        if new in _TRANSITIONS[self.state]:
            old = self.state
            self.state = new
            self.state_since = now
            self.version += 1
            if self.tracker is not None:
                self.tracker(self, old, new, now)
            if self.observer is not None:
                self.observer(self, old, new, now)
            return True
        return False

    @property
    def has_copy(self) -> bool:
        return self.state in COPY_STATES

    @property
    def evictable(self) -> bool:
        return self.state in EVICTABLE_STATES

    @property
    def pinned(self) -> bool:
        return self.state in PINNED_STATES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instance({self.level!r}, {self.state.value})"
