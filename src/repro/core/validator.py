"""Engine-wide invariant checking (debugging / test support).

``validate_engine`` takes one engine's monitor and asserts the global
consistency properties the design relies on:

* every cache table tiles its arena with no overlaps or adjacent gaps;
* every table entry has a catalog record with a live instance on that tier,
  and vice versa;
* instance states are plausible for where the data is (a ``FLUSHED`` GPU
  extent implies a copy below; a ``READ_COMPLETE`` extent holds a copy);
* no unconsumed checkpoint exists whose *only* copy is mid-flight;
* the restore queue's unconsumed hints reference known or future ids;
* with reduction enabled: per-tier chunk refcounts match the live images
  attached to each tier exactly, the engine-wide registry holds no orphaned
  chunks, and no delta chain exceeds the configured depth bound.

Raises :class:`InvariantViolation` with a description on failure.  Cheap
enough to call from tests after every scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.lifecycle import CkptState
from repro.errors import ReproError
from repro.tiers.base import TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ScoreEngine


class InvariantViolation(ReproError):
    """An engine-wide consistency invariant does not hold."""


def validate_engine(engine: "ScoreEngine") -> None:
    """Check all invariants; must be called while the engine is quiescent
    (no application operation in flight)."""
    with engine.monitor:
        _check_tables(engine)
        _check_instances(engine)
        _check_copies(engine)
        if engine.reducer is not None:
            _check_reduction(engine)


def _check_tables(engine: "ScoreEngine") -> None:
    for cache in (engine.gpu_cache, engine.host_cache):
        try:
            cache.table.check_invariants()
        except AssertionError as exc:
            raise InvariantViolation(f"{cache.name}: {exc}")
        counted = cache.pinned_bytes()
        scanned = cache.scan_pinned_bytes()
        if counted != scanned:
            raise InvariantViolation(
                f"{cache.name}: pinned-bytes counter {counted} != "
                f"table scan {scanned}"
            )


def _check_instances(engine: "ScoreEngine") -> None:
    for cache in (engine.gpu_cache, engine.host_cache):
        for frag in cache.table.fragments():
            if frag.is_gap:
                continue
            record = engine.catalog.maybe_get(frag.record.ckpt_id)
            if record is None:
                raise InvariantViolation(
                    f"{cache.name}: fragment for unknown checkpoint "
                    f"{frag.record.ckpt_id}"
                )
            inst = record.peek(cache.level)
            if inst is None:
                raise InvariantViolation(
                    f"{cache.name}: checkpoint {record.ckpt_id} cached "
                    "without an instance"
                )
            expected = record.stored_size(cache.level)
            if frag.size != expected:
                raise InvariantViolation(
                    f"{cache.name}: checkpoint {record.ckpt_id} fragment "
                    f"size {frag.size} != stored size {expected}"
                )
    # Reverse direction: an instance implies a fragment (or, for stores,
    # a durable copy).
    for record in engine.catalog.all_records():
        for level, inst in record.instances.items():
            if level == TierLevel.GPU and not engine.gpu_cache.table.contains(record.ckpt_id):
                raise InvariantViolation(
                    f"checkpoint {record.ckpt_id}: GPU instance without a "
                    f"GPU cache fragment (state {inst.state.value})"
                )
            if level == TierLevel.HOST and not engine.host_cache.table.contains(record.ckpt_id):
                raise InvariantViolation(
                    f"checkpoint {record.ckpt_id}: host instance without a "
                    f"host cache fragment (state {inst.state.value})"
                )


def _check_copies(engine: "ScoreEngine") -> None:
    for record in engine.catalog.all_records():
        if record.consumed or record.discarded:
            continue
        has_cached = record.fastest_cached_level() is not None
        has_durable = record.durable_level is not None and engine.durable_store_of(
            record
        ).contains(engine.store_key(record))
        in_flight = any(
            inst.state in (CkptState.WRITE_IN_PROGRESS, CkptState.READ_IN_PROGRESS)
            for inst in record.instances.values()
        )
        if not (has_cached or has_durable or in_flight):
            raise InvariantViolation(
                f"unconsumed checkpoint {record.ckpt_id} has no copy anywhere"
            )
        if record.durable_level is not None and not engine.durable_store_of(
            record
        ).contains(engine.store_key(record)):
            raise InvariantViolation(
                f"checkpoint {record.ckpt_id} marked durable on "
                f"{record.durable_level.name} but absent from its store"
            )


def _check_reduction(engine: "ScoreEngine") -> None:
    """Reduce invariants: attachments mirror residency, refcounts match the
    live images exactly, no orphans, chain depths within the bound."""
    reducer = engine.reducer
    assert reducer is not None
    # Chain-head integrity: the delta base for the next encode must be a
    # live catalog record — a failed checkpoint() that was rolled back may
    # never linger as the base of future deltas.
    head = reducer._last_image
    if head is not None and not engine.catalog.contains(head.ckpt_id):
        raise InvariantViolation(
            f"reducer delta-chain head is checkpoint {head.ckpt_id}, which "
            "is not in the catalog (leaked by a rolled-back write?)"
        )
    caches = {TierLevel.GPU: engine.gpu_cache, TierLevel.HOST: engine.host_cache}
    expected: dict = {level: {} for level in TierLevel}
    for record in engine.catalog.all_records():
        image = record.reduction
        if image is None:
            continue
        if image.depth > engine.config.reduce.max_delta_chain:
            raise InvariantViolation(
                f"checkpoint {record.ckpt_id}: delta-chain depth {image.depth} "
                f"exceeds bound {engine.config.reduce.max_delta_chain}"
            )
        for level, cache in caches.items():
            if not reducer.covers(level):
                continue
            inst = record.peek(level)
            if inst is not None and inst.has_copy and level not in image.attached:
                raise InvariantViolation(
                    f"checkpoint {record.ckpt_id}: reduced copy on "
                    f"{level.name} but the tier is not attached to its image"
                )
            if level in image.attached and not cache.table.contains(record.ckpt_id):
                raise InvariantViolation(
                    f"checkpoint {record.ckpt_id}: image attached to "
                    f"{level.name} without a cache fragment"
                )
        key = engine.store_key(record)
        in_ssd = engine.ssd.contains(key)
        if in_ssd != (TierLevel.SSD in image.attached):
            raise InvariantViolation(
                f"checkpoint {record.ckpt_id}: SSD blob presence ({in_ssd}) "
                "disagrees with its image's SSD attachment"
            )
        if engine.pfs is not None:
            in_pfs = engine.pfs.contains(key)
            if in_pfs != (TierLevel.PFS in image.attached):
                raise InvariantViolation(
                    f"checkpoint {record.ckpt_id}: PFS blob presence "
                    f"({in_pfs}) disagrees with its image's PFS attachment"
                )
        for level in image.attached:
            per_tier = expected[level]
            for chunk in image.chunks:
                per_tier[chunk.digest] = per_tier.get(chunk.digest, 0) + 1
    for level in TierLevel:
        store = reducer.stores[level]
        try:
            store.check()
        except ReproError as exc:
            raise InvariantViolation(f"chunk store {level.name}: {exc}")
        if store.refs != expected[level]:
            raise InvariantViolation(
                f"chunk store {level.name}: refcounts diverge from the live "
                f"images ({len(store.refs)} digests held, "
                f"{len(expected[level])} expected)"
            )
    combined: dict = {}
    for per_tier in expected.values():
        for digest, count in per_tier.items():
            combined[digest] = combined.get(digest, 0) + count
    if reducer.registry.total_refs != combined:
        raise InvariantViolation(
            "chunk registry refcounts diverge from the per-tier stores"
        )
    orphans = reducer.registry.orphans()
    if orphans:
        raise InvariantViolation(
            f"chunk registry holds {len(orphans)} orphaned chunk(s)"
        )
