"""Engine-wide invariant checking (debugging / test support).

``validate_engine`` takes one engine's monitor and asserts the global
consistency properties the design relies on:

* every cache table tiles its arena with no overlaps or adjacent gaps;
* every table entry has a catalog record with a live instance on that tier,
  and vice versa;
* instance states are plausible for where the data is (a ``FLUSHED`` GPU
  extent implies a copy below; a ``READ_COMPLETE`` extent holds a copy);
* no unconsumed checkpoint exists whose *only* copy is mid-flight;
* the restore queue's unconsumed hints reference known or future ids.

Raises :class:`InvariantViolation` with a description on failure.  Cheap
enough to call from tests after every scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.lifecycle import CkptState
from repro.errors import ReproError
from repro.tiers.base import TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ScoreEngine


class InvariantViolation(ReproError):
    """An engine-wide consistency invariant does not hold."""


def validate_engine(engine: "ScoreEngine") -> None:
    """Check all invariants; must be called while the engine is quiescent
    (no application operation in flight)."""
    with engine.monitor:
        _check_tables(engine)
        _check_instances(engine)
        _check_copies(engine)


def _check_tables(engine: "ScoreEngine") -> None:
    for cache in (engine.gpu_cache, engine.host_cache):
        try:
            cache.table.check_invariants()
        except AssertionError as exc:
            raise InvariantViolation(f"{cache.name}: {exc}")
        counted = cache.pinned_bytes()
        scanned = cache.scan_pinned_bytes()
        if counted != scanned:
            raise InvariantViolation(
                f"{cache.name}: pinned-bytes counter {counted} != "
                f"table scan {scanned}"
            )


def _check_instances(engine: "ScoreEngine") -> None:
    for cache in (engine.gpu_cache, engine.host_cache):
        for frag in cache.table.fragments():
            if frag.is_gap:
                continue
            record = engine.catalog.maybe_get(frag.record.ckpt_id)
            if record is None:
                raise InvariantViolation(
                    f"{cache.name}: fragment for unknown checkpoint "
                    f"{frag.record.ckpt_id}"
                )
            inst = record.peek(cache.level)
            if inst is None:
                raise InvariantViolation(
                    f"{cache.name}: checkpoint {record.ckpt_id} cached "
                    "without an instance"
                )
            if frag.size != record.nominal_size:
                raise InvariantViolation(
                    f"{cache.name}: checkpoint {record.ckpt_id} fragment "
                    f"size {frag.size} != nominal {record.nominal_size}"
                )
    # Reverse direction: an instance implies a fragment (or, for stores,
    # a durable copy).
    for record in engine.catalog.all_records():
        for level, inst in record.instances.items():
            if level == TierLevel.GPU and not engine.gpu_cache.table.contains(record.ckpt_id):
                raise InvariantViolation(
                    f"checkpoint {record.ckpt_id}: GPU instance without a "
                    f"GPU cache fragment (state {inst.state.value})"
                )
            if level == TierLevel.HOST and not engine.host_cache.table.contains(record.ckpt_id):
                raise InvariantViolation(
                    f"checkpoint {record.ckpt_id}: host instance without a "
                    f"host cache fragment (state {inst.state.value})"
                )


def _check_copies(engine: "ScoreEngine") -> None:
    for record in engine.catalog.all_records():
        if record.consumed or record.discarded:
            continue
        has_cached = record.fastest_cached_level() is not None
        has_durable = record.durable_level is not None and engine.durable_store_of(
            record
        ).contains(engine.store_key(record))
        in_flight = any(
            inst.state in (CkptState.WRITE_IN_PROGRESS, CkptState.READ_IN_PROGRESS)
            for inst in record.instances.values()
        )
        if not (has_cached or has_durable or in_flight):
            raise InvariantViolation(
                f"unconsumed checkpoint {record.ckpt_id} has no copy anywhere"
            )
        if record.durable_level is not None and not engine.durable_store_of(
            record
        ).contains(engine.store_key(record)):
            raise InvariantViolation(
                f"checkpoint {record.ckpt_id} marked durable on "
                f"{record.durable_level.name} but absent from its store"
            )
