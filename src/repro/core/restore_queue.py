"""Restore-order hint queue (Section 4.1.1).

The application enqueues checkpoint ids it intends to restore, in order,
at any time (``VELOC_Prefetch_enqueue``); hints cannot be revoked.
Prefetching begins when the application calls ``VELOC_Prefetch_start``
(optional — it lets a forward pass finish flushing before prefetches start
competing for bandwidth).

Hints are advisory: restores may deviate.  A deviating restore consumes its
entry wherever it is in the queue (at a performance penalty, since the
prefetcher was working toward the head).

``distance(ckpt_id)`` is the *prefetch distance* of Section 4.2 — the number
of queue entries between the head and the checkpoint — and feeds the
``s_score`` of Algorithm 1.

All methods require the engine monitor to be held by the caller.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import HintError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry


class RestoreQueue:
    """Hint queue for one process."""

    def __init__(self, telemetry: Optional["Telemetry"] = None) -> None:
        self._order: List[int] = []  # all hints ever enqueued, in order
        self._position: Dict[int, int] = {}  # ckpt_id -> index in _order
        self._consumed: set = set()
        self._consumed_positions: List[int] = []  # sorted, for O(log n) counts
        self._head = 0  # index of the first unconsumed hint
        self.started = False
        #: bumped whenever the queue changes at all (enqueue/consume/start).
        self.version = 0
        #: bumped only when *existing* hint distances can shift — i.e. on
        #: :meth:`consume` (the head advances / consumed-between counts
        #: change).  Enqueues append past every existing entry and never
        #: move the head, so they leave existing distances untouched.  The
        #: cache's FragmentCost memo revalidates hinted entries against
        #: this epoch instead of :attr:`version`, so a burst of hint
        #: enqueues does not force a full distance recomputation.
        self.shift_epoch = 0
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry.disabled()
        registry = telemetry.registry
        self._m_enqueued = registry.counter("hints.enqueued")
        self._m_consumed = registry.counter("hints.consumed")
        #: restores deviating from the hint order (served out of turn or
        #: never hinted) — the paper's hint-deviation penalty cases.
        self._m_deviations = registry.counter("hints.deviations")

    # -- application-facing ---------------------------------------------------
    def enqueue(self, ckpt_id: int) -> None:
        # A consumed-but-never-hinted version must also reject late hints:
        # the restore already happened, so the hint could never be consumed
        # and would pin the queue head forever.
        if ckpt_id in self._position or ckpt_id in self._consumed:
            raise HintError(
                f"hint for checkpoint {ckpt_id} already enqueued or consumed"
            )
        self._position[ckpt_id] = len(self._order)
        self._order.append(ckpt_id)
        self.version += 1
        self._m_enqueued.inc()

    def start(self) -> None:
        self.started = True
        self.version += 1

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        """Number of unconsumed hints."""
        consumed_past_head = len(self._consumed_positions) - bisect.bisect_left(
            self._consumed_positions, self._head
        )
        return len(self._order) - self._head - consumed_past_head

    def head(self) -> Optional[int]:
        self._advance_head()
        if self._head < len(self._order):
            return self._order[self._head]
        return None

    def upcoming(self, n: int) -> List[int]:
        """The next ``n`` unconsumed hinted checkpoint ids, in order."""
        self._advance_head()
        out: List[int] = []
        idx = self._head
        while idx < len(self._order) and len(out) < n:
            ckpt_id = self._order[idx]
            if ckpt_id not in self._consumed:
                out.append(ckpt_id)
            idx += 1
        return out

    def distance(self, ckpt_id: int) -> Optional[int]:
        """Prefetch distance from the head; ``None`` when unhinted.

        Consumed entries between the head and the checkpoint do not count.
        """
        pos = self._position.get(ckpt_id)
        if pos is None or ckpt_id in self._consumed:
            return None
        self._advance_head()
        if pos < self._head:
            return None
        consumed_between = bisect.bisect_left(
            self._consumed_positions, pos
        ) - bisect.bisect_left(self._consumed_positions, self._head)
        return pos - self._head - consumed_between

    def is_hinted(self, ckpt_id: int) -> bool:
        return self._position.get(ckpt_id) is not None and ckpt_id not in self._consumed

    def is_explicit(self, ckpt_id: int) -> bool:
        """Whether the entry is an application hint (never speculative).

        Identical to :meth:`is_hinted` here; the predicted overlay of
        :class:`~repro.predict.queue.SyntheticRestoreQueue` reports its
        synthetic entries as hinted but *not* explicit, so the prefetcher
        can route them through the sched speculative class.
        """
        return self.is_hinted(ckpt_id)

    def hint_index(self) -> Dict[int, int]:
        """Membership map for the cache's cost memo: an id absent from it
        (or already consumed) is guaranteed unhinted.  Subclasses with
        synthetic entries must include them here."""
        return self._position

    # -- consumption ---------------------------------------------------------------
    def consume(self, ckpt_id: int) -> None:
        """Mark a restore as served; tolerates unhinted ids (deviation)."""
        if ckpt_id in self._consumed:
            raise HintError(f"checkpoint {ckpt_id} consumed twice")
        self.version += 1
        self.shift_epoch += 1
        self._m_consumed.inc()
        if ckpt_id in self._position:
            self._advance_head()
            if self._head < len(self._order) and self._order[self._head] != ckpt_id:
                self._m_deviations.inc()  # hinted, but served out of turn
            self._consumed.add(ckpt_id)
            bisect.insort(self._consumed_positions, self._position[ckpt_id])
            self._advance_head()
        else:
            self._m_deviations.inc()  # never hinted
            self._consumed.add(ckpt_id)  # rejects a late hint for this version

    def _advance_head(self) -> None:
        while self._head < len(self._order) and self._order[self._head] in self._consumed:
            self._head += 1
