"""Asynchronous multi-tier prefetching (T_PF of Section 4.3.1).

One daemon thread per engine promotes *hinted* checkpoints toward the GPU
cache in restore order, one level per step (SSD→host, host→GPU), using
non-blocking reservations.  Promotion stops at the *budget*:
prefetched-but-unconsumed bytes may occupy at most
``prefetch_budget_fraction`` of a cache, which prevents prefetches from
starving writes and is the paper's anti-thrashing throttle.

Demand requests (restores that miss the GPU cache) are promoted *inline* by
the restoring thread (see ``ScoreEngine._await_gpu_copy``); the
``prefetch_inflight`` flag keeps the two promoters from racing on the same
checkpoint.  Pipelining across levels emerges naturally as the loop
re-evaluates after every step.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple, TYPE_CHECKING

from repro.errors import AdmissionError, ReproError, TransientTransferError
from repro.log import get_logger
from repro.metrics.recorder import OpEvent, OpKind
from repro.sched.request import TransferClass
from repro.telemetry.causal import CAT_RETRY, CAT_TRANSFER, NULL_OP
from repro.tiers.base import TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord
    from repro.core.engine import ScoreEngine

log = get_logger(__name__)

#: (record, source level, destination level, restore-queue distance,
#:  whether the queue entry is an explicit application hint — predicted
#:  overlay entries are always speculative)
Task = Tuple["CheckpointRecord", TierLevel, TierLevel, int, bool]


class Prefetcher:
    """The hint-driven prefetch thread of one engine."""

    def __init__(self, engine: "ScoreEngine", lookahead: int = 64) -> None:
        self.engine = engine
        self.lookahead = lookahead
        self.promotions = 0
        self.telemetry = engine.telemetry
        self._track = f"p{engine.process_id}-prefetch"
        #: per-checkpoint chain ops (``f<pid>:<ckpt>``): one causal identity
        #: spans every promotion step of a hint (SSD→host, host→GPU).
        #: Touched only by the prefetch thread.
        self._ops = {}
        registry = self.telemetry.registry
        self._m_promotions = registry.counter("prefetch.promotions")
        self._m_bytes = registry.counter("prefetch.bytes")
        self._m_retries = registry.counter("prefetch.retries")
        self._m_sheds = registry.counter("prefetch.sheds")
        self._running = True
        self._thread = threading.Thread(
            target=self._run, name=f"prefetcher-p{engine.process_id}", daemon=True
        )
        self._thread.start()

    def _chain_op(self, ckpt_id: int):
        """The checkpoint's prefetch-chain op (cached across steps)."""
        if not self.engine.ops.enabled:
            return NULL_OP
        op = self._ops.get(ckpt_id)
        if op is None:
            op = self.engine.ops.prefetch(ckpt_id, self._track)
            self._ops[ckpt_id] = op
        return op

    def stop(self) -> None:
        with self.engine.monitor:
            self._running = False
            self.engine.monitor.notify_all()
        self._thread.join()

    # -- main loop -----------------------------------------------------------
    def _run(self) -> None:
        engine = self.engine
        while True:
            task: Optional[Task] = None
            with engine.monitor:
                while self._running:
                    task = self._pick_task()
                    if task is not None:
                        break
                    # Hints, transitions, consumption and evictions all
                    # notify the monitor; only a ramping lazily-pinned host
                    # arena changes silently and warrants a short poll.
                    engine.monitor.wait(
                        virtual_timeout=0.05 if engine.host_cache.ramping() else 1.0
                    )
                if not self._running:
                    return
                task[0].prefetch_inflight = True
            record, src, dst, distance, explicit = task
            op = self._chain_op(record.ckpt_id)
            op.fill("hint-wait")
            request = self._classify(distance, op=op, explicit=explicit)
            started = engine.clock.now()
            seconds: Optional[float] = None
            shed = False
            causal = {}
            if op.op_id is not None:
                causal = {
                    "op_id": op.op_id,
                    "category": CAT_TRANSFER,
                    "tier": "pcie" if src == TierLevel.HOST else src.name.lower(),
                }
            span = self.telemetry.bus.span(
                "prefetch",
                self._track,
                ckpt=record.ckpt_id,
                src=src.name,
                dst=dst.name,
                bytes=record.nominal_size,
                **causal,
            )
            with span:
                try:
                    seconds = engine.promote_once(
                        record, src, dst, blocking=False, allow_pinned=False,
                        request=request, op=op,
                        # Predicted overlay entries land as revocable
                        # stagings; explicit hints keep the consume pin.
                        speculative=not explicit,
                    )
                except AdmissionError:
                    # The link's speculative queue is full — back off below
                    # instead of hammering admission in a tight loop.
                    span.add(shed=True)
                    self._m_sheds.inc()
                    shed = True
                except TransientTransferError as exc:
                    # Injected transient fault (link fault, tier outage):
                    # back off on the virtual clock so a dark tier doesn't
                    # busy-spin the prefetch loop, then re-evaluate.
                    span.add(retried=True)
                    self._m_retries.inc()
                    delay = 0.05
                    if engine.retry_policy is not None:
                        delay = engine.retry_policy.backoff(
                            0, "prefetch", record.ckpt_id
                        )
                    with op.stage("backoff", CAT_RETRY):
                        engine.clock.sleep(delay)
                    log.debug(
                        "p%d: prefetch of checkpoint %d (%s->%s) hit a "
                        "transient fault: %s",
                        engine.process_id, record.ckpt_id, src.name, dst.name, exc,
                    )
                except ReproError as exc:
                    # Raced with a concurrent state change (e.g. the extent
                    # appeared on the destination meanwhile); re-evaluate.
                    span.add(retried=True)
                    self._m_retries.inc()
                    log.debug(
                        "p%d: prefetch of checkpoint %d (%s->%s) will retry: %s",
                        engine.process_id,
                        record.ckpt_id,
                        src.name,
                        dst.name,
                        exc,
                    )
                finally:
                    with engine.monitor:
                        record.prefetch_inflight = False
                        engine.monitor.notify_all()
            if shed:
                with op.stage("shed-backoff", CAT_RETRY):
                    engine.clock.sleep(engine.config.sched.hint_spacing_s)
            if seconds is not None:
                gpu_inst = record.peek(TierLevel.GPU)
                if dst == TierLevel.GPU or (
                    gpu_inst is not None and gpu_inst.has_copy
                ):
                    # Direct GPU hop, or a fused streamed promotion that
                    # landed the GPU extent along with the host one.
                    self._ops.pop(record.ckpt_id, None)  # chain complete
                if engine.predict is not None and not explicit:
                    # Arm the validator: this staging is speculation whose
                    # fate (consume vs. abandon) scores the predictor.
                    with engine.monitor:
                        engine.predict.on_speculative_staged(
                            record, engine.clock.now()
                        )
                self.promotions += 1
                self._m_promotions.inc()
                self._m_bytes.inc(record.nominal_size)
                engine.recorder.record(
                    OpEvent(
                        kind=OpKind.PREFETCH,
                        ckpt_id=record.ckpt_id,
                        started_at=started,
                        blocked=seconds,
                        nominal_bytes=record.nominal_size,
                        source_level=src.name,
                    )
                )

    def _classify(self, distance: int, op=NULL_OP, explicit: bool = True):
        """QoS tag for a prefetch at ``distance`` hints from the restore
        head: near *explicit* hints are HINTED_PREFETCH (never preempted),
        far ones SPECULATIVE_PREFETCH (sheddable + preemptible); predicted
        overlay entries (``explicit=False``) are always speculative, so
        bad speculation sheds first at admission.  The deadline paces both
        so near-future restores win ties.  None when scheduling is off.
        """
        engine = self.engine
        scfg = engine.config.sched
        tclass = (
            TransferClass.HINTED_PREFETCH
            if explicit and distance <= scfg.hint_near_distance
            else TransferClass.SPECULATIVE_PREFETCH
        )
        deadline = engine.clock.now() + distance * scfg.hint_spacing_s
        return engine._sched_request(tclass, deadline=deadline, op=op)

    # -- task selection (monitor held) ------------------------------------------
    def _pick_task(self) -> Optional[Task]:
        engine = self.engine
        if not engine.queue.started:
            return None
        if engine.demand_active:
            return None  # demand promotions own the freed slots right now
        gpu_budget = int(engine.prefetch_budget_fraction * engine.gpu_cache.table.capacity)
        host_budget = int(engine.prefetch_budget_fraction * engine.host_cache.table.capacity)
        for distance, ckpt_id in enumerate(engine.queue.upcoming(self.lookahead)):
            explicit = engine.queue.is_explicit(ckpt_id)
            record = engine.catalog.maybe_get(ckpt_id)
            if record is None or record.consumed or record.prefetch_inflight:
                continue
            gpu_inst = record.peek(TierLevel.GPU)
            if gpu_inst is not None and gpu_inst.has_copy:
                continue  # already staged
            step = engine.promotion_step(record)
            if step is None:
                continue  # still being written somewhere; revisit later
            src, dst = step
            if dst == TierLevel.GPU:
                # Budgets count what the destination actually stores —
                # physical bytes at or below the reduction site.
                if (
                    engine.gpu_cache.pinned_bytes() + record.stored_size(TierLevel.GPU)
                    > gpu_budget
                ):
                    return None  # budget full: wait for consumption
            else:
                if (
                    engine.host_cache.pinned_bytes() + record.stored_size(TierLevel.HOST)
                    > host_budget
                ):
                    return None
                if (
                    engine.streaming
                    and engine.config.stream.prefetch
                    and engine.gpu_cache.pinned_bytes()
                    + record.stored_size(TierLevel.GPU)
                    > gpu_budget
                ):
                    # A fused streamed promotion claims a GPU extent along
                    # with the host one; hold off until consumption frees
                    # GPU budget rather than overshoot it.
                    return None
            return (record, src, dst, distance, explicit)
        return None
