"""VELOC-like public API (Section 4.3, Listing 1).

The :class:`Client` mirrors the paper's extended VELOC primitives:

================================  =========================================
Paper API                         This library
================================  =========================================
``VELOC_Init``                    ``Client(engine)`` / ``Client.create``
``VELOC_Mem_protect(id, p, n)``   ``client.mem_protect(region_id, buffer)``
``VELOC_Checkpoint(name, ver)``   ``client.checkpoint(name, version)``
``VELOC_Recover_size(ver, id)``   ``client.recover_size(version, region_id)``
``VELOC_Restart(ver)``            ``client.restart(version)``
``VELOC_Prefetch_enqueue(ver)``   ``client.prefetch_enqueue(version)``
``VELOC_Prefetch_start()``        ``client.prefetch_start()``
================================  =========================================

A *version* may protect several memory regions; each (version, region)
pair becomes one engine-level checkpoint object, and version-level hints
expand to the member regions in order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.engine import ScoreEngine
from repro.errors import CheckpointNotFound, HintError
from repro.simgpu.memory import DeviceBuffer
from repro.tiers.topology import ProcessContext

#: Room for this many regions per version in the flat engine id space.
_REGION_STRIDE = 1024


class Client:
    """Application-facing checkpointing interface for one process."""

    def __init__(self, engine: ScoreEngine) -> None:
        self.engine = engine
        self._regions: Dict[int, DeviceBuffer] = {}
        self._version_regions: Dict[int, List[int]] = {}

    @classmethod
    def create(cls, context: ProcessContext, **engine_kwargs) -> "Client":
        """``VELOC_Init`` equivalent: build an engine on a process context."""
        return cls(ScoreEngine(context, **engine_kwargs))

    # -- region registry ------------------------------------------------------
    def mem_protect(self, region_id: int, buffer: DeviceBuffer) -> None:
        """Declare (or re-point) a protected memory region."""
        if not 0 <= region_id < _REGION_STRIDE:
            raise HintError(f"region_id must be in [0, {_REGION_STRIDE}): {region_id}")
        self._regions[region_id] = buffer

    def unprotect(self, region_id: int) -> None:
        self._regions.pop(region_id, None)

    def _ckpt_id(self, version: int, region_id: int) -> int:
        return version * _REGION_STRIDE + region_id

    # -- write ---------------------------------------------------------------------
    def checkpoint(self, name: str, version: int) -> float:
        """Checkpoint every protected region under ``version``.

        Returns the total nominal seconds the application was blocked.
        """
        if not self._regions:
            raise HintError("no protected regions; call mem_protect first")
        if version in self._version_regions:
            raise HintError(f"version {version} was already checkpointed")
        del name  # kept for API fidelity; versions are the identity here
        blocked = 0.0
        members: List[int] = []
        for region_id in sorted(self._regions):
            blocked += self.engine.checkpoint(
                self._ckpt_id(version, region_id), self._regions[region_id]
            )
            members.append(region_id)
        self._version_regions[version] = members
        return blocked

    # -- hints ----------------------------------------------------------------------
    def prefetch_enqueue(self, version: int) -> None:
        """Hint that ``version`` will be restored next (after prior hints)."""
        regions = self._version_regions.get(version)
        if regions is None:
            # Hints may precede the checkpoints (Listing 1 enqueues them
            # first); assume the currently protected region set.
            regions = sorted(self._regions)
        if not regions:
            raise HintError("cannot hint a version with no regions")
        for region_id in regions:
            self.engine.prefetch_enqueue(self._ckpt_id(version, region_id))

    def prefetch_start(self) -> None:
        self.engine.prefetch_start()

    # -- read ----------------------------------------------------------------------------
    def recover_size(self, version: int, region_id: int) -> int:
        return self.engine.recover_size(self._ckpt_id(version, region_id))

    def restart(self, version: int) -> float:
        """Restore every protected region from ``version``.

        Returns the total nominal seconds the application was blocked.
        """
        if not self._regions:
            raise HintError("no protected regions; call mem_protect first")
        blocked = 0.0
        for region_id in sorted(self._regions):
            ckpt_id = self._ckpt_id(version, region_id)
            if not self.engine.catalog.contains(ckpt_id):
                raise CheckpointNotFound(
                    f"version {version} region {region_id} was never checkpointed"
                )
            blocked += self.engine.restore(ckpt_id, self._regions[region_id])
        return blocked

    # -- restart recovery --------------------------------------------------------------------
    def recover(self) -> List[int]:
        """Rebuild state from the durable tiers after a process restart.

        Returns the recovered version numbers (``VELOC``'s restart flow:
        query what exists, ``mem_protect`` buffers of ``recover_size``,
        then ``restart`` the version you need).
        """
        self.engine.recover_history()
        versions: Dict[int, List[int]] = {}
        for record in self.engine.catalog.all_records():
            if record.consumed:
                continue
            version, region = divmod(record.ckpt_id, _REGION_STRIDE)
            versions.setdefault(version, []).append(region)
        for version, regions in versions.items():
            self._version_regions.setdefault(version, sorted(regions))
        return sorted(versions)

    # -- maintenance ------------------------------------------------------------------------
    def wait_for_flushes(self) -> float:
        return self.engine.wait_for_flushes()

    def stats(self) -> dict:
        return self.engine.stats()

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
