"""Checkpoint records and the per-engine catalog.

A :class:`CheckpointRecord` is the engine-wide identity of one checkpoint:
its nominal (aligned) and true sizes, its payload checksum, its per-tier
:class:`~repro.core.lifecycle.Instance` map, durability and consumption
status, and the cancellation flag that implements problem condition (5)
(pending flushes of a discarded checkpoint need not complete).

All mutation happens under the engine monitor.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, Optional

from repro.core.lifecycle import CkptState, Instance
from repro.errors import CheckpointNotFound, LifecycleError
from repro.tiers.base import TierLevel

#: Catalog-level transition hook: ``(ckpt_id, instance, old, new, now)``.
#: Installed by the engine when tracing is enabled; see
#: :data:`repro.core.lifecycle.TransitionObserver` for the constraints.
CatalogTransitionHook = Callable[[int, Instance, CkptState, CkptState, float], None]


class CheckpointRecord:
    """Identity + state of one checkpoint across every tier."""

    def __init__(
        self,
        ckpt_id: int,
        nominal_size: int,
        true_size: int,
        checksum: int,
        on_transition: Optional[CatalogTransitionHook] = None,
    ) -> None:
        self.ckpt_id = ckpt_id
        self.nominal_size = nominal_size
        self.true_size = true_size
        self.checksum = checksum
        #: nominal bytes this checkpoint occupies in reduced (physical) form.
        #: Equals ``nominal_size`` until a :class:`~repro.reduce.Reducer`
        #: encodes the record; always aligned.
        self.physical_size = nominal_size
        #: the reducer's :class:`~repro.reduce.pipeline.ReducedImage` (chunk
        #: recipe + delta lineage), or None when reduction is off / the
        #: record was never encoded.
        self.reduction = None
        self.instances: Dict[TierLevel, Instance] = {}
        #: slowest tier confirmed to hold a durable copy (SSD/PFS), if any.
        self.durable_level: Optional[TierLevel] = None
        #: the store object actually holding the durable copy when it is
        #: not the process's home store (e.g. a partner node's SSD after
        #: recovery from replication); None → the engine's default store.
        self.durable_store = None
        #: owning process id when this record was adopted from another
        #: engine (cluster service cross-node restore); None → this
        #: engine created the checkpoint, store keys use its own pid.
        self.home_pid: Optional[int] = None
        self.consumed = False
        self.discarded = False
        #: set to abandon in-flight flushes (checked chunk-wise by Link).
        self.cancel_flush = threading.Event()
        #: the prefetcher is currently moving this checkpoint between tiers.
        self.prefetch_inflight = False
        #: causal handle of the ``checkpoint()`` that created this record
        #: (:class:`repro.telemetry.causal.OpTrace`); None for records
        #: adopted by recovery or when causal tracing is disabled — the
        #: flusher then falls back to the no-op tracer.
        self.op = None
        self._on_transition = on_transition

    # -- sizes -------------------------------------------------------------
    def stored_size(self, level: TierLevel) -> int:
        """Nominal bytes this checkpoint occupies on ``level``.

        Tiers at or below the reduction boundary hold the encoded physical
        form; tiers above it (faster than the reduction site) hold the full
        logical payload.  Without a reduction this is ``nominal_size``
        everywhere, so every pre-reduction call site keeps its exact
        arithmetic.
        """
        reduction = self.reduction
        if reduction is None or level < reduction.site_level:
            return self.nominal_size
        return self.physical_size

    def wire_size(self, src: TierLevel, dst: TierLevel) -> int:
        """Nominal bytes a transfer between two tiers moves on the link.

        A link carries whatever representation its faster endpoint holds:
        the D2H flush of a host-site reduction moves logical bytes (the
        encode happens after landing), while every link at or below the
        boundary moves the physical form.
        """
        return self.stored_size(min(src, dst))

    # -- instances ---------------------------------------------------------
    def instance(self, level: TierLevel) -> Instance:
        """Get-or-create the instance for a tier (created in INIT)."""
        inst = self.instances.get(level)
        if inst is None:
            observer = None
            if self._on_transition is not None:
                hook, ckpt_id = self._on_transition, self.ckpt_id
                observer = lambda i, old, new, now: hook(ckpt_id, i, old, new, now)  # noqa: E731
            inst = Instance(level, observer=observer)
            self.instances[level] = inst
        return inst

    def peek(self, level: TierLevel) -> Optional[Instance]:
        return self.instances.get(level)

    def drop_instance(self, level: TierLevel) -> None:
        if level not in self.instances:
            raise LifecycleError(f"ckpt {self.ckpt_id} has no instance on {level!r}")
        del self.instances[level]

    # -- copy location queries ----------------------------------------------
    def cached_copy_levels(self) -> Iterable[TierLevel]:
        """Cache tiers (GPU/host) holding a complete copy, fastest first."""
        for level in (TierLevel.GPU, TierLevel.HOST):
            inst = self.instances.get(level)
            if inst is not None and inst.has_copy:
                yield level

    def fastest_cached_level(self) -> Optional[TierLevel]:
        for level in self.cached_copy_levels():
            return level
        return None

    def has_copy_besides(self, level: TierLevel) -> bool:
        """A complete copy exists somewhere other than ``level``.

        Durable store copies (SSD/PFS) count; used to assert that eviction
        never destroys the only copy of an unconsumed checkpoint.
        """
        if self.durable_level is not None and self.durable_level != level:
            return True
        return any(lv != level for lv in self.cached_copy_levels())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        states = {lv.name: inst.state.value for lv, inst in self.instances.items()}
        return f"CheckpointRecord({self.ckpt_id}, {self.nominal_size}B, {states})"


class Catalog:
    """All checkpoints one engine knows about, keyed by checkpoint id."""

    def __init__(self, on_transition: Optional[CatalogTransitionHook] = None) -> None:
        self._records: Dict[int, CheckpointRecord] = {}
        self._on_transition = on_transition

    def create(
        self, ckpt_id: int, nominal_size: int, true_size: int, checksum: int
    ) -> CheckpointRecord:
        if ckpt_id in self._records:
            raise LifecycleError(
                f"checkpoint {ckpt_id} already exists; checkpoints are immutable"
            )
        record = CheckpointRecord(
            ckpt_id, nominal_size, true_size, checksum, on_transition=self._on_transition
        )
        self._records[ckpt_id] = record
        return record

    def get(self, ckpt_id: int) -> CheckpointRecord:
        record = self._records.get(ckpt_id)
        if record is None:
            raise CheckpointNotFound(f"unknown checkpoint id {ckpt_id}")
        return record

    def maybe_get(self, ckpt_id: int) -> Optional[CheckpointRecord]:
        return self._records.get(ckpt_id)

    def contains(self, ckpt_id: int) -> bool:
        return ckpt_id in self._records

    def forget(self, ckpt_id: int) -> None:
        """Remove a fully-discarded checkpoint from the catalog."""
        self._records.pop(ckpt_id, None)

    def __len__(self) -> int:
        return len(self._records)

    def all_records(self):
        return list(self._records.values())
