"""``predict_evictable`` (Section 4.2).

Estimates ``state_ts`` — the nominal seconds until a cached instance reaches
an evictable state — from the instance's life-cycle position, the checkpoint
size, the bandwidth toward the next slower tier, and the backlog of other
enqueued flushes competing for that bandwidth (``Link.pending_bytes``).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.lifecycle import CkptState, Instance

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord
    from repro.tiers.base import TierLevel

#: sentinel distinguishing "no instance passed" from "instance is None".
_UNSET = object()

#: state_ts of an instance that can never become evictable by waiting
#: (pinned by the anti-thrashing rule until the application consumes it).
NEVER = math.inf

#: Finite penalty charged when a *forced* eviction of a prefetched-but-
#: unconsumed instance is permitted (demand restores that deviate from the
#: hints): large enough that such windows lose to any waitable window.
FORCE_EVICT_PENALTY = 1e9

#: Finite penalty for revoking a *speculative* staging (predicted, not
#: hinted).  Below :data:`FORCE_EVICT_PENALTY` — when space must be taken
#: from unconsumed read copies, revoking speculation is always preferred
#: to force-evicting an explicitly hinted prefetch — but still far above
#: any waitable flush, so speculation is only revoked as a last resort.
SPECULATIVE_EVICT_PENALTY = 1e8


def instance_state_ts(
    record: "CheckpointRecord",
    level: "TierLevel",
    flush_estimate: Callable[[int], float],
    allow_pinned: bool = False,
    inst: Optional[Instance] = _UNSET,  # type: ignore[assignment]
) -> float:
    """Nominal seconds until the instance on ``level`` becomes evictable.

    ``flush_estimate(nbytes)`` estimates the remaining flush duration toward
    the next slower tier, including the backlog on the shared link.
    Callers that already resolved the tier instance may pass it as ``inst``
    to skip the lookup (the eviction cost cache calls this per fragment).
    """
    if inst is _UNSET:
        inst = record.peek(level)
    if inst is None:
        return 0.0
    if inst.evictable:
        # Evictable, unless an in-flight flush still needs the bytes
        # (the snapshot in the flusher clears this promptly).
        return flush_estimate(record.stored_size(level)) if inst.flush_pending else 0.0
    if inst.state == CkptState.READ_IN_PROGRESS:
        return NEVER  # transfer in flight; the extent is incomplete
    if inst.state == CkptState.READ_COMPLETE:
        if inst.speculative:
            # Revocable staging: a duplicate of a durable copy, evictable
            # even without the forced-eviction waiver (the wrong-prediction
            # escape hatch — nothing guarantees a speculation is ever
            # consumed, so it must not pin the extent indefinitely).
            return SPECULATIVE_EVICT_PENALTY
        return FORCE_EVICT_PENALTY if allow_pinned else NEVER
    # WRITE_IN_PROGRESS / WRITE_COMPLETE: evictable once flushed downward.
    # The stored size at this tier is exactly what the downward flush will
    # move on the wire (reduced physical bytes below the reduction site).
    return flush_estimate(record.stored_size(level))
