"""Algorithm 1: score-based look-ahead cache eviction.

Given the fragment table of a cache arena and the size of an incoming
checkpoint, find the sequence of consecutive fragments (checkpoints and
gaps) whose eviction:

1. forms a contiguous gap large enough for the new checkpoint, and
2. minimizes ``p_score`` — the estimated total blocking time until every
   member is evictable — breaking ties by maximizing ``s_score`` — the sum
   of the members' prefetch distances (evict what will be restored last).

Gaps participate as highest-priority members: zero blocking time and a
prefetch-distance contribution above every real checkpoint.

The search is the paper's O(n) two-pointer sliding window.  Fragments that
can never become evictable by waiting (prefetched-but-unconsumed instances,
unless a forced demand eviction is permitted) act as window *barriers*: no
window may cross them, so when the right pointer hits one, the window
restarts beyond it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Sequence

from repro.core.alloctable import Fragment


class FragmentCost(NamedTuple):
    """Scoring contributions of one fragment.

    A ``NamedTuple`` rather than a frozen dataclass: one is constructed per
    fragment per selection pass, and tuple construction is several times
    cheaper than ``object.__setattr__``-based frozen-dataclass init.
    """

    p: float  # estimated nominal seconds until evictable
    s: float  # prefetch-distance contribution (higher = safer to evict)
    barrier: bool  # window may not include this fragment


@dataclass(frozen=True)
class Window:
    """A chosen eviction window over ``fragments[start:end]``."""

    start: int  # first fragment index (inclusive)
    end: int  # last fragment index (exclusive)
    offset: int  # arena offset of the resulting gap
    size: int  # total bytes the window covers
    p_score: float
    s_score: float


CostFn = Callable[[Fragment], FragmentCost]


class ScorePolicy:
    """The paper's gap-aware sliding-window policy."""

    name = "score"

    def select(
        self,
        fragments: Sequence[Fragment],
        size_new: int,
        cost_of: CostFn,
        limit: Optional[int] = None,
        min_offset: int = 0,
    ) -> Optional[Window]:
        """Best eviction window for a ``size_new``-byte checkpoint.

        ``limit`` / ``min_offset`` restrict windows to the arena region
        ``[min_offset, limit)`` (split-cache ablation, lazily-pinned
        caches).  Returns ``None`` when no admissible window exists yet (the
        caller waits for state changes and retries).
        """
        n = len(fragments)
        best: Optional[Window] = None

        # Each fragment is costed exactly once, when the right pointer
        # admits it; the window's member costs ride in ``pending`` so the
        # slide step pops the stored contribution instead of re-deriving it.
        # The float additions/subtractions happen in the same order as a
        # naive re-costing implementation, so scores are bit-identical.
        pending: deque = deque()
        i = 0
        j = 0
        p_sum = 0.0
        s_sum = 0.0
        window = 0
        while i < n:
            barrier_at = None
            while window < size_new and j < n:
                frag = fragments[j]
                # Index the (p, s, barrier) tuple instead of using the
                # named fields, and inline frag.end as offset + size: both
                # run per fragment admission and the attribute/property
                # dispatch is measurable at millions of admissions.
                cj = cost_of(frag)
                if (
                    cj[2]  # barrier
                    or (limit is not None and frag.offset + frag.size > limit)
                    or frag.offset < min_offset
                ):
                    barrier_at = j
                    break
                p_sum += cj[0]  # p
                s_sum += cj[1]  # s
                window += frag.size
                pending.append(cj)
                j += 1
            if window >= size_new:
                if (
                    best is None
                    or p_sum < best.p_score
                    or (p_sum == best.p_score and s_sum > best.s_score)
                ):
                    best = Window(
                        start=i,
                        end=j,
                        offset=fragments[i].offset,
                        size=window,
                        p_score=p_sum,
                        s_score=s_sum,
                    )
                # slide: drop the leftmost fragment
                ci = pending.popleft()
                p_sum -= ci[0]  # p
                s_sum -= ci[1]  # s
                window -= fragments[i].size
                i += 1
            elif barrier_at is not None:
                i = barrier_at + 1
                j = i
                p_sum = 0.0
                s_sum = 0.0
                window = 0
                pending.clear()
            else:
                break  # right pointer exhausted
        return best


def gap_cost(no_hint_score: float) -> FragmentCost:
    """Cost of a gap member: zero blocking time, the highest s-contribution
    (strictly above every real checkpoint's)."""
    return FragmentCost(p=0.0, s=no_hint_score + 1.0, barrier=False)


def fragment_cost(
    state_ts: float, prefetch_distance: Optional[int], no_hint_score: float
) -> FragmentCost:
    """Cost of a checkpoint member from its predicted ``state_ts`` and hint
    distance.  ``math.inf`` marks an instance that can never become
    evictable by waiting — a window barrier.

    The single construction point for Algorithm 1's member costs: both the
    plain cost function below and the cache's version-keyed cost cache go
    through here, so caching can never alter how a fragment is scored.
    """
    if math.isinf(state_ts):
        return FragmentCost(p=state_ts, s=0.0, barrier=True)
    s = float(prefetch_distance) if prefetch_distance is not None else no_hint_score
    return FragmentCost(p=state_ts, s=s, barrier=False)


def make_cost_fn(
    state_ts: Callable[[Fragment], float],
    prefetch_distance: Callable[[Fragment], Optional[int]],
    no_hint_score: float,
) -> CostFn:
    """Build the Algorithm-1 cost function from engine context callbacks.

    * ``state_ts(frag)`` — predicted nominal seconds until evictable
      (``math.inf`` marks a barrier);
    * ``prefetch_distance(frag)`` — position in the restore-order queue, or
      ``None`` when unhinted;
    * ``no_hint_score`` — s-contribution for unhinted checkpoints; gaps use
      ``no_hint_score + 1`` (strictly the most eviction-friendly members).
    """
    gap = gap_cost(no_hint_score)

    def cost_of(frag: Fragment) -> FragmentCost:
        if frag.is_gap:
            return gap
        return fragment_cost(state_ts(frag), prefetch_distance(frag), no_hint_score)

    return cost_of
