"""Trace and metrics exporters.

Three renderings of one run's telemetry:

* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome trace-event
  JSON, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Every bus track becomes one named thread timeline;
  per-process tracks (``p3-flush-d2h``) group under their rank's process,
  cluster-shared tracks (``node0-ssd``, ``pfs``) under a synthetic
  "cluster" process.  Timestamps are nominal **micro**seconds (the format's
  unit), so durations read directly in paper time.
* :func:`write_jsonl` — one JSON object per event, for ad-hoc scripting.
* :func:`render_summary` — a human-readable text digest of the metrics
  registry and bus occupancy.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple, Union

from repro.telemetry.bus import TraceBus, TraceEvent
from repro.telemetry.metrics import MetricsRegistry

#: Synthetic pid for cluster-shared tracks (SSD/PFS stores, fabric links).
CLUSTER_PID = 1_000_000

_TRACK_RE = re.compile(r"^p(\d+)-(.+)$")


def _events_of(source: Union[TraceBus, Iterable[TraceEvent]]) -> List[TraceEvent]:
    if isinstance(source, TraceBus):
        return source.snapshot()
    return list(source)


def _split_track(track: str) -> Tuple[int, str]:
    """(pid, thread name) for a track, following the bus's naming convention."""
    m = _TRACK_RE.match(track)
    if m:
        return int(m.group(1)), m.group(2)
    return CLUSTER_PID, track


def chrome_trace(
    source: Union[TraceBus, Iterable[TraceEvent]],
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Render events (and optionally a metrics snapshot) to the Chrome
    trace-event JSON object format."""
    events = _events_of(source)
    trace_events: List[dict] = []
    named_pids: Dict[int, None] = {}
    tids: Dict[str, int] = {}

    # Node attribution (cluster runs tag events with node_id): shared tracks
    # split out of the flat "cluster" process into one synthetic process per
    # node, and rank processes are labelled with the node hosting them.
    node_of: Dict[str, int] = {}
    for e in events:
        if e.node_id is not None and e.track not in node_of:
            node_of[e.track] = e.node_id

    def resolve(track: str) -> Tuple[int, str]:
        pid, thread = _split_track(track)
        node = node_of.get(track)
        if pid == CLUSTER_PID and node is not None:
            return CLUSTER_PID + 1 + node, thread
        return pid, thread

    def process_name(pid: int, track: str) -> str:
        if pid == CLUSTER_PID:
            return "cluster"
        if pid > CLUSTER_PID:
            return f"node{pid - CLUSTER_PID - 1}"
        node = node_of.get(track)
        if node is not None:
            return f"node{node} rank {pid}"
        return f"rank {pid}"

    for track in sorted({e.track for e in events}):
        pid, thread = resolve(track)
        tids[track] = len(tids) + 1
        if pid not in named_pids:
            named_pids[pid] = None
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process_name(pid, track)},
                }
            )
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tids[track],
                "args": {"name": thread},
            }
        )

    # The bus appends spans at *exit*; re-sort by start time so overlapping
    # operations on a shared track (e.g. two streams hitting the SSD) render
    # in timeline order.
    for event in sorted(events, key=lambda e: e.ts):
        pid, _ = resolve(event.track)
        args = event.args
        if event.op_id is not None or event.category is not None:
            args = dict(args)
            if event.op_id is not None:
                args["op"] = event.op_id
            if event.parent_id is not None:
                args["parent"] = event.parent_id
            if event.category is not None:
                args["cat"] = event.category
        entry = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts * 1e6,  # nominal seconds -> microseconds
            "pid": pid,
            "tid": tids[event.track],
            "args": args,
        }
        if event.phase == "X":
            entry["dur"] = event.dur * 1e6
        elif event.phase == "i":
            entry["s"] = "t"  # thread-scoped instant
        trace_events.append(entry)

    out: dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if registry is not None:
        out["otherData"] = {"metrics": registry.snapshot()}
    return out


def write_chrome_trace(
    path: str,
    source: Union[TraceBus, Iterable[TraceEvent]],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Write :func:`chrome_trace` output to ``path`` (open in Perfetto)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(source, registry), fh, default=_json_default)


def write_jsonl(
    path_or_file: Union[str, TextIO], source: Union[TraceBus, Iterable[TraceEvent]]
) -> int:
    """One JSON object per event; returns the number of lines written."""
    events = _events_of(source)

    def dump(fh: TextIO) -> None:
        for event in events:
            record = {
                "name": event.name,
                "track": event.track,
                "ts": event.ts,
                "phase": event.phase,
                "dur": event.dur,
                "args": event.args,
            }
            # Causal fields only when present, so pre-causal logs and
            # disabled-analysis runs serialise byte-identically.
            if event.op_id is not None:
                record["op_id"] = event.op_id
            if event.parent_id is not None:
                record["parent_id"] = event.parent_id
            if event.category is not None:
                record["category"] = event.category
            # Node attribution likewise only-when-present (cluster runs).
            if event.node_id is not None:
                record["node_id"] = event.node_id
            if event.engine_id is not None:
                record["engine_id"] = event.engine_id
            fh.write(json.dumps(record, default=_json_default))
            fh.write("\n")

    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            dump(fh)
    else:
        dump(path_or_file)
    return len(events)


def read_jsonl(path_or_file: Union[str, TextIO]) -> List[TraceEvent]:
    """Re-import a :func:`write_jsonl` log as :class:`TraceEvent` objects.

    The inverse of :func:`write_jsonl` up to arg-value stringification (the
    ``_json_default`` fallback renders enums and infinities as strings):
    event count, ordering, timing, and causal identity round-trip exactly,
    so the analyzer sees the same op DAGs from a file as from a live bus.
    """

    def load(fh: TextIO) -> List[TraceEvent]:
        events: List[TraceEvent] = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            events.append(
                TraceEvent(
                    name=rec["name"],
                    track=rec["track"],
                    ts=rec["ts"],
                    phase=rec.get("phase", "i"),
                    dur=rec.get("dur", 0.0),
                    args=rec.get("args", {}),
                    op_id=rec.get("op_id"),
                    parent_id=rec.get("parent_id"),
                    category=rec.get("category"),
                    node_id=rec.get("node_id"),
                    engine_id=rec.get("engine_id"),
                )
            )
        return events

    if isinstance(path_or_file, str):
        with open(path_or_file) as fh:
            return load(fh)
    return load(path_or_file)


def _json_default(value):
    """Fallback serialisation for enum/float('inf') args."""
    if value == float("inf"):
        return "inf"
    return str(value)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_summary(
    registry: MetricsRegistry,
    bus: Optional[TraceBus] = None,
    title: str = "telemetry summary",
) -> str:
    """A human-readable digest: one line per metric, histograms condensed."""
    lines = [title, "=" * len(title)]
    snapshot = registry.snapshot()
    if not snapshot:
        lines.append("(no metrics recorded)")
    width = max((len(name) for name in snapshot), default=0)
    for name, value in snapshot.items():
        if isinstance(value, dict):  # histogram
            rendered = (
                f"count={value['count']} mean={_format_value(value['mean'])} "
                f"min={_format_value(value['min'])} max={_format_value(value['max'])}"
            )
        else:
            rendered = _format_value(value)
        lines.append(f"{name:<{width}}  {rendered}")
    if bus is not None:
        lines.append("")
        lines.append(
            f"trace: {len(bus)} events retained, {bus.dropped} dropped, "
            f"{len(bus.tracks())} tracks"
        )
    return "\n".join(lines)


def events_by_track(
    source: Union[TraceBus, Iterable[TraceEvent]]
) -> Dict[str, List[TraceEvent]]:
    """Group events per track, preserving emission order."""
    out: Dict[str, List[TraceEvent]] = {}
    for event in _events_of(source):
        out.setdefault(event.track, []).append(event)
    return out


def filter_events(
    source: Union[TraceBus, Iterable[TraceEvent]],
    name: Optional[str] = None,
    tracks: Optional[Sequence[str]] = None,
) -> List[TraceEvent]:
    """Events matching a name and/or a set of tracks."""
    events = _events_of(source)
    if name is not None:
        events = [e for e in events if e.name == name]
    if tracks is not None:
        wanted = set(tracks)
        events = [e for e in events if e.track in wanted]
    return events
