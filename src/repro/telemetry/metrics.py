"""Named counters, gauges and histograms for the checkpoint runtime.

A :class:`MetricsRegistry` is a flat namespace of metrics shared by every
engine of one simulation (the cluster owns it).  Instruments are
get-or-create — ``registry.counter("cache.p0-gpu.evictions")`` returns the
same :class:`Counter` every time — so call sites can resolve their handles
once at construction and update them lock-free on the hot path (handle
updates take one short per-instrument lock; creation takes the registry
lock).

Conventions (see README "Observability" for the full catalogue):

* dotted lowercase names, most-general prefix first
  (``cache.<name>.evictions``, ``flush.d2h.bytes``, ``tier.ssd.read_bytes``);
* byte quantities are *nominal* bytes, durations nominal seconds;
* per-process instruments embed the component name (``p0-gpu``), shared
  ones do not.

``snapshot()`` renders everything to plain JSON-serialisable dicts;
``merge()`` folds another snapshot in (multi-process aggregation).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

#: Default histogram bucket boundaries (nominal seconds): exponential from
#: 100 µs to ~100 s, the range of one transfer to one full flush drain.
DEFAULT_BUCKETS = tuple(1e-4 * (4.0**i) for i in range(10))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value

    def merge(self, other: float) -> None:
        with self._lock:
            self._value += other


class Gauge:
    """A point-in-time value (occupancy, queue depth, fragmentation)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value

    def merge(self, other: float) -> None:
        # Gauges are point-in-time; on merge keep the max (occupancies and
        # depths aggregate meaningfully as a high-water mark).
        with self._lock:
            self._value = max(self._value, other)


class Histogram:
    """A distribution: count/sum/min/max plus exponential bucket counts."""

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} buckets must be sorted: {bounds}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last bucket = +inf
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = 0
        for bound in self.buckets:
            if value <= bound:
                break
            idx += 1
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "mean": self._sum / self._count if self._count else 0.0,
                "buckets": list(zip(self.buckets, self._counts[:-1]))
                + [(float("inf"), self._counts[-1])],
            }

    def merge(self, other: dict) -> None:
        counts = [c for _, c in other.get("buckets", [])]
        with self._lock:
            if len(counts) == len(self._counts):
                for i, c in enumerate(counts):
                    self._counts[i] += c
            self._count += other.get("count", 0)
            self._sum += other.get("sum", 0.0)
            if other.get("count"):
                self._min = min(self._min, other.get("min", self._min))
                self._max = max(self._max, other.get("max", self._max))


class MetricsRegistry:
    """Flat, thread-safe namespace of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        if buckets is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """All metrics rendered to plain values, sorted by name."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram moments add; gauges keep the max.  Unknown
        names are materialised (counters for scalars, histograms for dicts),
        so merging into an empty registry reconstructs the aggregate.
        """
        for name, value in snapshot.items():
            if isinstance(value, dict):
                bounds = [b for b, _ in value.get("buckets", [])][:-1]
                self.histogram(name, bounds or None).merge(value)
            else:
                metric = self.get(name)
                if metric is None:
                    metric = self.counter(name)
                metric.merge(value)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
