"""``python -m repro trace <workload>`` — run a traced workload and export.

Runs one shot (or a small multi-process grid) with the trace bus enabled and
writes three artifacts under ``--out-dir``:

* ``<workload>.trace.json`` — Chrome trace-event JSON.  Open it at
  https://ui.perfetto.dev (or ``chrome://tracing``): one process group per
  rank plus a "cluster" group for the shared SSD/PFS stores, one timeline
  per component (app, lifecycle, flush stages, prefetcher, tiers).
* ``<workload>.events.jsonl`` — the raw event log, one JSON object per line.
* ``<workload>.summary.txt`` — the metrics-registry digest (also printed).
* ``<workload>.sched.txt`` — with ``--sched``, the per-link queue-depth and
  preemption timelines of the QoS transfer scheduler (also printed).
* ``<workload>.reduce.txt`` — with ``--reduce``, the per-checkpoint logical
  vs physical bytes, dedup hit rate and delta-chain depths of the data
  reduction pipeline (also printed).

Workloads: ``quickstart`` (16 × 128 MiB, one rank, reverse order),
``uniform`` and ``variable`` (the paper's RTM traces, multi-rank),
``kvcache`` (LLM-serving suspend/resume; ``--snapshots`` = activations)
and ``revolve`` (binomial adjoint checkpointing; ``--snapshots`` = forward
steps) — the last two are single-rank and honour ``--predict``:

* ``hints``   — oracle restore hints (the default; unchanged behaviour),
* ``learned`` — no hints, online access-pattern prediction enabled,
* ``none``    — no hints, demand-only promotion.
"""

from __future__ import annotations

import argparse
import logging
import os
from typing import List, Optional, Sequence

from repro.config import (
    NODE_CRASH_MODES,
    AnalysisConfig,
    CacheConfig,
    ClusterConfig,
    FaultConfig,
    HardwareSpec,
    ReduceConfig,
    ResilienceConfig,
    SchedConfig,
    SloConfig,
    StreamConfig,
    bench_config,
)
from repro.errors import ConfigError, InjectedCrash
from repro.log import enable_console_logging
from repro.telemetry.exporters import render_summary, write_chrome_trace, write_jsonl
from repro.util.units import MiB
from repro.workloads.kvcache import KvCacheSpec
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.revolve import RevolveSpec
from repro.workloads.rtm import uniform_trace, variable_trace
from repro.workloads.shot import HintMode, ShotSpec

#: (snapshots, processes) defaults per workload — sized so a trace run
#: finishes in seconds while still exercising eviction and prefetching.
#: For ``kvcache`` the first number is session activations; for
#: ``revolve`` it is forward steps (both are single-rank drivers).
_DEFAULTS = {
    "quickstart": (16, 1),
    "uniform": (48, 2),
    "variable": (48, 2),
    "kvcache": (96, 1),
    "revolve": (24, 1),
}

#: the single-rank drivers that honour ``--predict`` natively.
_PREDICTED = ("kvcache", "revolve")


def _build_specs(
    workload: str,
    cfg,
    snapshots: int,
    processes: int,
    order: RestoreOrder,
    seed: int,
    similarity: float = 0.0,
    hint_mode: HintMode = HintMode.ALL,
) -> List[ShotSpec]:
    scale = cfg.scale
    specs: List[ShotSpec] = []
    for rank in range(processes):
        if workload == "variable":
            trace = variable_trace(scale, rank=rank, seed=seed, num_snapshots=snapshots)
        else:
            trace = uniform_trace(scale, num_snapshots=snapshots, size=128 * MiB, rank=rank)
        specs.append(
            ShotSpec(
                trace=trace,
                restore_order=restore_order(order, len(trace), seed=seed, rank=rank),
                hint_mode=hint_mode,
                compute_interval=0.010,
                similarity=similarity,
                seed=seed,
            )
        )
    return specs


def _predicted_spec(workload: str, snapshots: int, seed: int):
    """The kvcache/revolve spec a trace run derives from ``--snapshots``."""
    if workload == "kvcache":
        return KvCacheSpec(
            sessions=max(4, snapshots // 6), events=snapshots, seed=seed
        )
    return RevolveSpec(
        steps=snapshots, snapshots=max(2, snapshots // 6), seed=seed
    )


def _render_predict_summary(workload: str, predict: str, result) -> str:
    """One paragraph on the workload outcome + speculation accuracy."""
    from repro.harness.prediction import percentile, speculation_stats
    from repro.util.units import format_size

    lats = result.restore_latencies
    lines = [
        f"{workload} ({predict}): {len(lats)} restores "
        f"({result.verified} verified), demand p50 "
        f"{percentile(lats, 0.50):.4f}s / p99 {percentile(lats, 0.99):.4f}s, "
        f"wall {result.wall_s:.2f}s"
    ]
    spec_stats = speculation_stats(result)
    if spec_stats is not None:
        val = spec_stats.get("validation") or {}
        hit_rate = val.get("hit_rate")
        lines.append(
            "speculation: "
            f"{spec_stats.get('spec_prefetches', 0)} speculative promotions, "
            f"hit rate {'n/a' if hit_rate is None else hit_rate}, "
            f"wasted {format_size(int(val.get('wasted_bytes', 0)))}, "
            f"{int(val.get('suspensions', 0))} suspensions"
        )
    return "\n".join(lines)


def run_trace(
    workload: str,
    out_dir: str = "traces",
    snapshots: Optional[int] = None,
    processes: Optional[int] = None,
    order: RestoreOrder = RestoreOrder.REVERSE,
    seed: int = 7,
    sched: bool = False,
    reduce: bool = False,
    stream: bool = False,
    similarity: float = 0.9,
    faults: Optional[FaultConfig] = None,
    resilient: bool = False,
    analysis: bool = False,
    slo: Optional[SloConfig] = None,
    hardware: Optional[HardwareSpec] = None,
    predict: str = "hints",
    cluster_nodes: Optional[int] = None,
) -> dict:
    """Run ``workload`` with tracing on; return the written paths."""
    from repro.harness.approaches import make_engine_factory
    from repro.harness.experiment import scaled_caches
    from repro.harness.prediction import PREDICT_MODES, apply_predict_mode
    from repro.tiers.topology import Cluster
    from repro.workloads.multiproc import run_multiprocess_shot

    if workload not in _DEFAULTS:
        raise ConfigError(
            f"unknown workload {workload!r}; choose from {sorted(_DEFAULTS)}"
        )
    if predict not in PREDICT_MODES:
        raise ConfigError(
            f"unknown predict mode {predict!r}; choose from {PREDICT_MODES}"
        )
    default_snapshots, default_processes = _DEFAULTS[workload]
    snapshots = snapshots or default_snapshots
    processes = processes or default_processes
    if workload in _PREDICTED and processes != 1:
        raise ConfigError(f"{workload} is a single-rank driver; --processes 1")
    cfg = bench_config(telemetry=True, processes_per_node=processes)
    if cluster_nodes is not None:
        if workload in _PREDICTED:
            raise ConfigError(f"{workload} is single-rank; --cluster needs a grid")
        if cluster_nodes < 2:
            raise ConfigError("--cluster needs at least 2 nodes")
        if processes % cluster_nodes != 0:
            raise ConfigError(
                f"--processes {processes} does not divide across "
                f"--cluster {cluster_nodes} nodes"
            )
        cfg = cfg.with_(
            num_nodes=cluster_nodes,
            processes_per_node=processes // cluster_nodes,
            cluster=ClusterConfig(enabled=True, repair=True),
        )
    if hardware is not None:
        cfg = cfg.with_(hardware=hardware)
    if sched:
        cfg = cfg.with_(sched=SchedConfig(enabled=True))
    if reduce:
        cfg = cfg.with_(reduce=ReduceConfig(enabled=True))
    if stream:
        cfg = cfg.with_(stream=StreamConfig(enabled=True))
    if faults is not None:
        cfg = cfg.with_(faults=faults)
    if resilient:
        cfg = cfg.with_(resilience=ResilienceConfig(enabled=True))
    if analysis:
        cfg = cfg.with_(analysis=AnalysisConfig(enabled=True, slo=slo or SloConfig()))
    cfg = apply_predict_mode(cfg, predict)
    predict_rendered: Optional[str] = None
    if workload in _PREDICTED:
        from repro.harness.prediction import run_predicted, serving_caches

        spec = _predicted_spec(workload, snapshots, seed)
        cfg = cfg.with_(cache=serving_caches(cfg, spec))
        result, telemetry = run_predicted(cfg, spec, predict)
        predict_rendered = _render_predict_summary(workload, predict, result)
    else:
        specs = _build_specs(
            workload,
            cfg,
            snapshots,
            processes,
            order,
            seed,
            similarity=similarity if reduce else 0.0,
            hint_mode=HintMode.ALL if predict == "hints" else HintMode.NONE,
        )
        # Scale the caches to the actual working set (paper ratios), but
        # never below twice the largest single snapshot — a short
        # variable-size trace can have one snapshot bigger than the
        # ratio-derived GPU cache.
        total = max(spec.trace.total_bytes for spec in specs)
        floor = 2 * cfg.scale.align(max(max(spec.trace.sizes) for spec in specs))
        ratio = scaled_caches(total)
        cfg = cfg.with_(
            cache=CacheConfig(
                gpu_cache_size=max(ratio.gpu_cache_size, floor),
                host_cache_size=max(ratio.host_cache_size, floor),
            )
        )
        factory = make_engine_factory("score")
        with Cluster(cfg) as cluster:
            try:
                run_multiprocess_shot(cluster, factory, specs)
            except InjectedCrash:
                # A scheduled node crash killed those ranks mid-shot; the
                # survivors ran to completion and their telemetry (plus the
                # node-death instants) is what the trace is for.
                pass
            fabric = cluster.fabric
            if fabric is not None and fabric.membership.active:
                # Apply any node events the shot ran past, then let the
                # anti-entropy repairer settle the replica factor so its
                # spans land in the trace.
                fabric.membership.tick()
                if fabric.repairer is not None:
                    fabric.repairer.run()
            telemetry = cluster.telemetry

    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, f"{workload}.trace.json")
    jsonl_path = os.path.join(out_dir, f"{workload}.events.jsonl")
    summary_path = os.path.join(out_dir, f"{workload}.summary.txt")
    events = telemetry.bus.snapshot()
    write_chrome_trace(trace_path, events, telemetry.registry)
    write_jsonl(jsonl_path, events)
    summary = render_summary(
        telemetry.registry,
        telemetry.bus,
        title=f"telemetry summary: {workload} ({snapshots} snapshots, {processes} ranks)",
    )
    with open(summary_path, "w") as fh:
        fh.write(summary + "\n")
    out = {
        "trace": trace_path,
        "jsonl": jsonl_path,
        "summary": summary_path,
        "events": len(events),
        "rendered": summary,
    }
    if predict_rendered is not None:
        predict_path = os.path.join(out_dir, f"{workload}.predict.txt")
        with open(predict_path, "w") as fh:
            fh.write(predict_rendered + "\n")
        out["predict"] = predict_path
        out["predict_rendered"] = predict_rendered
    if sched:
        from repro.sched import render_sched_timeline, sched_events

        timeline = render_sched_timeline(sched_events(events))
        sched_path = os.path.join(out_dir, f"{workload}.sched.txt")
        with open(sched_path, "w") as fh:
            fh.write(timeline + "\n")
        out["sched"] = sched_path
        out["sched_rendered"] = timeline
    if reduce:
        from repro.reduce import reduce_events, render_reduce_report

        report = render_reduce_report(reduce_events(events))
        reduce_path = os.path.join(out_dir, f"{workload}.reduce.txt")
        with open(reduce_path, "w") as fh:
            fh.write(report + "\n")
        out["reduce"] = reduce_path
        out["reduce_rendered"] = report
    return out


def _parse_outage(spec: str):
    """``tier:start:end[:factor]`` -> a ``FaultConfig.tier_outages`` entry
    (factor defaults to 0.0, a hard outage).

    Validates the full grammar here — tier name, window ordering, factor
    range — so a malformed spec dies as a clean argparse usage error
    instead of a :class:`~repro.errors.ConfigError` traceback out of
    ``FaultConfig`` later.
    """
    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise argparse.ArgumentTypeError(
            f"expected tier:start:end[:factor], got {spec!r}"
        )
    tier = parts[0]
    if tier not in ("ssd", "pfs"):
        raise argparse.ArgumentTypeError(
            f"unknown outage tier {tier!r} in {spec!r} (expected ssd or pfs)"
        )
    try:
        start, end = float(parts[1]), float(parts[2])
        factor = float(parts[3]) if len(parts) == 4 else 0.0
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{spec!r}: {exc}")
    if not 0.0 <= start < end:
        raise argparse.ArgumentTypeError(
            f"bad outage window [{start}, {end}) in {spec!r} (need 0 <= start < end)"
        )
    if not 0.0 <= factor < 1.0:
        raise argparse.ArgumentTypeError(
            f"outage factor {factor} in {spec!r} out of [0, 1)"
        )
    return (tier, start, end, factor)


def _parse_node_crash(spec: str):
    """``NODE@TIME[:MODE]`` -> a ``FaultConfig.node_crashes`` entry
    (mode defaults to ``fail-stop``; ``power-loss`` preserves the SSD)."""
    head, sep, mode = spec.partition(":")
    mode = mode if sep else "fail-stop"
    if mode not in NODE_CRASH_MODES:
        raise argparse.ArgumentTypeError(
            f"unknown crash mode {mode!r} in {spec!r} "
            f"(expected one of {', '.join(NODE_CRASH_MODES)})"
        )
    node_s, sep, time_s = head.partition("@")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected NODE@TIME[:MODE], got {spec!r}"
        )
    try:
        node, time = int(node_s), float(time_s)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{spec!r}: {exc}")
    if node < 0 or time < 0:
        raise argparse.ArgumentTypeError(
            f"{spec!r}: node id and time must be non-negative"
        )
    return (node, time, mode)


def _parse_node_rejoin(spec: str):
    """``NODE@TIME`` -> a ``FaultConfig.node_rejoins`` entry."""
    node_s, sep, time_s = spec.partition("@")
    if not sep:
        raise argparse.ArgumentTypeError(f"expected NODE@TIME, got {spec!r}")
    try:
        node, time = int(node_s), float(time_s)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{spec!r}: {exc}")
    if node < 0 or time < 0:
        raise argparse.ArgumentTypeError(
            f"{spec!r}: node id and time must be non-negative"
        )
    return (node, time)


def _parse_partition(spec: str):
    """``A-B@START:END`` -> a ``FaultConfig.partitions`` entry (a pairwise
    network partition window in nominal seconds, end-exclusive)."""
    pair, sep, window = spec.partition("@")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected A-B@START:END, got {spec!r}"
        )
    try:
        node_a, node_b = (int(part) for part in pair.split("-", 1))
        start, end = (float(part) for part in window.split(":", 1))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{spec!r}: {exc}")
    if node_a == node_b:
        raise argparse.ArgumentTypeError(
            f"{spec!r}: a partition needs two distinct nodes"
        )
    if node_a < 0 or node_b < 0:
        raise argparse.ArgumentTypeError(f"{spec!r}: node ids must be non-negative")
    if not 0.0 <= start < end:
        raise argparse.ArgumentTypeError(
            f"bad partition window [{start}, {end}) in {spec!r} "
            "(need 0 <= start < end)"
        )
    return (node_a, node_b, start, end)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="run a workload with the trace bus on and export the telemetry",
    )
    parser.add_argument("workload", choices=sorted(_DEFAULTS))
    parser.add_argument("--out-dir", default="traces", help="output directory")
    parser.add_argument("--snapshots", type=int, default=None, help="snapshots per rank")
    parser.add_argument("--processes", type=int, default=None, help="ranks (one GPU each)")
    parser.add_argument(
        "--order",
        choices=[o.value for o in RestoreOrder],
        default=RestoreOrder.REVERSE.value,
        help="restore order (default: reverse)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--predict",
        choices=["hints", "learned", "none"],
        default="hints",
        help="restore foreknowledge: explicit hints (default), online "
        "access-pattern prediction (no hints), or demand-only",
    )
    parser.add_argument(
        "--sched",
        action="store_true",
        help="enable QoS transfer scheduling and dump per-link "
        "queue-depth/preemption timelines",
    )
    parser.add_argument(
        "--reduce",
        action="store_true",
        help="enable the data-reduction pipeline and dump per-checkpoint "
        "logical/physical bytes, dedup hit rate and delta-chain depths",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="enable pipelined chunk streaming through the flush/prefetch "
        "cascade; chunk-level spans nest under each stage's track in the "
        "Perfetto export",
    )
    parser.add_argument(
        "--similarity",
        type=float,
        default=0.9,
        help="snapshot-to-snapshot payload similarity used with --reduce "
        "(default: 0.9)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject transient transfer faults at this per-transfer "
        "probability (implies fault injection on)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=93,
        help="seed of the deterministic fault plan (default: 93)",
    )
    parser.add_argument(
        "--outage",
        action="append",
        type=_parse_outage,
        metavar="TIER:START:END[:FACTOR]",
        help="tier outage window in nominal seconds, e.g. ssd:5:20 (hard) "
        "or pfs:5:20:0.25 (brownout); repeatable",
    )
    parser.add_argument(
        "--corruption-rate",
        type=float,
        default=0.0,
        help="probability that a durable blob lands bit-corrupted at rest",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="NODES",
        help="run the grid as an N-node checkpoint fabric (peer SSD reads, "
        "ring replication, anti-entropy repair); --processes must divide N",
    )
    parser.add_argument(
        "--node-crash",
        action="append",
        type=_parse_node_crash,
        metavar="NODE@TIME[:MODE]",
        help="crash a whole node at a nominal time, e.g. 1@5 (fail-stop, "
        "SSD lost) or 1@5:power-loss (SSD survives); repeatable, "
        "needs --cluster",
    )
    parser.add_argument(
        "--node-rejoin",
        action="append",
        type=_parse_node_rejoin,
        metavar="NODE@TIME",
        help="rejoin a crashed node at a nominal time (catch-up backfill "
        "before it re-enters the replication ring); repeatable",
    )
    parser.add_argument(
        "--partition",
        action="append",
        type=_parse_partition,
        metavar="A-B@START:END",
        help="pairwise network partition window in nominal seconds, e.g. "
        "0-1@5:20; repeatable, needs --cluster",
    )
    parser.add_argument(
        "--crash-point",
        default=None,
        help="kill the engine at a flush-stage boundary, e.g. after-h2f "
        "(one-shot; see repro.faults)",
    )
    parser.add_argument(
        "--resilient",
        action="store_true",
        help="enable the self-healing stack (retries, circuit breakers, "
        "reroute+backfill, CRC reverify, manifest journal)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="DEBUG logging of the repro runtime"
    )
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging(logging.DEBUG)
    node_chaos = args.node_crash or args.node_rejoin or args.partition
    if node_chaos and args.cluster is None:
        parser.exit(
            2,
            f"{parser.prog}: error: --node-crash/--node-rejoin/--partition "
            "need --cluster\n",
        )
    faults = None
    if (
        args.fault_rate > 0.0
        or args.outage
        or args.corruption_rate > 0.0
        or args.crash_point is not None
        or node_chaos
    ):
        try:
            faults = FaultConfig(
                enabled=True,
                seed=args.fault_seed,
                transfer_fault_rate=args.fault_rate,
                tier_outages=tuple(args.outage or ()),
                corruption_rate=args.corruption_rate,
                crash_point=args.crash_point,
                node_crashes=tuple(args.node_crash or ()),
                node_rejoins=tuple(args.node_rejoin or ()),
                partitions=tuple(args.partition or ()),
            )
        except ConfigError as exc:
            parser.exit(2, f"{parser.prog}: error: {exc}\n")
    try:
        out = run_trace(
            args.workload,
            out_dir=args.out_dir,
            snapshots=args.snapshots,
            processes=args.processes,
            order=RestoreOrder(args.order),
            seed=args.seed,
            sched=args.sched,
            reduce=args.reduce,
            stream=args.stream,
            similarity=args.similarity,
            faults=faults,
            resilient=args.resilient,
            predict=args.predict,
            cluster_nodes=args.cluster,
        )
    except ConfigError as exc:
        parser.exit(2, f"{parser.prog}: error: {exc}\n")
    print(out["rendered"])
    if "predict_rendered" in out:
        print()
        print(out["predict_rendered"])
    if "sched_rendered" in out:
        print()
        print(out["sched_rendered"])
    if "reduce_rendered" in out:
        print()
        print(out["reduce_rendered"])
    print()
    print(f"wrote {out['events']} events:")
    for key in ("trace", "jsonl", "summary", "predict", "sched", "reduce"):
        if key in out:
            print(f"  {out[key]}")
    print("open the .trace.json at https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
