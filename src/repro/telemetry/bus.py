"""The trace bus: ring-buffered spans and instant events on virtual time.

A :class:`TraceBus` is a bounded, thread-safe sink for fine-grained runtime
events — FSM transitions, eviction decisions, flush/prefetch stages — each
stamped on the engine's :class:`~repro.clock.VirtualClock` so a trace lines
up exactly with the nominal-time throughput numbers the paper reports.

Design constraints (the bus sits on the runtime's metadata paths):

* **Cheap when disabled.**  A disabled bus emits *nothing*: ``instant``
  returns after one attribute check and ``span`` hands back a shared no-op
  context manager — no event objects, no buffer traffic, no locking.
* **Bounded when enabled.**  Events live in a ring of ``capacity`` entries;
  overflow silently drops the *oldest* events (the tail of a long run is
  what one usually debugs) and counts the drops in :attr:`dropped`.
* **One short lock.**  Appends take a single mutex around a deque append
  and a counter increment; payload formatting happens outside it.

Tracks
------
Every event names a *track* — the timeline it renders on in Perfetto (one
per cache tier, background thread, and store).  Use :meth:`TraceBus.track`
to build conventional track names.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.clock import VirtualClock

#: Per-process track convention (:meth:`TraceBus.track`): ``p<pid>-...``.
_PID_TRACK_RE = re.compile(r"^p(\d+)-")

#: Default ring capacity: enough for a full benchmark shot (a 192-snapshot
#: 8-rank run emits ~50k events) without unbounded growth on long runs.
DEFAULT_CAPACITY = 1 << 17


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One trace record.

    ``phase`` follows the Chrome trace-event vocabulary the exporter emits:
    ``"X"`` — a complete span of ``dur`` nominal seconds starting at ``ts``;
    ``"i"`` — an instant event at ``ts``.

    The three causal fields are optional (all ``None`` unless
    ``AnalysisConfig.enabled`` attaches them): ``op_id`` ties the event to
    one operation's lifetime (``c<pid>:<ckpt>`` checkpoint,
    ``r<pid>:<ckpt>`` restore, ``f<pid>:<ckpt>`` prefetch chain),
    ``parent_id`` links an operation to the operation that caused it, and
    ``category`` names the attribution bucket the event's duration charges
    (see :data:`repro.telemetry.causal.CATEGORIES`).
    """

    name: str
    track: str
    ts: float  # nominal seconds
    phase: str = "i"
    dur: float = 0.0  # nominal seconds (spans only)
    args: dict = field(default_factory=dict)
    op_id: Optional[str] = None
    parent_id: Optional[str] = None
    category: Optional[str] = None
    #: cluster attribution (None outside fabric-enabled runs): the node
    #: whose hardware the event ran on, and the engine (process id) that
    #: caused it. Stamped by the bus from the track bindings, so emitters
    #: never thread node ids through their call chains.
    node_id: Optional[int] = None
    engine_id: Optional[int] = None


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_bus", "_name", "_track", "_args", "_started", "_op_id", "_parent_id", "_category")

    def __init__(
        self,
        bus: "TraceBus",
        name: str,
        track: str,
        args: dict,
        op_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> None:
        self._bus = bus
        self._name = name
        self._track = track
        self._args = args
        self._started = 0.0
        self._op_id = op_id
        self._parent_id = parent_id
        self._category = category

    def __enter__(self) -> "_Span":
        self._started = self._bus.clock.now()
        return self

    def add(self, **args) -> None:
        """Attach extra args discovered while the span is open."""
        self._args.update(args)

    def __exit__(self, *exc_info) -> None:
        now = self._bus.clock.now()
        self._bus._append(
            TraceEvent(
                name=self._name,
                track=self._track,
                ts=self._started,
                phase="X",
                dur=now - self._started,
                args=self._args,
                op_id=self._op_id,
                parent_id=self._parent_id,
                category=self._category,
            )
        )


class _NullSpan:
    """Shared no-op span handed out by a disabled bus."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def add(self, **args) -> None:
        pass

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class TraceBus:
    """Bounded sink of :class:`TraceEvent` for one simulation."""

    def __init__(
        self,
        clock: VirtualClock,
        enabled: bool = True,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"trace buffer capacity must be positive: {capacity}")
        self.clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._emitted = 0
        self._lock = threading.Lock()
        # Track → (node_id, engine_id) attribution (cluster runs only;
        # empty maps keep _append on the historical two-statement path).
        self._bind_exact: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
        self._bind_pid: Dict[int, int] = {}
        self._bind_cache: Dict[str, Tuple[Optional[int], Optional[int]]] = {}

    # -- emission -----------------------------------------------------------
    def instant(
        self,
        name: str,
        track: str,
        op_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        category: Optional[str] = None,
        **args,
    ) -> None:
        """Record an instant event now (no-op when disabled)."""
        if not self.enabled:
            return
        self._append(
            TraceEvent(
                name=name,
                track=track,
                ts=self.clock.now(),
                phase="i",
                args=args,
                op_id=op_id,
                parent_id=parent_id,
                category=category,
            )
        )

    def span(
        self,
        name: str,
        track: str,
        op_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        category: Optional[str] = None,
        **args,
    ):
        """A context manager timing one operation (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, track, args, op_id=op_id, parent_id=parent_id, category=category)

    def complete(
        self,
        name: str,
        track: str,
        ts: float,
        dur: float,
        op_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        category: Optional[str] = None,
        **args,
    ) -> None:
        """Record a back-dated complete ("X") span with explicit timing.

        Used by the causal layer to materialise waits measured between two
        known points (queue fills) without holding a context manager open.
        """
        if not self.enabled:
            return
        self._append(
            TraceEvent(
                name=name,
                track=track,
                ts=ts,
                phase="X",
                dur=dur,
                args=args,
                op_id=op_id,
                parent_id=parent_id,
                category=category,
            )
        )

    # -- node/engine attribution ----------------------------------------------
    def bind_track(
        self,
        track: str,
        node_id: Optional[int] = None,
        engine_id: Optional[int] = None,
    ) -> None:
        """Stamp every future event on ``track`` with a node/engine id."""
        with self._lock:
            self._bind_exact[track] = (node_id, engine_id)
            self._bind_cache.clear()

    def bind_process(self, process_id: int, node_id: int) -> None:
        """Stamp every future ``p<pid>-*`` event with its node and engine."""
        with self._lock:
            self._bind_pid[process_id] = node_id
            self._bind_cache.clear()

    def _resolve_binding(self, track: str) -> Tuple[Optional[int], Optional[int]]:
        """(node_id, engine_id) for a track; caller holds ``_lock``."""
        binding = self._bind_cache.get(track)
        if binding is None:
            binding = self._bind_exact.get(track)
            if binding is None:
                match = _PID_TRACK_RE.match(track)
                if match is not None:
                    pid = int(match.group(1))
                    binding = (self._bind_pid.get(pid), pid)
                else:
                    binding = (None, None)
            self._bind_cache[track] = binding
        return binding

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            if (self._bind_exact or self._bind_pid) and event.node_id is None:
                node_id, engine_id = self._resolve_binding(event.track)
                if node_id is not None or engine_id is not None:
                    event = replace(event, node_id=node_id, engine_id=engine_id)
            self._events.append(event)
            self._emitted += 1

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (including those the ring dropped)."""
        with self._lock:
            return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        with self._lock:
            return self._emitted - len(self._events)

    def snapshot(self) -> List[TraceEvent]:
        """A consistent copy of the retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop buffered events; track bindings persist across clears."""
        with self._lock:
            self._events.clear()
            self._emitted = 0

    def tracks(self) -> List[str]:
        """Distinct track names present, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self.snapshot():
            seen.setdefault(event.track, None)
        return list(seen)

    # -- naming conventions ---------------------------------------------------
    @staticmethod
    def track(process_id: Optional[int], component: str) -> str:
        """Conventional track name: ``p<pid>-<component>`` or ``<component>``.

        Per-process tracks (caches, flush streams, the prefetcher, the
        application thread) carry the pid prefix; cluster-shared resources
        (SSD, PFS) use the bare component name.
        """
        if process_id is None:
            return component
        return f"p{process_id}-{component}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return f"TraceBus({state}, {len(self)}/{self.capacity} events)"
