"""Causal operation tracing: op ids, stages, and queue fills.

One :class:`OpTrace` follows a single logical operation — a
``checkpoint()``, a ``restore()``, or a prefetch chain — through every
thread it touches: the application thread, the flush streams, the
prefetcher.  Every span it emits carries the operation's ``op_id`` and an
attribution ``category``, so :mod:`repro.analysis` can rebuild the
operation's span DAG and account its wall time.

Accounting completeness is achieved *by construction* with a cursor: the
op remembers the virtual time up to which its timeline is covered, and
every stage first back-fills the gap ``[cursor, now]`` as a ``wait`` span
(category ``queue``) before timing its own body.  Stages therefore tile
the operation's window; the analyzer's ≥95 % invariant holds without
guessing where bookkeeping time went.

Op-id format (stable across runs, so ``repro analyze --diff`` can align
operations): ``c<pid>:<ckpt>`` checkpoint, ``r<pid>:<ckpt>`` restore,
``f<pid>:<ckpt>`` prefetch chain.  Restores and prefetches name the
checkpoint op that produced their data as ``parent_id``.

Everything here is gated by ``AnalysisConfig.enabled``: a disabled
:class:`OpTracer` hands out the shared :data:`NULL_OP`, whose methods are
no-ops and whose ``op_id`` is ``None`` — call sites pass it through
unconditionally and stay bit-identical to the pre-causal runtime.
"""

from __future__ import annotations

import re
import threading
from typing import Optional

from repro.telemetry.bus import TraceBus

# -- category taxonomy -------------------------------------------------------
#: waiting for a turn: stream queues, sched admission, inter-stage gaps,
#: inflight-transfer stalls, and (honestly) simulator bookkeeping.
CAT_QUEUE = "queue"
#: bytes moving on a tier link (d2h/h2f/f2p/repl/promotions).
CAT_TRANSFER = "transfer"
#: retry machinery: backoff sleeps, re-verification re-puts.
CAT_RETRY = "retry"
#: flushing around an open breaker (direct-to-PFS) and backfill catch-up.
CAT_REROUTE = "reroute"
#: reduction codec compute (encode/decode).
CAT_REDUCE = "reduce"
#: blocking on cache capacity (eviction waits).
CAT_RESERVE = "reserve"
#: manifest-journal commits/retracts.
CAT_JOURNAL = "journal"

#: Every category the analyzer recognises.
CATEGORIES = (
    CAT_QUEUE,
    CAT_TRANSFER,
    CAT_RETRY,
    CAT_REROUTE,
    CAT_REDUCE,
    CAT_RESERVE,
    CAT_JOURNAL,
)

#: Tie-break for the attribution sweep when two overlapping spans of one op
#: start at the same instant (the primary rule is innermost-wins, i.e.
#: later start): the higher value takes the interval — a backoff opening
#: exactly with its transfer charges to ``retry``, not ``transfer``.
CATEGORY_PRIORITY = {
    CAT_RETRY: 7,
    CAT_REDUCE: 6,
    CAT_RESERVE: 5,
    CAT_REROUTE: 4,
    CAT_TRANSFER: 3,
    CAT_JOURNAL: 2,
    CAT_QUEUE: 1,
}

#: op-id grammar: kind letter, process id, checkpoint id.
OP_ID_RE = re.compile(r"^([crf])(\d+):(\d+)$")

#: op-id kind letter -> operation kind.
OP_KINDS = {"c": "checkpoint", "r": "restore", "f": "prefetch"}


def parse_op_id(op_id: str):
    """``(kind, pid, ckpt_id)`` for a well-formed op id, else ``None``."""
    m = OP_ID_RE.match(op_id)
    if not m:
        return None
    return OP_KINDS[m.group(1)], int(m.group(2)), int(m.group(3))


def checkpoint_op_id(pid: int, ckpt_id: int) -> str:
    return f"c{pid}:{ckpt_id}"


def restore_op_id(pid: int, ckpt_id: int) -> str:
    return f"r{pid}:{ckpt_id}"


def prefetch_op_id(pid: int, ckpt_id: int) -> str:
    return f"f{pid}:{ckpt_id}"


class _OpStage:
    """Context manager: back-fill the gap from the op cursor, time the body."""

    __slots__ = ("_op", "_name", "_track", "_category", "_args", "_entered")

    def __init__(self, op: "OpTrace", name: str, category: str, track: str, args: dict):
        self._op = op
        self._name = name
        self._track = track
        self._category = category
        self._args = args
        self._entered = 0.0

    def __enter__(self) -> "_OpStage":
        self._entered = self._op._fill_to_now(self._track)
        return self

    def add(self, **args) -> None:
        self._args.update(args)

    def __exit__(self, *exc_info) -> None:
        op = self._op
        now = op.bus.clock.now()
        op.bus.complete(
            self._name,
            self._track,
            self._entered,
            now - self._entered,
            op_id=op.op_id,
            category=self._category,
            **self._args,
        )
        op._advance(now)


class _NullStage:
    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def add(self, **args) -> None:
        pass

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_STAGE = _NullStage()


class OpTrace:
    """Causal identity + coverage cursor of one in-flight operation."""

    __slots__ = ("bus", "op_id", "parent_id", "track", "start", "_cursor", "_lock")

    def __init__(
        self, bus: TraceBus, op_id: str, track: str, parent_id: Optional[str] = None
    ) -> None:
        self.bus = bus
        self.op_id = op_id
        self.parent_id = parent_id
        self.track = track
        now = bus.clock.now()
        self.start = now
        self._cursor = now
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    # -- cursor ------------------------------------------------------------
    def _advance(self, now: float) -> None:
        with self._lock:
            if now > self._cursor:
                self._cursor = now

    def _fill_to_now(self, track: str) -> float:
        """Emit a ``wait`` span covering ``[cursor, now]``; returns ``now``.

        Concurrent flush legs may race here; the cursor only moves forward,
        so fills can overlap (the analyzer's sweep unions them) but never
        leave a gap.
        """
        now = self.bus.clock.now()
        with self._lock:
            gap_start = self._cursor
            if now > self._cursor:
                self._cursor = now
        if now > gap_start:
            self.bus.complete(
                "wait", track, gap_start, now - gap_start, op_id=self.op_id, category=CAT_QUEUE
            )
        return now

    # NOTE: there is deliberately no "advance the cursor to now" method for
    # use after a span emitted via ``bus.span``: reading the clock *after*
    # the span recorded its end would overshoot the cursor by the call
    # latency, leaving an unattributable sliver per span (hundreds of short
    # prefetch rounds push a chain op under the 95 % invariant).  Call
    # sites instead leave the cursor where it was; the next fill/stage
    # back-fills *over* the span and the attribution sweep's
    # innermost-wins rule hands the span its own interval.

    # -- emission ----------------------------------------------------------
    def stage(self, name: str, category: str, track: Optional[str] = None, **args):
        """Time a stage of this op, back-filling the gap since the cursor."""
        return _OpStage(self, name, category, track or self.track, args)

    def fill(self, name: str, category: str = CAT_QUEUE, track: Optional[str] = None, **args):
        """Back-fill ``[cursor, now]`` as one named span of ``category``."""
        now = self.bus.clock.now()
        with self._lock:
            gap_start = self._cursor
            if now > self._cursor:
                self._cursor = now
        if now > gap_start:
            self.bus.complete(
                name,
                track or self.track,
                gap_start,
                now - gap_start,
                op_id=self.op_id,
                category=category,
                **args,
            )

    def instant(
        self, name: str, track: Optional[str] = None, category: Optional[str] = None, **args
    ) -> None:
        self.bus.instant(
            name, track or self.track, op_id=self.op_id, category=category, **args
        )


class _NullOp:
    """Shared no-op stand-in when causal tracing is disabled."""

    __slots__ = ()
    op_id = None
    parent_id = None
    track = ""
    start = 0.0

    @property
    def enabled(self) -> bool:
        return False

    def stage(self, name: str, category: str, track: Optional[str] = None, **args):
        return _NULL_STAGE

    def fill(self, name: str, category: str = CAT_QUEUE, track: Optional[str] = None, **args):
        pass

    def instant(
        self, name: str, track: Optional[str] = None, category: Optional[str] = None, **args
    ) -> None:
        pass


NULL_OP = _NullOp()


class OpTracer:
    """Per-engine factory of :class:`OpTrace` handles.

    Disabled (``AnalysisConfig.enabled=False`` or the trace bus off) it
    returns :data:`NULL_OP` from every method, so call sites need no
    branching.
    """

    def __init__(self, bus: TraceBus, process_id: int, enabled: bool) -> None:
        self.bus = bus
        self.process_id = process_id
        self.enabled = bool(enabled) and bus.enabled

    def checkpoint(self, ckpt_id: int, track: str):
        if not self.enabled:
            return NULL_OP
        return OpTrace(self.bus, checkpoint_op_id(self.process_id, ckpt_id), track)

    def restore(self, ckpt_id: int, track: str):
        if not self.enabled:
            return NULL_OP
        return OpTrace(
            self.bus,
            restore_op_id(self.process_id, ckpt_id),
            track,
            parent_id=checkpoint_op_id(self.process_id, ckpt_id),
        )

    def prefetch(self, ckpt_id: int, track: str):
        if not self.enabled:
            return NULL_OP
        return OpTrace(
            self.bus,
            prefetch_op_id(self.process_id, ckpt_id),
            track,
            parent_id=checkpoint_op_id(self.process_id, ckpt_id),
        )
