"""Runtime observability: trace bus, metrics registry, exporters.

One :class:`Telemetry` object per simulation (the
:class:`~repro.tiers.topology.Cluster` owns it) bundles:

* :class:`~repro.telemetry.bus.TraceBus` — ring-buffered spans and instant
  events on the virtual clock (lifecycle transitions, eviction decisions
  with their Algorithm-1 scores, flush/prefetch stages);
* :class:`~repro.telemetry.metrics.MetricsRegistry` — named counters,
  gauges and histograms (occupancy, fragmentation, queue depths, eviction
  waits, per-tier bytes, restore hits per tier).

The trace bus is gated by ``RuntimeConfig.telemetry`` (default off —
near-zero overhead); the registry is always live, its counters being a few
dict operations per *operation* (not per byte).  Export with
:func:`~repro.telemetry.exporters.write_chrome_trace` (Perfetto),
:func:`~repro.telemetry.exporters.write_jsonl`, or
:func:`~repro.telemetry.exporters.render_summary`; or from the command
line::

    python -m repro trace quickstart --out-dir traces/
"""

from __future__ import annotations

from typing import Optional

from repro.clock import VirtualClock
from repro.telemetry.bus import DEFAULT_CAPACITY, NULL_SPAN, TraceBus, TraceEvent
from repro.telemetry.causal import CATEGORIES, NULL_OP, OpTrace, OpTracer
from repro.telemetry.exporters import (
    chrome_trace,
    events_by_track,
    filter_events,
    read_jsonl,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


class Telemetry:
    """Bundle of one simulation's trace bus and metrics registry."""

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        enabled: bool = False,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.bus = TraceBus(clock or VirtualClock(), enabled=enabled, capacity=capacity)
        self.registry = MetricsRegistry()

    @property
    def enabled(self) -> bool:
        """Whether the trace bus records events."""
        return self.bus.enabled

    @staticmethod
    def disabled() -> "Telemetry":
        """A fresh, silent instance (used when no cluster provides one)."""
        return Telemetry(enabled=False)


__all__ = [
    "Telemetry",
    "TraceBus",
    "TraceEvent",
    "NULL_SPAN",
    "DEFAULT_CAPACITY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "render_summary",
    "events_by_track",
    "filter_events",
    "OpTrace",
    "OpTracer",
    "NULL_OP",
    "CATEGORIES",
]
