"""Exception hierarchy for the checkpoint runtime.

All runtime-raised exceptions derive from :class:`ReproError` so callers can
catch library failures without masking programming errors (``TypeError`` etc.
are still raised directly for misuse of the API surface).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` runtime."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AllocationError(ReproError):
    """A cache arena or device allocation could not be satisfied."""


class CapacityError(AllocationError):
    """The requested object can never fit the tier, even when empty."""


class FragmentationError(AllocationError):
    """No eviction window can produce a large-enough contiguous gap."""


class LifecycleError(ReproError):
    """An invalid checkpoint state transition was attempted."""


class CheckpointNotFound(ReproError):
    """The requested checkpoint version does not exist on any tier."""


class IntegrityError(ReproError):
    """Restored payload bytes do not match the recorded checksum."""


class EngineClosedError(ReproError):
    """An operation was issued after the engine was shut down."""


class HintError(ReproError):
    """A prefetch hint is invalid (e.g. enqueued after being consumed)."""


class TransferError(ReproError):
    """An asynchronous transfer failed or was cancelled unexpectedly."""


class TransientTransferError(TransferError):
    """A transfer failed mid-flight for a recoverable reason (injected
    link fault, tier brownout); retrying the same transfer may succeed.
    Carries ``bytes_moved`` so callers can account partial progress."""

    def __init__(self, message: str, bytes_moved: int = 0):
        super().__init__(message)
        self.bytes_moved = bytes_moved


class TierOfflineError(TransientTransferError):
    """The target tier is inside an outage window (or its circuit breaker
    is open); the operation may succeed on another tier or after the
    window ends."""


class AdmissionError(TransferError):
    """A shared-link scheduler shed the transfer at admission (its bounded
    queue is full); the caller should back off and retry later."""


class BackpressureError(ReproError):
    """``checkpoint()`` shed the operation under flush-backlog overload
    (``SchedConfig.admission == "shed"``); retry after flushes drain."""


class FlushTimeoutError(TransferError):
    """``wait_for_flushes`` exceeded its timeout; the message carries the
    queue depths and in-flight transfer state needed to diagnose the stall."""


class UvmError(ReproError):
    """Unified-virtual-memory simulation misuse (bad advice, OOB access)."""


class InjectedCrash(ReproError):
    """A :class:`~repro.config.FaultConfig` crash point fired: the engine
    process is considered dead from this instant.  Every subsequent engine
    operation fails until a new engine is incarnated over the same cluster
    and ``recover_history()`` replays the durable manifest."""
