"""repro — reproduction of "GPU-Enabled Asynchronous Multi-level Checkpoint
Caching and Prefetching" (HPDC '23).

Quick start::

    from repro import Client, Cluster, bench_config

    cfg = bench_config()
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with Client.create(ctx) as client:
            buf = ctx.device.alloc_buffer(128 * 2**20)
            client.mem_protect(1, buf)
            client.checkpoint("wavefield", version=0)
            client.restart(version=0)

See ``examples/quickstart.py`` for a runnable version, DESIGN.md for the
architecture, and EXPERIMENTS.md for the paper-figure reproductions.
"""

from repro.config import (
    BENCH_SCALE,
    CacheConfig,
    HardwareSpec,
    RuntimeConfig,
    ScaleModel,
    bench_config,
)
from repro.clock import VirtualClock
from repro.core.client import Client
from repro.core.engine import ScoreEngine
from repro.baselines.adios2 import Adios2Engine
from repro.baselines.uvm_runtime import UvmEngine
from repro.tiers.topology import Cluster, Node, ProcessContext
from repro.metrics.recorder import Recorder

__version__ = "1.0.0"

__all__ = [
    "BENCH_SCALE",
    "CacheConfig",
    "HardwareSpec",
    "RuntimeConfig",
    "ScaleModel",
    "bench_config",
    "VirtualClock",
    "Client",
    "ScoreEngine",
    "Adios2Engine",
    "UvmEngine",
    "Cluster",
    "Node",
    "ProcessContext",
    "Recorder",
]
