"""Small statistics helpers for metric aggregation and reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    stddev: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} min={self.minimum:.4g} "
            f"max={self.maximum:.4g} sd={self.stddev:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sequence of numbers."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    total = float(sum(values))
    mean = total / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return Summary(
        count=n,
        total=total,
        mean=mean,
        minimum=float(min(values)),
        maximum=float(max(values)),
        stddev=math.sqrt(var),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if len(values) == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (natural for averaging throughputs over equal work)."""
    if len(values) == 0:
        raise ValueError("cannot average an empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
