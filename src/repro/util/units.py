"""Byte-size and bandwidth unit helpers.

The paper quotes sizes in binary-ish marketing units (``128 MB`` checkpoints,
``4 GB`` GPU cache, ``25 GB/s`` PCIe).  We standardize on binary multiples
(``MiB``/``GiB``) internally; the parser accepts both spellings and treats
``MB`` as ``MiB`` etc., which is what the paper's arithmetic implies
(4 GB cache / 128 MB checkpoints = exactly 32 checkpoints).
"""

from __future__ import annotations

import re

from repro.errors import ConfigError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

_UNIT_FACTORS = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(value) -> int:
    """Parse a size into bytes.

    Accepts an ``int`` (returned unchanged), a ``float`` with integral value,
    or a string such as ``"128MB"``, ``"4 GiB"``, ``"0.5g"``.

    >>> parse_size("128MB") == 128 * MiB
    True
    """
    if isinstance(value, bool):
        raise ConfigError(f"not a size: {value!r}")
    if isinstance(value, int):
        if value < 0:
            raise ConfigError(f"negative size: {value}")
        return value
    if isinstance(value, float):
        if value < 0 or value != int(value):
            raise ConfigError(f"not an integral byte count: {value}")
        return int(value)
    if not isinstance(value, str):
        raise ConfigError(f"not a size: {value!r}")
    m = _SIZE_RE.match(value)
    if not m:
        raise ConfigError(f"unparseable size: {value!r}")
    number, unit = m.groups()
    factor = _UNIT_FACTORS.get(unit.lower())
    if factor is None:
        raise ConfigError(f"unknown size unit {unit!r} in {value!r}")
    result = float(number) * factor
    if result != int(result):
        raise ConfigError(f"size {value!r} is not a whole number of bytes")
    return int(result)


def format_size(nbytes: int) -> str:
    """Render a byte count in the largest unit with a short mantissa.

    >>> format_size(128 * MiB)
    '128MiB'
    """
    if nbytes < 0:
        raise ConfigError(f"negative size: {nbytes}")
    for unit, factor in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if nbytes >= factor:
            value = nbytes / factor
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.2f}{unit}"
    return f"{nbytes}B"


def parse_bandwidth(value) -> float:
    """Parse a bandwidth into bytes/second.

    Accepts numbers (bytes/s) or strings such as ``"25GB/s"`` / ``"4 GiB/s"``.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if value <= 0:
            raise ConfigError(f"bandwidth must be positive: {value}")
        return float(value)
    if not isinstance(value, str):
        raise ConfigError(f"not a bandwidth: {value!r}")
    text = value.strip()
    if text.lower().endswith("/s"):
        text = text[:-2]
    m = _SIZE_RE.match(text)
    if not m:
        raise ConfigError(f"unparseable bandwidth: {value!r}")
    number, unit = m.groups()
    factor = _UNIT_FACTORS.get(unit.lower())
    if factor is None:
        raise ConfigError(f"unknown bandwidth unit {unit!r} in {value!r}")
    rate = float(number) * factor  # fractional byte rates are fine
    if rate <= 0:
        raise ConfigError(f"bandwidth must be positive: {value!r}")
    return rate


def format_bandwidth(bps: float) -> str:
    """Render a bytes/second rate, e.g. ``format_bandwidth(25*GiB)`` → ``'25GiB/s'``."""
    if bps <= 0:
        raise ConfigError(f"bandwidth must be positive: {bps}")
    for unit, factor in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if bps >= factor:
            value = bps / factor
            if abs(value - round(value)) < 1e-9:
                return f"{int(round(value))}{unit}/s"
            return f"{value:.2f}{unit}/s"
    return f"{bps:.0f}B/s"
