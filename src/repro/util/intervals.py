"""Half-open interval arithmetic used by allocation tables and UVM paging.

An :class:`Interval` is ``[start, stop)`` over integer byte offsets.  An
:class:`IntervalSet` maintains a disjoint, sorted, coalesced collection and
supports the set algebra the cache arena needs (add/remove/overlap queries).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(f"inverted interval [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        return self.stop - self.start

    def is_empty(self) -> bool:
        return self.stop == self.start

    def contains(self, offset: int) -> bool:
        return self.start <= offset < self.stop

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "Interval") -> bool:
        """True when the intervals overlap or are adjacent (can coalesce)."""
        return self.start <= other.stop and other.start <= self.stop

    def intersection(self, other: "Interval") -> "Interval":
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if stop < start:
            return Interval(start, start)
        return Interval(start, stop)

    def union_touching(self, other: "Interval") -> "Interval":
        if not self.touches(other):
            raise ValueError(f"{self} and {other} neither overlap nor touch")
        return Interval(min(self.start, other.start), max(self.stop, other.stop))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.stop})"


class IntervalSet:
    """A sorted, disjoint, coalesced set of half-open intervals."""

    def __init__(self, intervals: Optional[Iterable[Interval]] = None) -> None:
        self._starts: List[int] = []
        self._stops: List[int] = []
        if intervals:
            for iv in intervals:
                self.add(iv)

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        for start, stop in zip(self._starts, self._stops):
            yield Interval(start, stop)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._stops == other._stops

    def total_length(self) -> int:
        return sum(stop - start for start, stop in zip(self._starts, self._stops))

    def contains(self, offset: int) -> bool:
        idx = bisect.bisect_right(self._starts, offset) - 1
        return idx >= 0 and offset < self._stops[idx]

    def covers(self, iv: Interval) -> bool:
        """True when ``iv`` lies entirely inside one stored interval."""
        if iv.is_empty():
            return True
        idx = bisect.bisect_right(self._starts, iv.start) - 1
        return idx >= 0 and self._stops[idx] >= iv.stop

    def overlapping(self, iv: Interval) -> List[Interval]:
        """All stored intervals intersecting ``iv``."""
        if iv.is_empty():
            return []
        out = []
        idx = bisect.bisect_left(self._starts, iv.start)
        if idx > 0 and self._stops[idx - 1] > iv.start:
            idx -= 1
        while idx < len(self._starts) and self._starts[idx] < iv.stop:
            out.append(Interval(self._starts[idx], self._stops[idx]))
            idx += 1
        return out

    def first_fit(self, length: int) -> Optional[Interval]:
        """The lowest-offset stored interval at least ``length`` long."""
        if length <= 0:
            raise ValueError(f"length must be positive: {length}")
        for start, stop in zip(self._starts, self._stops):
            if stop - start >= length:
                return Interval(start, start + length)
        return None

    # -- mutation --------------------------------------------------------
    def add(self, iv: Interval) -> None:
        """Insert ``iv``, coalescing with overlapping/adjacent intervals."""
        if iv.is_empty():
            return
        start, stop = iv.start, iv.stop
        lo = bisect.bisect_left(self._stops, start)
        hi = bisect.bisect_right(self._starts, stop)
        if lo < hi:
            start = min(start, self._starts[lo])
            stop = max(stop, self._stops[hi - 1])
        del self._starts[lo:hi]
        del self._stops[lo:hi]
        self._starts.insert(lo, start)
        self._stops.insert(lo, stop)

    def remove(self, iv: Interval) -> None:
        """Remove ``iv`` from the set (no-op where nothing is stored)."""
        if iv.is_empty():
            return
        lo = bisect.bisect_right(self._stops, iv.start)
        new_starts: List[int] = []
        new_stops: List[int] = []
        idx = lo
        while idx < len(self._starts) and self._starts[idx] < iv.stop:
            s, e = self._starts[idx], self._stops[idx]
            if s < iv.start:
                new_starts.append(s)
                new_stops.append(iv.start)
            if e > iv.stop:
                new_starts.append(iv.stop)
                new_stops.append(e)
            idx += 1
        self._starts[lo:idx] = new_starts
        self._stops[lo:idx] = new_stops

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._starts = list(self._starts)
        out._stops = list(self._stops)
        return out

    def as_tuples(self) -> List[Tuple[int, int]]:
        return list(zip(self._starts, self._stops))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"[{s}, {e})" for s, e in self.as_tuples())
        return f"IntervalSet({body})"
