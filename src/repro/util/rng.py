"""Deterministic RNG derivation.

Every stochastic component (workload sizes, irregular restore orders,
payload bytes) derives its generator from a root seed plus a string label so
runs are reproducible and components are statistically independent.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *labels) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a label path.

    Stable across processes and Python versions (uses SHA-256, not ``hash``).
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little")


def make_rng(root_seed: int, *labels) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root_seed, *labels))
