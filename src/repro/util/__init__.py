"""Shared small utilities: unit parsing, interval math, statistics, RNG."""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    TiB,
    parse_size,
    format_size,
    parse_bandwidth,
    format_bandwidth,
)
from repro.util.intervals import Interval, IntervalSet
from repro.util.stats import Summary, summarize, percentile
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "parse_size",
    "format_size",
    "parse_bandwidth",
    "format_bandwidth",
    "Interval",
    "IntervalSet",
    "Summary",
    "summarize",
    "percentile",
    "derive_seed",
    "make_rng",
]
