"""Binomial (Griewank–Walther *revolve*) checkpointing schedules.

Adjoint computations that cannot store every forward state use binomial
checkpointing: with ``snapshots`` storage slots, the optimal schedule
recomputes forward steps in a binomial recursion pattern, restoring each
stored state several times in a decidedly non-LIFO order — the classic
stress test for eviction policies tuned to sequential-reverse traces.

:func:`revolve_schedule` emits the optimal action list (``snapshot`` /
``advance`` / ``restore`` / ``adjoint``), choosing every split point by
the dynamic program over the recurrence::

    W(n, s) = min_{1<=k<n} [ k + W(n-k, s-1) + W(k, s) ]     W(n, 0) = n(n-1)/2

(``W`` = recomputed forward steps), so the schedule's revisit counts are
testable against the recurrence directly.

:func:`materialize` maps the state-level schedule onto the engine's
consume-once checkpoint semantics: every ``snapshot`` stores the state
under a fresh checkpoint id, and a ``restore`` whose state is needed
again later immediately re-checkpoints it under a new id (the
application still holds the state in memory) — exactly the churn that
stresses cache scoring.  The materialized op list is deterministic, so
the oracle restore-id order for hint mode falls out of it for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.simgpu.memory import DeviceBuffer
from repro.util.rng import make_rng
from repro.util.units import MiB

#: schedule actions: ("snapshot", state) | ("advance", src, dst)
#: | ("restore", state) | ("adjoint", state)
Action = Tuple


@lru_cache(maxsize=None)
def min_forward_steps(n: int, snaps: int) -> int:
    """``W(n, s)`` of the binomial recurrence (recomputed forward steps)."""
    if n <= 1:
        return 0
    if snaps == 0:
        return n * (n - 1) // 2
    return min(
        k + min_forward_steps(n - k, snaps - 1) + min_forward_steps(k, snaps)
        for k in range(1, n)
    )


def _split(n: int, snaps: int) -> int:
    """The smallest optimal split point for ``rec`` (deterministic)."""
    best_k, best = 1, None
    for k in range(1, n):
        cost = k + min_forward_steps(n - k, snaps - 1) + min_forward_steps(k, snaps)
        if best is None or cost < best:
            best_k, best = k, cost
    return best_k


def revolve_schedule(steps: int, snapshots: int) -> List[Action]:
    """Optimal binomial schedule reversing ``steps`` forward steps with
    ``snapshots`` total storage slots (state 0 occupies one)."""
    if steps < 1:
        raise ConfigError(f"steps must be >= 1: {steps}")
    if snapshots < 1:
        raise ConfigError(f"snapshots must be >= 1: {snapshots}")
    actions: List[Action] = [("snapshot", 0)]

    def rec(start: int, end: int, snaps: int) -> None:
        # Reverse primal steps ``start .. end-1``; state ``start`` is
        # stored; ``snaps`` further slots are free.
        n = end - start
        if n == 0:
            return
        if n == 1:
            actions.append(("restore", start))
            actions.append(("adjoint", start))
            return
        if snaps == 0:
            # No free slot: recompute from ``start`` for every adjoint
            # step (the quadratic tail of the recurrence).
            for target in range(end - 1, start - 1, -1):
                actions.append(("restore", start))
                if target > start:
                    actions.append(("advance", start, target))
                actions.append(("adjoint", target))
            return
        mid = start + _split(n, snaps)
        actions.append(("restore", start))
        actions.append(("advance", start, mid))
        actions.append(("snapshot", mid))
        rec(mid, end, snaps - 1)
        # ``mid``'s slot frees once its half is reversed.
        rec(start, mid, snaps)

    rec(0, steps, snapshots - 1)
    return actions


#: materialized ops: ("checkpoint", ckpt_id, state) |
#: ("restore", ckpt_id, state, recheckpoint_id | None) |
#: ("advance", forward_steps) | ("adjoint", state)
Op = Tuple


def materialize(actions: List[Action]) -> List[Op]:
    """Map the state-level schedule onto consume-once checkpoint ids.

    A restore consumes its checkpoint; when the same stored state is
    restored again later (with no fresh ``snapshot`` in between) the op
    carries a ``recheckpoint_id`` so the driver re-stores it immediately.
    """
    # Future restore counts per action index, per state, between
    # snapshots: walk backwards once.
    ops: List[Op] = []
    live: Dict[int, int] = {}  # state -> current ckpt id
    next_id = 0
    # remaining_restores[i] = for the action at i (a restore of state q),
    # whether another restore of q occurs later before q is re-snapshotted.
    needed_later: List[bool] = [False] * len(actions)
    last_seen: Dict[int, bool] = {}
    for i in range(len(actions) - 1, -1, -1):
        action = actions[i]
        if action[0] == "restore":
            state = action[1]
            needed_later[i] = last_seen.get(state, False)
            last_seen[state] = True
        elif action[0] == "snapshot":
            last_seen[action[1]] = False
    for i, action in enumerate(actions):
        kind = action[0]
        if kind == "snapshot":
            state = action[1]
            live[state] = next_id
            ops.append(("checkpoint", next_id, state))
            next_id += 1
        elif kind == "restore":
            state = action[1]
            ckpt_id = live[state]
            recheckpoint: Optional[int] = None
            if needed_later[i]:
                recheckpoint = next_id
                live[state] = next_id
                next_id += 1
            ops.append(("restore", ckpt_id, state, recheckpoint))
        elif kind == "advance":
            ops.append(("advance", action[2] - action[1]))
        else:  # adjoint
            ops.append(("adjoint", action[1]))
    return ops


def oracle_restore_order(ops: List[Op]) -> List[int]:
    """Restore-id order of the materialized schedule (hint-mode oracle)."""
    return [op[1] for op in ops if op[0] == "restore"]


@dataclass(frozen=True)
class RevolveSpec:
    """One adjoint run under binomial checkpointing."""

    steps: int = 24
    snapshots: int = 4
    #: forward-state size (nominal bytes).
    state_bytes: int = 64 * MiB
    #: nominal seconds per recomputed forward step.
    step_s: float = 0.01
    #: nominal seconds per adjoint step.
    adjoint_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ConfigError(f"steps must be >= 1: {self.steps}")
        if self.snapshots < 1:
            raise ConfigError(f"snapshots must be >= 1: {self.snapshots}")
        if self.state_bytes <= 0:
            raise ConfigError(f"state_bytes must be positive: {self.state_bytes}")
        if self.step_s < 0 or self.adjoint_s < 0:
            raise ConfigError("step_s and adjoint_s must be >= 0")


@dataclass
class RevolveResult:
    """Outcome of one revolve run."""

    restore_latencies: List[float] = field(default_factory=list)
    verified: int = 0
    forward_steps: int = 0
    adjoint_steps: int = 0
    wall_s: float = 0.0
    engine_stats: dict = field(default_factory=dict)


def run_revolve(engine, spec: RevolveSpec, hints: bool = False) -> RevolveResult:
    """Drive ``engine`` through the materialized revolve schedule.

    State payloads are seeded per *state*, so a re-checkpoint of a state
    stores bit-identical bytes and every restore checksum-verifies.
    """
    actions = revolve_schedule(spec.steps, spec.snapshots)
    ops = materialize(actions)
    clock = engine.clock
    scale = engine.scale
    device_id = getattr(engine.device, "device_id", 0)
    result = RevolveResult()
    if hints:
        for restore_id in oracle_restore_order(ops):
            engine.prefetch_enqueue(restore_id)
        engine.prefetch_start()
    size = scale.align(spec.state_bytes)

    def state_buffer(state: int) -> DeviceBuffer:
        buffer = DeviceBuffer(size, scale, device_id)
        buffer.fill_random(make_rng(spec.seed, "revolve-state", state))
        return buffer

    checksums: Dict[int, Tuple[int, int]] = {}  # ckpt -> (state, checksum)
    started = clock.now()
    for op in ops:
        kind = op[0]
        if kind == "checkpoint":
            _, ckpt_id, state = op
            buffer = state_buffer(state)
            checksums[ckpt_id] = (state, buffer.checksum())
            engine.checkpoint(ckpt_id, buffer, producer=state)
        elif kind == "restore":
            _, ckpt_id, state, recheckpoint = op
            buffer = DeviceBuffer(size, scale, device_id)
            blocked = engine.restore(ckpt_id, buffer)
            result.restore_latencies.append(blocked)
            _, expected = checksums.pop(ckpt_id)
            if buffer.checksum() == expected:
                result.verified += 1
            if recheckpoint is not None:
                # The state is still needed: re-store it under a fresh id
                # (the application holds it in memory right now).
                checksums[recheckpoint] = (state, expected)
                engine.checkpoint(recheckpoint, buffer, producer=state)
        elif kind == "advance":
            result.forward_steps += op[1]
            if spec.step_s > 0:
                clock.sleep(op[1] * spec.step_s)
        else:  # adjoint
            result.adjoint_steps += 1
            if spec.adjoint_s > 0:
                clock.sleep(spec.adjoint_s)
    result.wall_s = clock.now() - started
    result.engine_stats = engine.stats()
    return result
