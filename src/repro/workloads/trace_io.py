"""Import/export of checkpoint-size traces.

Users with real production traces (the paper's RTM shots record one
checkpoint size per rank per iteration) can load them instead of the
synthetic generator.  Two formats:

* **CSV** — one row per snapshot: ``snapshot,rank,size`` (header optional;
  sizes accept unit suffixes, e.g. ``128MB``);
* **JSON** — ``{"ranks": {"0": [sizes...], "1": [...]}}`` or a plain list
  of per-snapshot sizes for a single rank.

Loaded sizes are aligned to the runtime's allocation granularity, exactly
like the synthetic traces.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Sequence

from repro.config import ScaleModel
from repro.errors import ConfigError
from repro.util.units import parse_size
from repro.workloads.rtm import RtmTrace


def save_traces_csv(path: str, traces: Sequence[RtmTrace]) -> None:
    """Write traces as ``snapshot,rank,size`` rows."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["snapshot", "rank", "size"])
        for trace in traces:
            for snapshot, size in enumerate(trace.sizes):
                writer.writerow([snapshot, trace.rank, size])


def load_traces_csv(path: str, scale: ScaleModel) -> List[RtmTrace]:
    """Read ``snapshot,rank,size`` rows back into per-rank traces."""
    per_rank: Dict[int, Dict[int, int]] = {}
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        for lineno, row in enumerate(reader):
            if not row or (lineno == 0 and row[0].strip().lower() == "snapshot"):
                continue
            if len(row) != 3:
                raise ConfigError(f"{path}:{lineno + 1}: expected 3 columns, got {len(row)}")
            try:
                snapshot = int(row[0])
                rank = int(row[1])
            except ValueError as exc:
                raise ConfigError(f"{path}:{lineno + 1}: bad snapshot/rank: {exc}")
            size = parse_size(row[2].strip())
            per_rank.setdefault(rank, {})[snapshot] = size
    return _assemble(per_rank, scale, path)


def save_traces_json(path: str, traces: Sequence[RtmTrace]) -> None:
    """Write traces as ``{"ranks": {rank: [sizes...]}}``."""
    payload = {"ranks": {str(t.rank): list(t.sizes) for t in traces}}
    with open(path, "w") as fh:
        json.dump(payload, fh)


def load_traces_json(path: str, scale: ScaleModel) -> List[RtmTrace]:
    """Read the JSON format (or a bare list for a single rank 0)."""
    with open(path) as fh:
        payload = json.load(fh)
    if isinstance(payload, list):
        payload = {"ranks": {"0": payload}}
    ranks = payload.get("ranks")
    if not isinstance(ranks, dict) or not ranks:
        raise ConfigError(f"{path}: expected a 'ranks' object with per-rank size lists")
    per_rank: Dict[int, Dict[int, int]] = {}
    for rank_key, sizes in ranks.items():
        try:
            rank = int(rank_key)
        except ValueError:
            raise ConfigError(f"{path}: bad rank key {rank_key!r}")
        if not isinstance(sizes, list) or not sizes:
            raise ConfigError(f"{path}: rank {rank}: expected a non-empty size list")
        per_rank[rank] = {i: parse_size(s) for i, s in enumerate(sizes)}
    return _assemble(per_rank, scale, path)


def _assemble(
    per_rank: Dict[int, Dict[int, int]], scale: ScaleModel, path: str
) -> List[RtmTrace]:
    if not per_rank:
        raise ConfigError(f"{path}: no trace rows found")
    lengths = {len(snaps) for snaps in per_rank.values()}
    if len(lengths) != 1:
        raise ConfigError(
            f"{path}: ranks have differing snapshot counts: {sorted(lengths)}"
        )
    n = lengths.pop()
    traces = []
    for rank in sorted(per_rank):
        snaps = per_rank[rank]
        if set(snaps) != set(range(n)):
            raise ConfigError(
                f"{path}: rank {rank}: snapshot indices must be 0..{n - 1} "
                "with no gaps"
            )
        sizes = tuple(scale.align(snaps[i]) for i in range(n))
        if any(s <= 0 for s in sizes):
            raise ConfigError(f"{path}: rank {rank}: sizes must be positive")
        traces.append(RtmTrace(rank=rank, sizes=sizes))
    return traces
