"""RTM (reverse time migration) checkpoint-size traces (Section 5.3.3).

The paper's benchmarks replay checkpoint *sizes* recorded from production
RTM shots: the forward pass compresses wavefield snapshots (~30×), which
makes sizes vary both across iterations (early snapshots carry little
energy and compress well, later ones approach a plateau) and across ranks
(different subdomains).  Figure 4 plots the min/max/avg size envelope of
384 snapshots over 32 ranks; aggregate size per shot is 38–50 GB.

Not having the proprietary traces, :func:`variable_trace` reproduces that
envelope: a saturating ramp toward a plateau, per-rank lognormal spread,
and a total calibrated to the paper's ~48 GB per rank.  The caching
behaviour under test depends only on this shape (fragmentation pressure +
early-small/late-large ordering), not on the exact production bytes.

:func:`uniform_trace` is the paper's uniform complement: 128 MB per
snapshot (the ~50th percentile of the production traces), 384 snapshots,
48 GB per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.config import ScaleModel
from repro.errors import ConfigError
from repro.util.rng import make_rng
from repro.util.units import GiB, MiB

#: Paper defaults.
DEFAULT_SNAPSHOTS = 384
DEFAULT_UNIFORM_SIZE = 128 * MiB
DEFAULT_TOTAL_PER_RANK = 48 * GiB

#: Shape parameters of the Fig.-4 envelope.
_RAMP_ITERATIONS = 96  # snapshots to reach ~63% of the plateau
_FLOOR_FRACTION = 0.12  # earliest snapshots vs the plateau
_RANK_SIGMA = 0.22  # lognormal spread across ranks
_ITER_SIGMA = 0.08  # iteration-to-iteration jitter within a rank


@dataclass(frozen=True)
class RtmTrace:
    """Checkpoint sizes for one rank's shot, aligned for the runtime."""

    rank: int
    sizes: Tuple[int, ...]  # nominal bytes per snapshot, aligned

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)


def uniform_trace(
    scale: ScaleModel,
    num_snapshots: int = DEFAULT_SNAPSHOTS,
    size: int = DEFAULT_UNIFORM_SIZE,
    rank: int = 0,
) -> RtmTrace:
    """Uniform-size shot: every snapshot is ``size`` bytes."""
    if num_snapshots <= 0:
        raise ConfigError(f"num_snapshots must be positive: {num_snapshots}")
    aligned = scale.align(size)
    return RtmTrace(rank=rank, sizes=tuple([aligned] * num_snapshots))


def _mean_profile(num_snapshots: int) -> np.ndarray:
    """Saturating ramp toward the plateau, normalized to mean 1."""
    i = np.arange(num_snapshots, dtype=np.float64)
    profile = _FLOOR_FRACTION + (1.0 - _FLOOR_FRACTION) * (
        1.0 - np.exp(-i / _RAMP_ITERATIONS)
    )
    return profile / profile.mean()


def variable_trace(
    scale: ScaleModel,
    rank: int,
    seed: int = 0,
    num_snapshots: int = DEFAULT_SNAPSHOTS,
    total_bytes: int = DEFAULT_TOTAL_PER_RANK,
) -> RtmTrace:
    """Variable-size shot following the Fig.-4 envelope.

    The trace is deterministic in ``(seed, rank)``; per-rank totals spread
    lognormally around ``total_bytes`` (the paper's 38–50 GB per shot), and
    sizes ramp from small early snapshots to a noisy plateau.
    """
    if num_snapshots <= 0:
        raise ConfigError(f"num_snapshots must be positive: {num_snapshots}")
    rng = make_rng(seed, "rtm-trace", rank)
    rank_factor = float(np.exp(rng.normal(0.0, _RANK_SIGMA)))
    jitter = np.exp(rng.normal(0.0, _ITER_SIGMA, size=num_snapshots))
    mean_size = total_bytes / num_snapshots
    raw = _mean_profile(num_snapshots) * jitter * rank_factor * mean_size
    sizes = tuple(scale.align(int(s)) for s in raw)
    return RtmTrace(rank=rank, sizes=sizes)


def correlated_fill(
    payload: np.ndarray,
    prev: np.ndarray,
    similarity: float,
    rng: np.random.Generator,
    block_bytes: int,
) -> None:
    """Rewrite ``payload`` so it correlates with the previous snapshot.

    Adjacent RTM wavefield snapshots differ only where the wavefront moved;
    the reduction benchmarks model that by keeping each ``block_bytes``
    block of the overlapping prefix identical to ``prev`` with probability
    ``similarity`` (the rest stays freshly random).  Deterministic in the
    ``rng`` stream; a block size matching the reduction chunk size makes
    ``similarity`` approximate the expected dedup hit rate.
    """
    if not 0.0 <= similarity <= 1.0:
        raise ConfigError(f"similarity must be within [0, 1]: {similarity}")
    if block_bytes <= 0:
        raise ConfigError(f"block_bytes must be positive: {block_bytes}")
    n = min(int(payload.size), int(prev.size))
    if n == 0 or similarity <= 0.0:
        return
    nblocks = -(-n // block_bytes)
    keep = rng.random(nblocks) < similarity
    mask = np.repeat(keep, block_bytes)[:n]
    payload[:n][mask] = prev[:n][mask]


def snapshot_size_distribution(
    traces: Sequence[RtmTrace],
) -> List[Tuple[int, int, int, float]]:
    """Fig.-4 data: per snapshot ``(index, min, max, mean)`` across ranks."""
    if not traces:
        raise ConfigError("no traces given")
    lengths = {len(t) for t in traces}
    if len(lengths) != 1:
        raise ConfigError(f"traces have differing lengths: {sorted(lengths)}")
    out: List[Tuple[int, int, int, float]] = []
    for idx in range(lengths.pop()):
        column = [t.sizes[idx] for t in traces]
        out.append((idx, min(column), max(column), sum(column) / len(column)))
    return out
