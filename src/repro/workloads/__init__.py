"""Workload generation: RTM traces, restore orders, shot drivers."""

from repro.workloads.rtm import (
    RtmTrace,
    snapshot_size_distribution,
    uniform_trace,
    variable_trace,
)
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.shot import HintMode, ShotResult, ShotSpec, run_shot
from repro.workloads.multiproc import run_multiprocess_shot

__all__ = [
    "RtmTrace",
    "uniform_trace",
    "variable_trace",
    "snapshot_size_distribution",
    "RestoreOrder",
    "restore_order",
    "HintMode",
    "ShotSpec",
    "ShotResult",
    "run_shot",
    "run_multiprocess_shot",
]
