"""Workload generation: RTM traces, restore orders, shot drivers,
serving (KV-cache) and binomial-checkpointing (revolve) drivers."""

from repro.workloads.rtm import (
    RtmTrace,
    snapshot_size_distribution,
    uniform_trace,
    variable_trace,
)
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.shot import HintMode, ShotResult, ShotSpec, run_shot
from repro.workloads.multiproc import run_multiprocess_shot
from repro.workloads.kvcache import (
    KvCacheResult,
    KvCacheSpec,
    KvEvent,
    generate_kvcache_schedule,
    run_kvcache,
)
from repro.workloads.revolve import (
    RevolveResult,
    RevolveSpec,
    materialize,
    min_forward_steps,
    revolve_schedule,
    run_revolve,
)

__all__ = [
    "RtmTrace",
    "uniform_trace",
    "variable_trace",
    "snapshot_size_distribution",
    "RestoreOrder",
    "restore_order",
    "HintMode",
    "ShotSpec",
    "ShotResult",
    "run_shot",
    "run_multiprocess_shot",
    "KvCacheResult",
    "KvCacheSpec",
    "KvEvent",
    "generate_kvcache_schedule",
    "run_kvcache",
    "RevolveResult",
    "RevolveSpec",
    "materialize",
    "min_forward_steps",
    "revolve_schedule",
    "run_revolve",
]
