"""LLM-serving KV-cache suspend/resume workload.

Many small sessions hold per-session KV state on the GPU; when a session
goes idle its KV block is *suspended* (checkpointed under a fresh version
with ``producer=session``) and the GPU slot is reclaimed, and when the
session re-activates the block is restored — on the critical path of the
first token, so demand-restore latency is the figure of merit.  Session
popularity is Zipfian: hot sessions re-activate on short periods, cold
ones on long irregular ones, and the working set exceeds the GPU (and
usually host) cache, so cold re-activations are SSD-bound unless
something stages them ahead of time.

The schedule is generated up front and deterministic, so the same run can
be driven three ways:

* **hints** — the oracle restore order is enqueued before the run starts
  (an upper bound no real serving system has);
* **learned** — no hints; ``PredictConfig.enabled`` lets the prediction
  subsystem discover per-session periods online;
* **none** — no hints, no prediction: demand-only promotion.

``adversarial=True`` replaces the periodic structure with memoryless
uniform re-activation at exponential gaps — unlearnable by construction,
the validation layer's suspension test case.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.simgpu.memory import DeviceBuffer
from repro.util.rng import make_rng
from repro.util.units import MiB


@dataclass(frozen=True)
class KvCacheSpec:
    """One serving trace: sessions, popularity, re-activation cadence."""

    sessions: int = 24
    #: total session activations (first activation of a session only
    #: creates its KV block; later ones restore + re-suspend it).
    events: int = 168
    #: KV block size per session snapshot (nominal bytes).
    kv_bytes: int = 128 * MiB
    #: popularity skew: session ``s`` re-activates every
    #: ``base_period_s * (s + 1) ** zipf_s`` nominal seconds.
    zipf_s: float = 1.1
    #: re-activation period of the hottest session (nominal seconds).
    base_period_s: float = 0.4
    #: per-activation period jitter, uniform in ``±jitter`` (fractional).
    jitter: float = 0.1
    #: nominal seconds of decode work between a restore and the
    #: subsequent suspend.
    think_s: float = 0.004
    #: memoryless uniform re-activation at exponential gaps instead of
    #: the periodic structure: unlearnable by construction.
    adversarial: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ConfigError(f"sessions must be >= 1: {self.sessions}")
        if self.events < self.sessions:
            raise ConfigError(
                f"events ({self.events}) must cover one activation per "
                f"session ({self.sessions})"
            )
        if self.kv_bytes <= 0:
            raise ConfigError(f"kv_bytes must be positive: {self.kv_bytes}")
        if self.base_period_s <= 0:
            raise ConfigError(
                f"base_period_s must be positive: {self.base_period_s}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter out of [0, 1): {self.jitter}")
        if self.think_s < 0:
            raise ConfigError(f"think_s must be >= 0: {self.think_s}")


@dataclass(frozen=True)
class KvEvent:
    """One session activation on the virtual timeline."""

    at: float
    session: int
    #: checkpoint restored on re-activation (None on first activation).
    restore_id: Optional[int]
    #: fresh checkpoint created when the session suspends again.
    suspend_id: int


def session_period(spec: KvCacheSpec, session: int) -> float:
    """Zipfian popularity → per-session re-activation period."""
    return spec.base_period_s * float(session + 1) ** spec.zipf_s


def generate_kvcache_schedule(spec: KvCacheSpec) -> List[KvEvent]:
    """The deterministic activation timeline (checkpoint ids included)."""
    rng = make_rng(spec.seed, "kvcache-schedule")
    periods = [session_period(spec, s) for s in range(spec.sessions)]
    events: List[KvEvent] = []
    live: Dict[int, int] = {}  # session -> suspended ckpt id
    next_id = 0

    def activation(at: float, session: int) -> KvEvent:
        nonlocal next_id
        restore_id = live.get(session)
        suspend_id = next_id
        next_id += 1
        live[session] = suspend_id
        return KvEvent(
            at=at, session=session, restore_id=restore_id, suspend_id=suspend_id
        )

    if spec.adversarial:
        # Memoryless: uniform session choice, exponential gaps matching
        # the structured trace's aggregate event rate.
        rate = sum(1.0 / p for p in periods)
        now = 0.0
        for _ in range(spec.events):
            now += float(rng.exponential(1.0 / rate))
            session = int(rng.integers(spec.sessions))
            events.append(activation(now, session))
        return events

    # Structured: per-session periodic re-activation with small jitter —
    # the interleaving is unpredictable but per-session gaps are regular
    # enough for a recency model to learn online.
    def jittered(period: float) -> float:
        if spec.jitter == 0.0:
            return period
        return period * (1.0 + float(rng.uniform(-spec.jitter, spec.jitter)))

    heap = []
    for session in range(spec.sessions):
        first = float(rng.uniform(0.0, periods[session]))
        heapq.heappush(heap, (first, session))
    for _ in range(spec.events):
        at, session = heapq.heappop(heap)
        events.append(activation(at, session))
        heapq.heappush(heap, (at + jittered(periods[session]), session))
    return events


def oracle_restore_order(schedule: List[KvEvent]) -> List[int]:
    """The exact restore-id order — what a perfect hint queue would hold."""
    return [ev.restore_id for ev in schedule if ev.restore_id is not None]


@dataclass
class KvCacheResult:
    """Outcome of one serving run."""

    restore_latencies: List[float] = field(default_factory=list)
    checkpoint_latencies: List[float] = field(default_factory=list)
    verified: int = 0
    #: final checkpoints of sessions that never re-activated — abandoned
    #: on session end, never restored.
    abandoned: List[int] = field(default_factory=list)
    wall_s: float = 0.0
    engine_stats: dict = field(default_factory=dict)


def run_kvcache(engine, spec: KvCacheSpec, hints: bool = False) -> KvCacheResult:
    """Drive ``engine`` through the serving trace.

    With ``hints=True`` the oracle restore order is enqueued up front and
    prefetching starts immediately; otherwise the engine sees no hints
    (prediction, when enabled, supplies the overlay on its own).
    """
    schedule = generate_kvcache_schedule(spec)
    clock = engine.clock
    scale = engine.scale
    device_id = getattr(engine.device, "device_id", 0)
    rng = make_rng(spec.seed, "kvcache-payloads")
    result = KvCacheResult()
    if hints:
        for restore_id in oracle_restore_order(schedule):
            engine.prefetch_enqueue(restore_id)
        engine.prefetch_start()
    checksums: Dict[int, int] = {}
    size = scale.align(spec.kv_bytes)
    started = clock.now()
    for event in schedule:
        gap = (started + event.at) - clock.now()
        if gap > 0:
            clock.sleep(gap)
        if event.restore_id is not None:
            buffer = DeviceBuffer(size, scale, device_id)
            blocked = engine.restore(event.restore_id, buffer)
            result.restore_latencies.append(blocked)
            if buffer.checksum() == checksums.pop(event.restore_id):
                result.verified += 1
        if spec.think_s > 0:
            clock.sleep(spec.think_s)
        # Suspend: the session's (mutated) KV block leaves the GPU under a
        # fresh version.
        buffer = DeviceBuffer(size, scale, device_id)
        buffer.fill_random(rng)
        checksums[event.suspend_id] = buffer.checksum()
        blocked = engine.checkpoint(
            event.suspend_id, buffer, producer=event.session
        )
        result.checkpoint_latencies.append(blocked)
    result.wall_s = clock.now() - started
    result.abandoned = sorted(checksums)
    result.engine_stats = engine.stats()
    return result
