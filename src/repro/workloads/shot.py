"""The shot driver: one process's forward + backward pass (Listing 1).

A *shot* checkpoints ``len(trace)`` snapshots at a fixed compute interval
(the benchmark emulates computation by sleeping, exactly like the paper's
trace-replay benchmarks), optionally waits for all flushes, then restores
the snapshots in a given order at the same interval.

Hint modes (Table 1):

* ``NONE`` — direct reads, no foreknowledge;
* ``SINGLE`` — at the start of each restore iteration, the application
  enqueues the hint for the *next* iteration;
* ``ALL`` — the full restore order is enqueued before the forward pass
  (Listing 1 lines 2–3) and prefetching starts between the passes.

The driver is engine-agnostic: any object with the
checkpoint/restore/prefetch_enqueue/prefetch_start/wait_for_flushes surface
(Score, UVM, ADIOS2) runs unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.metrics.recorder import Recorder
from repro.simgpu.memory import DeviceBuffer
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.rtm import RtmTrace, correlated_fill


class HintMode(Enum):
    NONE = "none"
    SINGLE = "single"
    ALL = "all"


@dataclass(frozen=True)
class ShotSpec:
    """Everything one shot run needs besides the engine."""

    trace: RtmTrace
    restore_order: Sequence[int]
    hint_mode: HintMode = HintMode.ALL
    #: nominal seconds of simulated computation between operations
    #: (the paper fixes 10 ms to match RTM's checkpoint frequency).
    compute_interval: float = 0.010
    #: WAIT variant (Fig. 5) vs immediate restore (Fig. 6).
    wait_for_flush: bool = False
    #: fill payloads with seeded random bytes (restores checksum-verify).
    randomize_payloads: bool = True
    #: fraction of each snapshot kept byte-identical to its predecessor
    #: (models temporal wavefield similarity; drives the dedup hit rate of
    #: the reduction pipeline).  0 keeps payloads fully independent.
    similarity: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if sorted(self.restore_order) != list(range(len(self.trace))):
            raise ConfigError(
                "restore_order must be a permutation of the snapshot indices"
            )
        if self.compute_interval < 0:
            raise ConfigError(f"negative compute interval: {self.compute_interval}")
        if not 0.0 <= self.similarity <= 1.0:
            raise ConfigError(f"similarity must be within [0, 1]: {self.similarity}")
        if isinstance(self.hint_mode, str):
            object.__setattr__(self, "hint_mode", HintMode(self.hint_mode))


@dataclass
class ShotResult:
    """Outcome of one process's shot."""

    process_id: int
    recorder: Recorder
    checkpoint_phase_seconds: float
    flush_wait_seconds: float
    restore_phase_seconds: float
    engine_stats: dict = field(default_factory=dict)
    error: Optional[BaseException] = None


def run_shot(
    engine,
    spec: ShotSpec,
    iteration_hook: Optional[Callable[[str, int], None]] = None,
) -> ShotResult:
    """Run one shot on ``engine``.

    ``iteration_hook(phase, iteration)`` is called once per iteration (the
    multi-process runner uses it for tight-coupling barriers).
    """
    clock = engine.clock
    scale = engine.scale
    rng = make_rng(spec.seed, "shot-payloads", spec.trace.rank)
    n = len(spec.trace)
    # Correlation block matches the default reduction chunk (8 MiB nominal),
    # so ``similarity`` approximates the chunk-level dedup hit rate.
    corr_block = max(1, (8 * MiB) // scale.data_scale)
    prev_payload: Optional[np.ndarray] = None

    if spec.hint_mode is HintMode.ALL:
        for version in spec.restore_order:
            engine.prefetch_enqueue(version)

    # -- forward pass ------------------------------------------------------
    ckpt_started = clock.now()
    for version in range(n):
        if iteration_hook is not None:
            iteration_hook("checkpoint", version)
        clock.sleep(spec.compute_interval)  # compute + compress
        size = spec.trace.sizes[version]
        buffer = DeviceBuffer(scale.align(size), scale, getattr(engine.device, "device_id", 0))
        if spec.randomize_payloads:
            buffer.fill_random(rng)
            if spec.similarity > 0.0:
                if prev_payload is not None:
                    correlated_fill(
                        buffer.payload, prev_payload, spec.similarity, rng, corr_block
                    )
                prev_payload = buffer.payload.copy()
        engine.checkpoint(version, buffer)
    checkpoint_phase = clock.now() - ckpt_started

    # -- optional flush barrier ------------------------------------------------
    flush_wait = 0.0
    if spec.wait_for_flush:
        flush_wait = engine.wait_for_flushes()

    if spec.hint_mode is not HintMode.NONE:
        engine.prefetch_start()

    # -- backward pass -------------------------------------------------------------
    restore_started = clock.now()
    for idx, version in enumerate(spec.restore_order):
        if iteration_hook is not None:
            iteration_hook("restore", idx)
        if spec.hint_mode is HintMode.SINGLE and idx + 1 < n:
            engine.prefetch_enqueue(spec.restore_order[idx + 1])
        clock.sleep(spec.compute_interval)  # compute on the restored data
        size = engine.recover_size(version)
        buffer = DeviceBuffer(scale.align(size), scale, getattr(engine.device, "device_id", 0))
        engine.restore(version, buffer)
    restore_phase = clock.now() - restore_started

    return ShotResult(
        process_id=getattr(engine, "process_id", 0),
        recorder=engine.recorder,
        checkpoint_phase_seconds=checkpoint_phase,
        flush_wait_seconds=flush_wait,
        restore_phase_seconds=restore_phase,
        engine_stats=engine.stats(),
    )
