"""Restore-order patterns (Section 5.3.2).

* **sequential** — the backward pass consumes checkpoints in write order
  (reproducibility replay, producer–consumer pipelines);
* **reverse** — consumes them in reverse write order (adjoint methods such
  as RTM and quantum optimal control);
* **irregular** — a random but *predetermined* permutation (binomial
  checkpointing interleavings and priority-driven workflows).
"""

from __future__ import annotations

from enum import Enum
from typing import List

from repro.errors import ConfigError
from repro.util.rng import make_rng


class RestoreOrder(Enum):
    SEQUENTIAL = "sequential"
    REVERSE = "reverse"
    IRREGULAR = "irregular"


def restore_order(
    pattern: RestoreOrder, num_snapshots: int, seed: int = 0, rank: int = 0
) -> List[int]:
    """Version numbers in the order the backward pass restores them."""
    if num_snapshots <= 0:
        raise ConfigError(f"num_snapshots must be positive: {num_snapshots}")
    if isinstance(pattern, str):  # convenience for harness configs
        pattern = RestoreOrder(pattern)
    if pattern is RestoreOrder.SEQUENTIAL:
        return list(range(num_snapshots))
    if pattern is RestoreOrder.REVERSE:
        return list(range(num_snapshots - 1, -1, -1))
    if pattern is RestoreOrder.IRREGULAR:
        rng = make_rng(seed, "restore-order", rank)
        order = list(range(num_snapshots))
        rng.shuffle(order)
        return order
    raise ConfigError(f"unknown restore order: {pattern!r}")
