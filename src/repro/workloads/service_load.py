"""Service-driven cluster workload: concurrent clients over the front-end.

Drives a :class:`~repro.cluster.topology.ClusterTopology` the way a
serving fleet would: every client opens a session, submits its
checkpoints to its home engine, and — once the flush cascades settle on
durable tiers — restores them back through the service's concurrent
fan-in, optionally on an engine of a *different* node (cold caches, so
each restore is a demand promotion off the durable tiers: peer SSD over
the fabric when enabled, PFS otherwise).

Used by ``benchmarks/bench_cluster.py`` (peer-vs-PFS ablation) and the
cluster test suite; returns raw per-restore latencies so callers compute
their own percentiles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.util.rng import make_rng
from repro.util.units import MiB

if TYPE_CHECKING:
    from repro.cluster.topology import ClusterTopology


def run_service_load(
    topology: "ClusterTopology",
    *,
    clients: int,
    checkpoints_per_client: int,
    snapshot_bytes: int = 128 * MiB,
    cross_node: bool = True,
    node_shift: int = 1,
    seed: int = 11,
    flush_timeout: float = 600.0,
) -> dict:
    """Submit-then-restore through the service; returns latencies + checks.

    Checkpoint ids are globally unique (``client_index * per_client + j``)
    — the service's placement map rejects duplicates across clients.
    """
    service = topology.service
    engines = topology.engines
    num_nodes = len(topology.cluster.nodes)
    per_node = max(1, len(engines) // num_nodes)
    sessions = [service.connect(f"client-{i}") for i in range(clients)]

    # Submissions interleave round-robin across clients — concurrent
    # clients hit the service together, which also keeps co-located
    # engines' flush cascades phase-aligned (what PFS write aggregation
    # feeds on).
    checksums = {}
    for j in range(checkpoints_per_client):
        for i, session in enumerate(sessions):
            ckpt_id = i * checkpoints_per_client + j
            buf = session.engine.device.alloc_buffer(snapshot_bytes)
            buf.fill_random(make_rng(seed + ckpt_id, "service-load"))
            checksums[ckpt_id] = buf.checksum()
            session.submit(ckpt_id, buf)
    for engine in engines:
        engine.wait_for_flushes(timeout=flush_timeout)

    # Restore fan-in. Cross-node targets shift each client ``node_shift``
    # whole nodes around the ring, so every restore promotes a blob its
    # target node never wrote (a shift of 2 also skips the ring-successor
    # replica holder, forcing reads over the fabric).
    items = []
    buffers = []
    for i, session in enumerate(sessions):
        home_index = engines.index(session.engine)
        target = session.engine
        if cross_node and num_nodes > 1:
            target = engines[(home_index + node_shift * per_node) % len(engines)]
        for j in range(checkpoints_per_client):
            ckpt_id = i * checkpoints_per_client + j
            out = target.device.alloc_buffer(snapshot_bytes)
            buffers.append((ckpt_id, out))
            items.append((session, ckpt_id, out, target))
    results = service.restore_many(items)
    failed = [r for r in results if not r.ok]
    if failed:
        raise failed[0].error
    latencies: List[float] = [r.latency_s for r in results]

    checksums_ok = all(out.checksum() == checksums[cid] for cid, out in buffers)
    return {
        "restore_latencies": latencies,
        "restored": len(latencies),
        "checksums_ok": checksums_ok,
        "stats": service.stats(),
    }
