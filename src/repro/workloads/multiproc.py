"""Multi-process (thread-per-GPU) shot execution.

Each simulated process drives its own engine on its own GPU from a
dedicated thread, sharing PCIe links, SSD and PFS through the cluster
topology.  Two coupling modes (Section 5.4.6):

* **embarrassingly parallel** — no synchronization; processes drift apart
  and compete freely for shared resources;
* **tightly coupled** — a barrier at every iteration of both passes (one
  shot across multiple GPUs with per-iteration synchronization).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.tiers.topology import Cluster, ProcessContext
from repro.workloads.shot import ShotResult, ShotSpec, run_shot

EngineFactory = Callable[[ProcessContext], object]


def run_multiprocess_shot(
    cluster: Cluster,
    engine_factory: EngineFactory,
    specs: Sequence[ShotSpec],
    tightly_coupled: bool = False,
    contexts: Optional[Sequence[ProcessContext]] = None,
) -> List[ShotResult]:
    """Run one shot per process concurrently; returns results in rank order.

    A failing process surfaces its exception in ``ShotResult.error`` (and
    the first error is re-raised after every thread finishes, so tests fail
    loudly while other threads still shut down cleanly).
    """
    contexts = list(contexts) if contexts is not None else cluster.process_contexts()
    if len(specs) != len(contexts):
        raise ConfigError(
            f"{len(specs)} specs for {len(contexts)} processes"
        )
    num = len(contexts)
    iterations = {len(spec.trace) for spec in specs}
    if tightly_coupled and len(iterations) != 1:
        raise ConfigError("tightly coupled runs need equal-length traces")

    barrier = threading.Barrier(num) if tightly_coupled and num > 1 else None

    def hook(phase: str, iteration: int) -> None:
        if barrier is not None:
            barrier.wait()

    results: List[Optional[ShotResult]] = [None] * num

    def worker(rank: int) -> None:
        engine = engine_factory(contexts[rank])
        try:
            results[rank] = run_shot(
                engine, specs[rank], iteration_hook=hook if barrier is not None else None
            )
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            results[rank] = ShotResult(
                process_id=getattr(engine, "process_id", rank),
                recorder=engine.recorder,
                checkpoint_phase_seconds=0.0,
                flush_wait_seconds=0.0,
                restore_phase_seconds=0.0,
                error=exc,
            )
            if barrier is not None:
                barrier.abort()
        finally:
            engine.close()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"shot-p{rank}")
        for rank in range(num)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    final = [r for r in results if r is not None]
    assert len(final) == num
    for result in final:
        if result.error is not None:
            raise result.error
    return final
