"""Shared driver for the hint/learned/none prediction comparison.

The serving (:mod:`repro.workloads.kvcache`) and binomial-checkpointing
(:mod:`repro.workloads.revolve`) workloads are not :class:`ShotSpec`
traces — they interleave restores and checkpoints on their own virtual
timeline — so the trace CLI, the figure harness and the prediction
benchmark all drive them through this module: one engine, one cluster,
one of three modes:

* ``hints``   — the workload's oracle restore order is enqueued up front
  (the paper's explicit-hint upper bound);
* ``learned`` — no hints; ``PredictConfig.enabled`` turns the online
  access-pattern predictor on and the overlay supplies the queue;
* ``none``    — no hints, no prediction: demand-only promotion.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple, Union

from repro.config import CacheConfig, RuntimeConfig
from repro.errors import ConfigError
from repro.workloads.kvcache import KvCacheResult, KvCacheSpec, run_kvcache
from repro.workloads.revolve import RevolveResult, RevolveSpec, run_revolve

#: the three sides of every prediction comparison.
PREDICT_MODES = ("hints", "learned", "none")

Spec = Union[KvCacheSpec, RevolveSpec]
Result = Union[KvCacheResult, RevolveResult]


def apply_predict_mode(cfg: RuntimeConfig, mode: str) -> RuntimeConfig:
    """Fold a prediction mode into a runtime config.

    ``learned`` enables the prediction subsystem (keeping any non-default
    knobs the caller already set); ``hints``/``none`` leave the config
    untouched — they differ only in whether the driver enqueues the
    oracle restore order.
    """
    if mode not in PREDICT_MODES:
        raise ConfigError(
            f"unknown predict mode {mode!r}; choose from {PREDICT_MODES}"
        )
    if mode == "learned" and not cfg.predict.enabled:
        return cfg.with_(predict=dataclasses.replace(cfg.predict, enabled=True))
    return cfg


def serving_caches(cfg: RuntimeConfig, spec: Spec) -> CacheConfig:
    """Cache sizes that make the comparison meaningful: the GPU cache
    holds a handful of blocks and the host cache a minority of the live
    working set, so cold re-activations are SSD-bound without staging."""
    if isinstance(spec, KvCacheSpec):
        block = cfg.scale.align(spec.kv_bytes)
        live = spec.sessions
    else:
        block = cfg.scale.align(spec.state_bytes)
        live = spec.snapshots
    # The GPU floor keeps the prefetch budget (0.9x capacity) above one
    # block, so staging is not head-of-line blocked behind a single
    # unconsumed extent at small session counts.
    gpu_blocks = max(4, live // 6)
    host_blocks = max(2 * gpu_blocks, live // 2)
    return CacheConfig(
        gpu_cache_size=gpu_blocks * block, host_cache_size=host_blocks * block
    )


def run_predicted(
    cfg: RuntimeConfig, spec: Spec, mode: str = "none"
) -> Tuple[Result, object]:
    """Run the workload single-process under ``mode``.

    Returns ``(result, telemetry)`` — the cluster telemetry outlives the
    cluster, so callers can snapshot the bus and registry afterwards.
    """
    from repro.harness.approaches import make_engine_factory
    from repro.tiers.topology import Cluster

    cfg = apply_predict_mode(cfg, mode)
    runner = run_kvcache if isinstance(spec, KvCacheSpec) else run_revolve
    factory = make_engine_factory("score")
    with Cluster(cfg) as cluster:
        engine = factory(cluster.process_contexts()[0])
        try:
            result = runner(engine, spec, hints=(mode == "hints"))
        finally:
            engine.close()
        return result, cluster.telemetry


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (no numpy dependency on the report path)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def speculation_stats(result: Result) -> Optional[dict]:
    """The prediction block of the engine stats (None when disabled)."""
    return result.engine_stats.get("prediction")
