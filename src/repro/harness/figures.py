"""One entry point per figure of the paper's evaluation (Section 5.4).

Each ``figN_*`` function runs the corresponding experiment grid at a
configurable iteration count (capacity ratios preserved — see
:func:`repro.harness.experiment.scaled_caches`) and returns structured rows
plus a paper-style text rendering.  The benchmark suite wraps these; they
are also directly runnable::

    python -m repro.harness.figures fig5 --snapshots 96
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import CacheConfig, bench_config
from repro.harness.approaches import APPROACHES, TABLE1, Approach
from repro.harness.experiment import (
    Experiment,
    ExperimentResult,
    run_experiment,
    scaled_caches,
)
from repro.metrics.prefetch import prefetch_distance_series
from repro.metrics.report import render_series, render_table
from repro.metrics.throughput import restore_rate_series, stacked_per_process
from repro.util.units import GiB, MiB, format_bandwidth
from repro.workloads.patterns import RestoreOrder
from repro.workloads.rtm import snapshot_size_distribution, variable_trace

DEFAULT_SNAPSHOTS = 192
ORDERS = (RestoreOrder.SEQUENTIAL, RestoreOrder.REVERSE, RestoreOrder.IRREGULAR)


@dataclass
class FigureResult:
    """Structured output of one figure reproduction."""

    figure: str
    columns: List[str]
    rows: List[Tuple]
    rendered: str = ""
    extras: Dict[str, object] = field(default_factory=dict)

    def print(self) -> None:  # pragma: no cover - convenience
        print(self.rendered)


# --------------------------------------------------------------------------
# Figure 4 — RTM snapshot size distribution
# --------------------------------------------------------------------------
def fig4_size_distribution(
    num_ranks: int = 32, num_snapshots: int = 384, seed: int = 7
) -> FigureResult:
    """Min/max/avg snapshot size across ranks (no simulation involved)."""
    scale = bench_config().scale
    traces = [
        variable_trace(scale, rank=r, seed=seed, num_snapshots=num_snapshots)
        for r in range(num_ranks)
    ]
    dist = snapshot_size_distribution(traces)
    rows = [(i, mn // MiB, mx // MiB, round(avg / MiB, 1)) for i, mn, mx, avg in dist]
    rendered = render_series(
        "Figure 4: size distribution of RTM snapshots (MiB, across "
        f"{num_ranks} ranks)",
        [(i, f"min {mn} / max {mx} / avg {avg}") for i, mn, mx, avg in rows],
        x_label="snapshot",
        y_label="size",
    )
    totals = [t.total_bytes / GiB for t in traces]
    return FigureResult(
        figure="fig4",
        columns=["snapshot", "min_mib", "max_mib", "avg_mib"],
        rows=rows,
        rendered=rendered,
        extras={"per_rank_totals_gib": totals},
    )


# --------------------------------------------------------------------------
# Figures 5 & 6 — throughput grids (WAIT / NO-WAIT)
# --------------------------------------------------------------------------
def _throughput_grid(
    figure: str,
    workload: str,
    wait_for_flush: bool,
    num_snapshots: int,
    approaches: Sequence[Approach] = TABLE1,
    orders: Sequence[RestoreOrder] = ORDERS,
) -> FigureResult:
    rows = []
    results: List[ExperimentResult] = []
    for order in orders:
        for approach in approaches:
            exp = Experiment(
                approach=approach,
                workload=workload,
                order=order,
                num_snapshots=num_snapshots,
                wait_for_flush=wait_for_flush,
            )
            result = run_experiment(exp)
            results.append(result)
            rows.append(
                (
                    order.value,
                    approach.label,
                    format_bandwidth(max(result.checkpoint_rate, 1.0)),
                    format_bandwidth(max(result.restore_rate, 1.0)),
                )
            )
    title = (
        f"Figure {figure[3:]}: avg checkpoint+restore throughput, "
        f"{workload} sizes, {'WAIT' if wait_for_flush else 'NO-WAIT'} "
        f"({num_snapshots} snapshots/rank, 8 GPUs)"
    )
    rendered = render_table(title, ["order", "approach", "ckpt", "restore"], rows)
    return FigureResult(
        figure=figure,
        columns=["order", "approach", "checkpoint_rate", "restore_rate"],
        rows=rows,
        rendered=rendered,
        extras={"results": results},
    )


def fig5_wait(
    workload: str = "uniform",
    num_snapshots: int = DEFAULT_SNAPSHOTS,
    approaches: Sequence[Approach] = TABLE1,
    orders: Sequence[RestoreOrder] = ORDERS,
) -> FigureResult:
    """Fig. 5a (uniform) / 5b (variable): restore waits for the flushes."""
    return _throughput_grid(
        "fig5", workload, True, num_snapshots, approaches, orders
    )


def fig6_nowait(
    workload: str = "uniform",
    num_snapshots: int = DEFAULT_SNAPSHOTS,
    approaches: Sequence[Approach] = TABLE1,
    orders: Sequence[RestoreOrder] = ORDERS,
) -> FigureResult:
    """Fig. 6a (uniform) / 6b (variable): restore follows immediately."""
    return _throughput_grid(
        "fig6", workload, False, num_snapshots, approaches, orders
    )


# --------------------------------------------------------------------------
# Figure 7 — restore rate & prefetch distance per iteration
# --------------------------------------------------------------------------
def fig7_prefetch_distance(num_snapshots: int = DEFAULT_SNAPSHOTS) -> FigureResult:
    """Score runtime, uniform sizes, sequential order, 3 hint counts."""
    rows = []
    extras: Dict[str, object] = {}
    for hint_key, label in (
        ("score-none", "No hints"),
        ("score-single", "Single hint"),
        ("score-all", "All hints"),
    ):
        exp = Experiment(
            approach=APPROACHES[hint_key],
            workload="uniform",
            order=RestoreOrder.SEQUENTIAL,
            num_snapshots=num_snapshots,
            wait_for_flush=False,
        )
        result = run_experiment(exp)
        rec = result.shots[0].recorder
        rates = restore_rate_series(rec)
        dists = prefetch_distance_series(rec)
        extras[label] = {"restore_rate": rates, "prefetch_distance": dists}
        mean_rate = sum(r for _, r in rates) / len(rates)
        mean_dist = sum(d for _, d in dists) / len(dists)
        rows.append((label, format_bandwidth(max(mean_rate, 1.0)), round(mean_dist, 2)))
    rendered = render_table(
        "Figure 7: restore rate and completed next prefetches (score, "
        "sequential, uniform)",
        ["hints", "mean restore rate", "mean prefetch distance"],
        rows,
    )
    return FigureResult(
        figure="fig7",
        columns=["hints", "mean_restore_rate", "mean_prefetch_distance"],
        rows=rows,
        rendered=rendered,
        extras=extras,
    )


# --------------------------------------------------------------------------
# Figure 8 — compute-interval and GPU-cache-size sensitivity
# --------------------------------------------------------------------------
_FIG8_APPROACHES = (
    APPROACHES["adios2-none"],
    APPROACHES["uvm-none"],
    APPROACHES["score-none"],
    APPROACHES["uvm-all"],
    APPROACHES["score-all"],
)


def fig8a_compute_interval(
    intervals: Sequence[float] = (0.010, 0.020, 0.030),
    num_snapshots: int = DEFAULT_SNAPSHOTS,
) -> FigureResult:
    """Irregular order, variable sizes, sweep the compute interval."""
    rows = []
    for interval in intervals:
        for approach in _FIG8_APPROACHES:
            exp = Experiment(
                approach=approach,
                workload="variable",
                order=RestoreOrder.IRREGULAR,
                num_snapshots=num_snapshots,
                compute_interval=interval,
                wait_for_flush=False,
            )
            result = run_experiment(exp)
            rows.append(
                (
                    f"{interval * 1e3:.0f}ms",
                    approach.label,
                    format_bandwidth(max(result.checkpoint_rate, 1.0)),
                    format_bandwidth(max(result.restore_rate, 1.0)),
                )
            )
    rendered = render_table(
        "Figure 8a: I/O throughput vs compute interval (variable sizes, "
        "irregular order)",
        ["interval", "approach", "ckpt", "restore"],
        rows,
    )
    return FigureResult(
        figure="fig8a",
        columns=["interval", "approach", "checkpoint_rate", "restore_rate"],
        rows=rows,
        rendered=rendered,
    )


def fig8b_gpu_cache(
    fractions: Sequence[float] = (2 / 48, 4 / 48, 8 / 48, 16 / 48),
    num_snapshots: int = DEFAULT_SNAPSHOTS,
) -> FigureResult:
    """Sweep the GPU cache share of the working set (paper: 2–16 GB of 48 GB)."""
    rows = []
    total = num_snapshots * 128 * MiB
    for fraction in fractions:
        cache = CacheConfig(
            gpu_cache_size=max(1, int(total * fraction)),
            host_cache_size=scaled_caches(total).host_cache_size,
        )
        for approach in _FIG8_APPROACHES:
            exp = Experiment(
                approach=approach,
                workload="variable",
                order=RestoreOrder.IRREGULAR,
                num_snapshots=num_snapshots,
                cache=cache,
                wait_for_flush=False,
            )
            result = run_experiment(exp)
            rows.append(
                (
                    f"{fraction * 48:.0f}GB-equiv",
                    approach.label,
                    format_bandwidth(max(result.checkpoint_rate, 1.0)),
                    format_bandwidth(max(result.restore_rate, 1.0)),
                )
            )
    rendered = render_table(
        "Figure 8b: I/O throughput vs GPU cache size (variable sizes, "
        "irregular order)",
        ["gpu cache", "approach", "ckpt", "restore"],
        rows,
    )
    return FigureResult(
        figure="fig8b",
        columns=["gpu_cache", "approach", "checkpoint_rate", "restore_rate"],
        rows=rows,
        rendered=rendered,
    )


# --------------------------------------------------------------------------
# Figure 9 — scalability
# --------------------------------------------------------------------------
_FIG9_APPROACHES = (
    APPROACHES["adios2-none"],
    APPROACHES["uvm-none"],
    APPROACHES["score-none"],
    APPROACHES["uvm-single"],
    APPROACHES["score-single"],
)


def fig9_scalability(
    gpu_counts: Sequence[int] = (8, 16, 32),
    tightly_coupled: bool = False,
    num_snapshots: int = 48,
    approaches: Sequence[Approach] = _FIG9_APPROACHES,
) -> FigureResult:
    """Per-process throughput at scale, variable sizes (Fig. 9a/9b)."""
    rows = []
    extras: Dict[str, object] = {}
    for gpus in gpu_counts:
        if gpus % 8 == 0:
            nodes, ppn = gpus // 8, 8
        else:
            nodes, ppn = 1, gpus
        for approach in approaches:
            exp = Experiment(
                approach=approach,
                workload="variable",
                order=RestoreOrder.REVERSE,
                num_snapshots=num_snapshots,
                num_nodes=nodes,
                processes_per_node=ppn,
                tightly_coupled=tightly_coupled,
                wait_for_flush=False,
            )
            result = run_experiment(exp)
            per_proc = stacked_per_process([s.recorder for s in result.shots])
            extras[f"{gpus}-{approach.key}"] = per_proc
            rows.append(
                (
                    gpus,
                    approach.label,
                    format_bandwidth(max(result.checkpoint_rate, 1.0)),
                    format_bandwidth(max(result.restore_rate, 1.0)),
                )
            )
    mode = "tightly coupled" if tightly_coupled else "embarrassingly parallel"
    rendered = render_table(
        f"Figure 9: per-process throughput at scale ({mode}, variable sizes)",
        ["gpus", "approach", "ckpt/proc", "restore/proc"],
        rows,
    )
    return FigureResult(
        figure="fig9b" if not tightly_coupled else "fig9a",
        columns=["gpus", "approach", "checkpoint_rate", "restore_rate"],
        rows=rows,
        rendered=rendered,
        extras=extras,
    )


# --------------------------------------------------------------------------
# Prediction — hints vs learned vs demand-only (DESIGN.md: Prediction)
# --------------------------------------------------------------------------
def fig_prediction(
    num_snapshots: int = 240, sessions: int = 8, seed: int = 0
) -> FigureResult:
    """Serving KV-cache: oracle hints vs online prediction vs demand-only.

    One deterministic suspend/resume trace (``num_snapshots`` activations
    over ``sessions`` Zipf-popular sessions) driven three ways; demand
    restore latency is the figure of merit, speculation accuracy the
    sanity column for the learned mode.  The defaults give the predictor
    ~30 observations per session — enough for the online model to settle,
    so the steady state (not the cold start) dominates the p99.
    """
    from repro.harness.prediction import (
        PREDICT_MODES,
        percentile,
        run_predicted,
        serving_caches,
        speculation_stats,
    )
    from repro.workloads.kvcache import KvCacheSpec

    spec = KvCacheSpec(sessions=sessions, events=num_snapshots, seed=seed)
    rows = []
    extras: Dict[str, object] = {}
    for mode in PREDICT_MODES:
        cfg = bench_config(telemetry=True)
        cfg = cfg.with_(cache=serving_caches(cfg, spec))
        result, _ = run_predicted(cfg, spec, mode)
        lats = result.restore_latencies
        stats = speculation_stats(result)
        val = (stats or {}).get("validation") or {}
        hit_rate = val.get("hit_rate")
        rows.append(
            (
                mode,
                len(lats),
                round(percentile(lats, 0.50), 4),
                round(percentile(lats, 0.99), 4),
                "n/a" if hit_rate is None else f"{hit_rate:.0%}",
                round(int(val.get("wasted_bytes", 0)) / MiB),
            )
        )
        extras[mode] = {
            "restore_latencies": lats,
            "wall_s": result.wall_s,
            "prediction": stats,
        }
    rendered = render_table(
        "Prediction: demand-restore latency under oracle hints, online "
        f"prediction, and demand-only (kvcache, {sessions} sessions, "
        f"{num_snapshots} activations)",
        ["mode", "restores", "p50 (s)", "p99 (s)", "spec hit rate", "wasted MiB"],
        rows,
    )
    return FigureResult(
        figure="prediction",
        columns=["mode", "restores", "p50_s", "p99_s", "hit_rate", "wasted_mib"],
        rows=rows,
        rendered=rendered,
        extras=extras,
    )


# --------------------------------------------------------------------------
# Ablations (DESIGN.md: eviction policy, shared vs split cache)
# --------------------------------------------------------------------------
def ablation_eviction_policy(num_snapshots: int = DEFAULT_SNAPSHOTS) -> FigureResult:
    """Algorithm 1 vs LRU vs FIFO inside the same runtime."""
    rows = []
    for policy in ("score", "lru", "fifo"):
        exp = Experiment(
            approach=APPROACHES["score-all"],
            workload="variable",
            order=RestoreOrder.IRREGULAR,
            num_snapshots=num_snapshots,
            wait_for_flush=False,
            config=bench_config(eviction_policy=policy),
        )
        result = run_experiment(exp)
        rows.append(
            (
                policy,
                format_bandwidth(max(result.checkpoint_rate, 1.0)),
                format_bandwidth(max(result.restore_rate, 1.0)),
            )
        )
    rendered = render_table(
        "Ablation: eviction policy (variable sizes, irregular order, all hints)",
        ["policy", "ckpt", "restore"],
        rows,
    )
    return FigureResult(
        figure="ablation-eviction",
        columns=["policy", "checkpoint_rate", "restore_rate"],
        rows=rows,
        rendered=rendered,
    )


def ablation_gpudirect(num_snapshots: int = DEFAULT_SNAPSHOTS) -> FigureResult:
    """GPUDirect storage (future work of the paper) vs host-staged flushing.

    GPUDirect skips the pinned host cache entirely: flushes commit straight
    to the SSD and misses read it back directly — saving host memory and a
    staging hop at the price of losing the (large, fast) host cache tier.
    """
    from repro.core.engine import ScoreEngine
    from repro.harness.experiment import _build_traces, _runtime_config
    from repro.metrics.throughput import throughput
    from repro.tiers.topology import Cluster
    from repro.workloads.multiproc import run_multiprocess_shot
    from repro.workloads.patterns import restore_order
    from repro.workloads.shot import ShotSpec

    rows = []
    for gds in (False, True):
        exp = Experiment(
            approach=APPROACHES["score-all"],
            workload="uniform",
            order=RestoreOrder.REVERSE,
            num_snapshots=num_snapshots,
            wait_for_flush=False,
        )
        cfg = _runtime_config(exp)
        traces = _build_traces(exp, cfg.total_processes)
        specs = [
            ShotSpec(
                trace=trace,
                restore_order=restore_order(exp.order, len(trace), seed=exp.seed, rank=rank),
                hint_mode=exp.approach.hint_mode,
                compute_interval=exp.compute_interval,
            )
            for rank, trace in enumerate(traces)
        ]
        with Cluster(cfg) as cluster:
            shots = run_multiprocess_shot(
                cluster,
                lambda ctx: ScoreEngine(ctx, discard_consumed=True, gpudirect=gds),
                specs,
            )
        summary = throughput([s.recorder for s in shots])
        rows.append(
            (
                "gpudirect" if gds else "host-staged",
                format_bandwidth(max(summary.checkpoint, 1.0)),
                format_bandwidth(max(summary.restore, 1.0)),
            )
        )
    rendered = render_table(
        "Ablation: GPUDirect storage vs host-staged flushing (uniform, reverse)",
        ["flush path", "ckpt", "restore"],
        rows,
    )
    return FigureResult(
        figure="ablation-gpudirect",
        columns=["flush_path", "checkpoint_rate", "restore_rate"],
        rows=rows,
        rendered=rendered,
    )


def ablation_shared_cache(num_snapshots: int = DEFAULT_SNAPSHOTS) -> FigureResult:
    """Shared flush/prefetch cache vs statically split halves (Section 4.1.2)."""
    rows = []
    for shared in (True, False):
        exp = Experiment(
            approach=APPROACHES["score-all"],
            workload="uniform",
            order=RestoreOrder.REVERSE,
            num_snapshots=num_snapshots,
            wait_for_flush=False,
            config=bench_config(shared_cache=shared),
        )
        result = run_experiment(exp)
        rows.append(
            (
                "shared" if shared else "split",
                format_bandwidth(max(result.checkpoint_rate, 1.0)),
                format_bandwidth(max(result.restore_rate, 1.0)),
            )
        )
    rendered = render_table(
        "Ablation: shared vs split flush/prefetch cache (uniform, reverse, all hints)",
        ["cache design", "ckpt", "restore"],
        rows,
    )
    return FigureResult(
        figure="ablation-shared-cache",
        columns=["cache_design", "checkpoint_rate", "restore_rate"],
        rows=rows,
        rendered=rendered,
    )


_FIGURES = {
    "fig4": fig4_size_distribution,
    "fig5": fig5_wait,
    "fig6": fig6_nowait,
    "fig7": fig7_prefetch_distance,
    "fig8a": fig8a_compute_interval,
    "fig8b": fig8b_gpu_cache,
    "fig9": fig9_scalability,
    "prediction": fig_prediction,
    "ablation-eviction": ablation_eviction_policy,
    "ablation-gpudirect": ablation_gpudirect,
    "ablation-shared-cache": ablation_shared_cache,
}


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figure", nargs="?", choices=sorted(_FIGURES), help="figure to regenerate"
    )
    parser.add_argument("--snapshots", type=int, default=None)
    parser.add_argument("--list", action="store_true", help="list available figures")
    args = parser.parse_args(argv)
    if args.list or args.figure is None:
        for name in sorted(_FIGURES):
            doc = (_FIGURES[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0
    kwargs = {}
    if args.snapshots is not None:
        kwargs["num_snapshots"] = args.snapshots
    result = _FIGURES[args.figure](**kwargs)
    print(result.rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
