"""The compared approaches (Table 1).

=====================  ========  =============
Notation               Runtime   Prefetch hints
=====================  ========  =============
No hints, ADIOS2       adios2    0
No hints, UVM          uvm       0
No hints, Score        score     0
Single hint, UVM       uvm       1
Single hint, Score     score     1
All hints, UVM         uvm       all
All hints, Score       score     all
=====================  ========  =============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.baselines.adios2 import Adios2Engine
from repro.baselines.uvm_runtime import UvmEngine
from repro.core.engine import ScoreEngine
from repro.errors import ConfigError
from repro.tiers.topology import ProcessContext
from repro.workloads.shot import HintMode


@dataclass(frozen=True)
class Approach:
    """One row of Table 1."""

    label: str
    runtime: str  # "score" | "uvm" | "adios2"
    hint_mode: HintMode

    @property
    def key(self) -> str:
        return f"{self.runtime}-{self.hint_mode.value}"


TABLE1 = (
    Approach("No hints, ADIOS2", "adios2", HintMode.NONE),
    Approach("No hints, UVM", "uvm", HintMode.NONE),
    Approach("No hints, Score", "score", HintMode.NONE),
    Approach("Single hint, UVM", "uvm", HintMode.SINGLE),
    Approach("Single hint, Score", "score", HintMode.SINGLE),
    Approach("All hints, UVM", "uvm", HintMode.ALL),
    Approach("All hints, Score", "score", HintMode.ALL),
)

APPROACHES: Dict[str, Approach] = {a.key: a for a in TABLE1}

_RUNTIMES = {
    "score": ScoreEngine,
    "uvm": UvmEngine,
    "adios2": Adios2Engine,
}


def make_engine_factory(runtime: str, **engine_kwargs) -> Callable[[ProcessContext], object]:
    """Engine factory for :func:`repro.workloads.run_multiprocess_shot`."""
    cls = _RUNTIMES.get(runtime)
    if cls is None:
        raise ConfigError(f"unknown runtime {runtime!r}; expected one of {sorted(_RUNTIMES)}")
    return lambda ctx: cls(ctx, **engine_kwargs)
