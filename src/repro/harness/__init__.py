"""Experiment harness: the Table-1 approach matrix, experiment runner, and
one entry point per paper figure."""

from repro.harness.approaches import APPROACHES, TABLE1, Approach, make_engine_factory
from repro.harness.experiment import Experiment, ExperimentResult, run_experiment

__all__ = [
    "Approach",
    "APPROACHES",
    "TABLE1",
    "make_engine_factory",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
]
