"""One experiment = one cluster + one approach + one workload + one order.

The shipped experiments run at a reduced *iteration count* but preserve the
paper's capacity ratios: the paper's 384 × 128 MB = 48 GB working set over a
4 GB GPU cache and 32 GB host cache holds 1/12 of the shot on the GPU and
8/12 in host memory; :func:`scaled_caches` reproduces those fractions for
any snapshot count, so eviction pressure, SSD spill volume and prefetch
horizons all match the paper's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import analyze_events
from repro.config import CacheConfig, RuntimeConfig, bench_config
from repro.errors import ConfigError
from repro.harness.approaches import Approach, make_engine_factory
from repro.metrics.throughput import ThroughputSummary, throughput
from repro.tiers.topology import Cluster
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.rtm import RtmTrace, uniform_trace, variable_trace
from repro.workloads.shot import ShotResult, ShotSpec
from repro.workloads.multiproc import run_multiprocess_shot

#: Paper capacity ratios (Section 5.3.4): GPU cache holds 1/12 of the shot,
#: host cache 8/12.
GPU_CACHE_FRACTION = 4.0 / 48.0
HOST_CACHE_FRACTION = 32.0 / 48.0


def scaled_caches(total_per_rank: int) -> CacheConfig:
    """Cache sizes preserving the paper's working-set ratios."""
    return CacheConfig(
        gpu_cache_size=max(1, int(total_per_rank * GPU_CACHE_FRACTION)),
        host_cache_size=max(1, int(total_per_rank * HOST_CACHE_FRACTION)),
    )


@dataclass(frozen=True)
class Experiment:
    """A fully-specified run."""

    approach: Approach
    workload: str = "uniform"  # "uniform" | "variable"
    order: RestoreOrder = RestoreOrder.REVERSE
    #: 192 snapshots of the paper's 128 MB ≈ half a shot; the caches scale
    #: with the working set (scaled_caches) so the *slot counts* the
    #: eviction dynamics depend on stay proportional (16 GPU slots at
    #: n=192, the paper's 32 at n=384), while every bandwidth, size and
    #: interval stays at its paper-nominal value.
    num_snapshots: int = 192
    snapshot_size: int = 128 * MiB  # uniform workload
    total_per_rank: Optional[int] = None  # variable workload (default: n*size)
    compute_interval: float = 0.010
    wait_for_flush: bool = False
    tightly_coupled: bool = False
    num_nodes: int = 1
    processes_per_node: int = 8
    cache: Optional[CacheConfig] = None  # default: scaled_caches
    config: Optional[RuntimeConfig] = None  # default: bench_config
    seed: int = 7
    #: irregular order: same permutation for all ranks? (paper: predetermined
    #: per process; we give each rank its own, seeded deterministically)
    per_rank_orders: bool = True

    def with_(self, **changes) -> "Experiment":
        return replace(self, **changes)

    @property
    def label(self) -> str:
        return (
            f"{self.approach.label} / {self.workload} / {self.order.value}"
            f"{' / WAIT' if self.wait_for_flush else ''}"
        )


@dataclass
class ExperimentResult:
    experiment: Experiment
    summary: ThroughputSummary
    shots: List[ShotResult] = field(default_factory=list)
    #: telemetry registry snapshot taken at the end of the run (always
    #: present — the metrics registry is live even when tracing is off).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: causal attribution report (:func:`repro.analysis.report.analyze_events`)
    #: — present only when the experiment ran with ``analysis.enabled`` and
    #: the trace bus on.
    attribution: Optional[dict] = None

    @property
    def checkpoint_rate(self) -> float:
        return self.summary.checkpoint

    @property
    def restore_rate(self) -> float:
        return self.summary.restore


def _build_traces(exp: Experiment, num_processes: int) -> List[RtmTrace]:
    scale = _runtime_config(exp).scale
    if exp.workload == "uniform":
        return [
            uniform_trace(scale, num_snapshots=exp.num_snapshots, size=exp.snapshot_size, rank=r)
            for r in range(num_processes)
        ]
    if exp.workload == "variable":
        total = exp.total_per_rank or exp.num_snapshots * exp.snapshot_size
        return [
            variable_trace(
                scale, rank=r, seed=exp.seed, num_snapshots=exp.num_snapshots, total_bytes=total
            )
            for r in range(num_processes)
        ]
    raise ConfigError(f"unknown workload {exp.workload!r}")


def _runtime_config(exp: Experiment) -> RuntimeConfig:
    cfg = exp.config or bench_config()
    cache = exp.cache or scaled_caches(exp.num_snapshots * exp.snapshot_size)
    return cfg.with_(
        cache=cache,
        num_nodes=exp.num_nodes,
        processes_per_node=exp.processes_per_node,
    )


def run_experiment(exp: Experiment) -> ExperimentResult:
    """Run one experiment end to end and aggregate its throughput."""
    cfg = _runtime_config(exp)
    num_processes = cfg.total_processes
    traces = _build_traces(exp, num_processes)
    specs = []
    for rank, trace in enumerate(traces):
        order = restore_order(
            exp.order,
            len(trace),
            seed=exp.seed,
            rank=rank if exp.per_rank_orders else 0,
        )
        specs.append(
            ShotSpec(
                trace=trace,
                restore_order=order,
                hint_mode=exp.approach.hint_mode,
                compute_interval=exp.compute_interval,
                wait_for_flush=exp.wait_for_flush,
                seed=exp.seed,
            )
        )
    engine_kwargs = {}
    if exp.approach.runtime == "score" and not exp.wait_for_flush:
        # §5.4.3 (adjoint scenario): checkpoints need not be persisted, so
        # consumed checkpoints are discarded and their flushes abandoned
        # (condition (5)); unconsumed overflow still reaches the SSD.
        engine_kwargs["discard_consumed"] = True
    factory = make_engine_factory(exp.approach.runtime, **engine_kwargs)
    with Cluster(cfg) as cluster:
        shots = run_multiprocess_shot(
            cluster, factory, specs, tightly_coupled=exp.tightly_coupled
        )
        metrics = cluster.telemetry.registry.snapshot()
        attribution = None
        if cfg.analysis.enabled and cluster.telemetry.bus.enabled:
            attribution = analyze_events(
                cluster.telemetry.bus.snapshot(), slo=cfg.analysis.slo
            )
    summary = throughput([s.recorder for s in shots])
    return ExperimentResult(
        experiment=exp,
        summary=summary,
        shots=shots,
        metrics=metrics,
        attribution=attribution,
    )


def run_matrix(experiments: Sequence[Experiment]) -> List[ExperimentResult]:
    """Run a list of experiments sequentially (each owns the machine)."""
    return [run_experiment(e) for e in experiments]
