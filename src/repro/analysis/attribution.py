"""Critical-path extraction and category attribution for one op DAG.

Each operation's categorized spans are swept left to right; at every
instant covered by more than one span (a backoff inside a transfer, an
SSD read-back inside a PFS flush, a sched queue wait inside a promotion)
the interval is charged to exactly one span.  Overlaps only arise from
*refinement* — an inner span detailing part of its container — so the
later-starting (innermost) span wins; ties fall back to the higher
:data:`~repro.telemetry.causal.CATEGORY_PRIORITY`, then to the shorter
(more specific) span.  The surviving
segments, merged where adjacent, *are* the operation's critical path:
a single non-overlapping timeline explaining where its wall time went.

Because the causal layer back-fills inter-stage gaps as ``queue`` spans,
the swept segments tile the op's window almost completely; the
*accounting-completeness invariant* (coverage ≥ 95 % of wall time per op)
is checked here and surfaced in every report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.dag import OpDag, OpNode
from repro.telemetry.causal import CATEGORIES, CATEGORY_PRIORITY

#: Coverage each op must reach for the accounting invariant to hold.
COVERAGE_THRESHOLD = 0.95

#: Tier bucket for spans that carry no ``tier`` arg (pure waits, journal).
UNTIERED = "-"


@dataclass
class Segment:
    """One critical-path segment: a half-open interval owned by one span."""

    t0: float
    t1: float
    name: str
    category: str
    tier: str

    @property
    def dur(self) -> float:
        return self.t1 - self.t0


@dataclass
class OpAttribution:
    """Where one operation's wall time went."""

    op: OpNode
    wall: float
    covered: float
    by_category: Dict[str, float]
    by_tier_category: Dict[Tuple[str, str], float]
    critical_path: List[Segment] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return self.covered / self.wall if self.wall > 0 else 1.0

    @property
    def complete(self) -> bool:
        return self.coverage >= COVERAGE_THRESHOLD


def attribute_op(op: OpNode) -> OpAttribution:
    """Sweep one op's categorized spans into an :class:`OpAttribution`."""
    spans = [s for s in op.spans() if s.dur > 0]
    by_category: Dict[str, float] = {}
    by_tier_category: Dict[Tuple[str, str], float] = {}
    path: List[Segment] = []
    if not spans:
        return OpAttribution(op, op.wall, 0.0, by_category, by_tier_category, path)

    bounds = sorted({t for s in spans for t in (s.ts, s.ts + s.dur)})
    covered = 0.0
    for t0, t1 in zip(bounds, bounds[1:]):
        if t1 <= t0:
            continue
        owner = None
        owner_key = None
        for s in spans:
            if s.ts <= t0 and s.ts + s.dur >= t1:
                key = (s.ts, CATEGORY_PRIORITY.get(s.category, 0), -s.dur)
                if owner is None or key > owner_key:
                    owner, owner_key = s, key
        if owner is None:
            continue
        dur = t1 - t0
        covered += dur
        tier = str(owner.args.get("tier", UNTIERED))
        by_category[owner.category] = by_category.get(owner.category, 0.0) + dur
        key = (tier, owner.category)
        by_tier_category[key] = by_tier_category.get(key, 0.0) + dur
        last = path[-1] if path else None
        if (
            last is not None
            and last.t1 == t0
            and last.name == owner.name
            and last.category == owner.category
            and last.tier == tier
        ):
            last.t1 = t1
        else:
            path.append(Segment(t0, t1, owner.name, owner.category, tier))
    return OpAttribution(op, op.wall, covered, by_category, by_tier_category, path)


@dataclass
class DagAttribution:
    """Aggregate attribution of every op in a DAG."""

    per_op: Dict[str, OpAttribution]
    orphans: int

    def total_by_category(self) -> Dict[str, float]:
        out = {c: 0.0 for c in CATEGORIES}
        for a in self.per_op.values():
            for cat, dur in a.by_category.items():
                out[cat] = out.get(cat, 0.0) + dur
        return {c: v for c, v in out.items() if v > 0}

    def total_by_tier_category(self) -> Dict[Tuple[str, str], float]:
        out: Dict[Tuple[str, str], float] = {}
        for a in self.per_op.values():
            for key, dur in a.by_tier_category.items():
                out[key] = out.get(key, 0.0) + dur
        return out

    def coverage_stats(self) -> dict:
        coverages = [a.coverage for a in self.per_op.values()]
        violations = [
            a.op.op_id for a in self.per_op.values() if not a.complete
        ]
        return {
            "ops": len(coverages),
            "mean": sum(coverages) / len(coverages) if coverages else 1.0,
            "min": min(coverages) if coverages else 1.0,
            "threshold": COVERAGE_THRESHOLD,
            "violations": sorted(violations),
            "orphans": self.orphans,
        }

    def complete(self) -> bool:
        """The accounting invariant: every op ≥ threshold, zero orphans."""
        stats = self.coverage_stats()
        return not stats["violations"] and stats["orphans"] == 0

    def slowest(self, kind: Optional[str] = None, n: int = 5) -> List[OpAttribution]:
        pool = [
            a
            for a in self.per_op.values()
            if kind is None or a.op.kind == kind
        ]
        return sorted(pool, key=lambda a: a.wall, reverse=True)[:n]


def attribute_dag(dag: OpDag) -> DagAttribution:
    return DagAttribution(
        per_op={op_id: attribute_op(op) for op_id, op in dag.ops.items()},
        orphans=len(dag.orphans),
    )
