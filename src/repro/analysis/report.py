"""Bottleneck reports: per-category / per-tier attribution, text + JSON.

:func:`analyze_events` is the one-stop entry: events in (live bus snapshot
or re-imported JSONL), plain-dict report out — op counts, category and
tier×category totals, accounting-completeness stats, the slowest ops with
their critical paths, and the post-hoc SLO evaluation.
:func:`diff_reports` aligns two such reports and attributes the regression
to the tier×category cells that grew the most.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.attribution import DagAttribution, attribute_dag
from repro.analysis.dag import build_dag
from repro.analysis.slo import evaluate_dag
from repro.config import SloConfig
from repro.telemetry.bus import TraceEvent


def analyze_events(
    events: Iterable[TraceEvent],
    slo: Optional[SloConfig] = None,
    top: int = 5,
) -> dict:
    """Build the full analysis report (a JSON-serialisable dict)."""
    events = list(events)  # consumed twice: DAG build + per-node rollup
    dag = build_dag(events)
    attr = attribute_dag(dag)
    report: dict = {
        "ops": {
            kind: len(dag.by_kind(kind))
            for kind in ("checkpoint", "restore", "prefetch")
        },
        "wall_s": sum(a.wall for a in attr.per_op.values()),
        "attributed_s": sum(a.covered for a in attr.per_op.values()),
        "categories": _rounded(attr.total_by_category()),
        "tiers": _tier_matrix(attr),
        "accounting": attr.coverage_stats(),
        "slowest": _slowest(attr, top),
    }
    nodes = _node_rollup(events)
    if nodes:
        report["nodes"] = nodes
    prediction = _prediction_rollup(events)
    if prediction:
        report["prediction"] = prediction
    monitor = evaluate_dag(dag, slo or SloConfig())
    report["slo"] = monitor.snapshot()
    report["slo_lines"] = monitor.summary_lines()
    return report


def _node_rollup(events: Iterable[TraceEvent]) -> Dict[str, dict]:
    """Per-node activity totals (cluster runs tag events with ``node_id``).

    Empty outside fabric-enabled runs, so single-node reports are unchanged.
    """
    nodes: Dict[int, dict] = {}
    for event in events:
        if event.node_id is None:
            continue
        entry = nodes.setdefault(
            event.node_id, {"events": 0, "span_s": 0.0, "engines": set()}
        )
        entry["events"] += 1
        if event.phase == "X":
            entry["span_s"] += event.dur
        if event.engine_id is not None:
            entry["engines"].add(event.engine_id)
    return {
        str(node_id): {
            "events": entry["events"],
            "span_s": round(entry["span_s"], 6),
            "engines": sorted(entry["engines"]),
        }
        for node_id, entry in sorted(nodes.items())
    }


def _prediction_rollup(events: Iterable[TraceEvent]) -> Optional[dict]:
    """Speculation-accuracy totals from the predictor's trace instants.

    ``None`` outside prediction-enabled runs, so existing reports are
    unchanged.  Hit rate counts *resolved* speculative stagings only
    (consumed or abandoned); stagings still outstanding at the end of the
    trace are reported separately.
    """
    stages = hits = wastes = suspensions = resumes = 0
    wasted_bytes = 0
    for event in events:
        if event.name == "spec-stage":
            stages += 1
        elif event.name == "spec-hit":
            hits += 1
        elif event.name == "spec-waste":
            wastes += 1
            wasted_bytes += int(event.args.get("bytes", 0))
        elif event.name == "spec-suspend":
            suspensions += 1
        elif event.name == "spec-resume":
            resumes += 1
    if not (stages or hits or wastes or suspensions or resumes):
        return None
    resolved = hits + wastes
    return {
        "speculative_stagings": stages,
        "hits": hits,
        "wastes": wastes,
        "outstanding": max(0, stages - resolved),
        "hit_rate": round(hits / resolved, 4) if resolved else None,
        "wasted_bytes": wasted_bytes,
        "suspensions": suspensions,
        "resumes": resumes,
    }


def _rounded(totals: Dict[str, float]) -> Dict[str, float]:
    return {k: round(v, 6) for k, v in sorted(totals.items())}


def _tier_matrix(attr: DagAttribution) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for (tier, cat), dur in sorted(attr.total_by_tier_category().items()):
        out.setdefault(tier, {})[cat] = round(dur, 6)
    return out


def _slowest(attr: DagAttribution, top: int) -> List[dict]:
    out = []
    for a in attr.slowest(n=top):
        out.append(
            {
                "op": a.op.op_id,
                "kind": a.op.kind,
                "ckpt": a.op.ckpt,
                "wall_s": round(a.wall, 6),
                "coverage": round(a.coverage, 4),
                "categories": _rounded(a.by_category),
                "critical_path": [
                    {
                        "name": seg.name,
                        "category": seg.category,
                        "tier": seg.tier,
                        "dur_s": round(seg.dur, 6),
                    }
                    for seg in a.critical_path
                ],
            }
        )
    return out


# -- rendering ----------------------------------------------------------------
def render_report(report: dict, title: str = "causal analysis") -> str:
    lines = [title, "=" * len(title)]
    ops = report["ops"]
    lines.append(
        f"ops: {ops.get('checkpoint', 0)} checkpoints, "
        f"{ops.get('restore', 0)} restores, {ops.get('prefetch', 0)} prefetch chains"
    )
    wall = report["wall_s"]
    attributed = report["attributed_s"]
    frac = attributed / wall if wall else 1.0
    lines.append(
        f"wall {wall:.4g}s op-time, {attributed:.4g}s attributed ({frac:.1%})"
    )
    acct = report["accounting"]
    lines.append(
        f"accounting: min coverage {acct['min']:.1%}, mean {acct['mean']:.1%} "
        f"(threshold {acct['threshold']:.0%}); "
        f"{len(acct['violations'])} violations, {acct['orphans']} orphan spans"
    )
    lines.append("")
    lines.append("time by category:")
    total = sum(report["categories"].values()) or 1.0
    for cat, dur in sorted(report["categories"].items(), key=lambda kv: -kv[1]):
        lines.append(f"  {cat:<10} {dur:>10.4g}s  {dur / total:>6.1%}")
    lines.append("")
    lines.append("time by tier x category:")
    for tier, cats in report["tiers"].items():
        cells = ", ".join(
            f"{cat} {dur:.4g}s" for cat, dur in sorted(cats.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"  {tier:<8} {cells}")
    if report.get("nodes"):
        lines.append("")
        lines.append("per-node activity:")
        for node_id, entry in report["nodes"].items():
            engines = ", ".join(f"p{e}" for e in entry["engines"]) or "-"
            lines.append(
                f"  node{node_id}: {entry['events']} events, "
                f"{entry['span_s']:.4g}s span time, engines {engines}"
            )
    if report.get("prediction"):
        pred = report["prediction"]
        lines.append("")
        lines.append("speculation accuracy (access-pattern prediction):")
        rate = pred["hit_rate"]
        lines.append(
            f"  {pred['speculative_stagings']} speculative stagings: "
            f"{pred['hits']} consumed, {pred['wastes']} wasted, "
            f"{pred['outstanding']} unresolved"
        )
        lines.append(
            f"  prefetch hit rate {'n/a' if rate is None else f'{rate:.1%}'}, "
            f"wasted {pred['wasted_bytes'] / (1 << 20):.0f} MiB, "
            f"{pred['suspensions']} validation suspensions "
            f"({pred['resumes']} resumes)"
        )
    if report.get("slowest"):
        lines.append("")
        lines.append("slowest ops (critical path):")
        for entry in report["slowest"]:
            lines.append(
                f"  {entry['op']} ({entry['kind']}) wall {entry['wall_s']:.4g}s "
                f"coverage {entry['coverage']:.1%}"
            )
            for seg in entry["critical_path"]:
                tier = f" [{seg['tier']}]" if seg["tier"] != "-" else ""
                lines.append(
                    f"    {seg['dur_s']:>10.4g}s  {seg['category']:<9} {seg['name']}{tier}"
                )
    if report.get("slo_lines"):
        lines.append("")
        lines.extend(report["slo_lines"])
    return "\n".join(lines)


# -- diffing ------------------------------------------------------------------
def diff_reports(baseline: dict, candidate: dict) -> dict:
    """Attribute the wall-time change between two runs to tier×category cells.

    Returns per-cell deltas (candidate − baseline, nominal seconds) sorted
    by regression size; ``top_regressions`` leads with the cells that
    explain the slowdown.
    """
    cells: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for which, report in (("base", baseline), ("cand", candidate)):
        for tier, cats in report["tiers"].items():
            for cat, dur in cats.items():
                base, cand = cells.get((tier, cat), (0.0, 0.0))
                if which == "base":
                    cells[(tier, cat)] = (dur, cand)
                else:
                    cells[(tier, cat)] = (base, dur)
    entries = []
    for (tier, cat), (base, cand) in cells.items():
        delta = cand - base
        entries.append(
            {
                "tier": tier,
                "category": cat,
                "baseline_s": round(base, 6),
                "candidate_s": round(cand, 6),
                "delta_s": round(delta, 6),
                "ratio": round(cand / base, 4) if base > 0 else None,
            }
        )
    entries.sort(key=lambda e: -e["delta_s"])
    wall_delta = candidate["wall_s"] - baseline["wall_s"]
    return {
        "wall_delta_s": round(wall_delta, 6),
        "ops_baseline": baseline["ops"],
        "ops_candidate": candidate["ops"],
        "cells": entries,
        "top_regressions": [e for e in entries if e["delta_s"] > 0][:5],
    }


def render_diff(diff: dict, title: str = "regression attribution") -> str:
    lines = [title, "=" * len(title)]
    lines.append(f"total op wall-time delta: {diff['wall_delta_s']:+.4g}s")
    top = diff["top_regressions"]
    if not top:
        lines.append("no regressions: no tier/category cell grew")
    else:
        lead = top[0]
        lines.append(
            f"largest regression: {lead['category']} on tier {lead['tier']} "
            f"({lead['baseline_s']:.4g}s -> {lead['candidate_s']:.4g}s, "
            f"{lead['delta_s']:+.4g}s)"
        )
        lines.append("")
        lines.append(f"{'tier':<8} {'category':<10} {'baseline':>10} {'candidate':>10} {'delta':>10}")
        for e in diff["cells"]:
            lines.append(
                f"{e['tier']:<8} {e['category']:<10} {e['baseline_s']:>10.4g} "
                f"{e['candidate_s']:>10.4g} {e['delta_s']:>+10.4g}"
            )
    return "\n".join(lines)
