"""SLO tracking: rolling-window latency objectives with burn-rate alerts.

Two objectives from :class:`~repro.config.SloConfig` — durability latency
(checkpoint entry → first durable copy) and demand-restore latency (the
blocked portion of ``restore()``) — each stated as "``objective`` of
operations meet the target".  An :class:`SloMonitor` consumes completions
either *live* (the engine feeds it as ops finish, and it emits
``slo-breach`` / ``slo-burn`` trace instants) or *post hoc* (the analyzer
replays latencies out of a reconstructed op DAG); both paths share the
same rolling-window arithmetic, so a live alert is reproducible from the
saved trace.

Burn rate follows the usual error-budget form: with objective ``p``, the
budget is ``1 - p`` violations; the windowed violation rate divided by
that budget is the burn rate, and crossing ``burn_rate_threshold`` raises
an (edge-triggered) alert.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.config import SloConfig


class SloObjective:
    """One rolling-window latency objective."""

    def __init__(self, name: str, target_s: float, cfg: SloConfig) -> None:
        self.name = name
        self.target_s = target_s
        self.cfg = cfg
        self._window: Deque[Tuple[float, bool]] = deque()  # (ts, violated)
        self.total = 0
        self.violations = 0
        self.alerts = 0
        self.worst = 0.0
        self._alerting = False

    def observe(self, ts: float, latency: float) -> Optional[dict]:
        """Record one completion; returns a burn alert dict when one fires."""
        violated = latency > self.target_s
        self.total += 1
        self.worst = max(self.worst, latency)
        if violated:
            self.violations += 1
        window = self._window
        window.append((ts, violated))
        horizon = ts - self.cfg.window_s
        while window and window[0][0] < horizon:
            window.popleft()
        burn = self.burn_rate()
        firing = (
            len(window) >= self.cfg.min_samples
            and burn > self.cfg.burn_rate_threshold
        )
        alert = None
        if firing and not self._alerting:
            self.alerts += 1
            alert = {
                "slo": self.name,
                "ts": ts,
                "burn_rate": burn,
                "window_ops": len(window),
                "window_violations": sum(1 for _, v in window if v),
                "target_s": self.target_s,
            }
        self._alerting = firing
        return alert

    def burn_rate(self) -> float:
        """Windowed violation rate over the error budget ``1 - objective``."""
        window = self._window
        if not window:
            return 0.0
        rate = sum(1 for _, v in window if v) / len(window)
        return rate / (1.0 - self.cfg.objective)

    def snapshot(self) -> dict:
        return {
            "target_s": self.target_s,
            "objective": self.cfg.objective,
            "total": self.total,
            "violations": self.violations,
            "compliance": (
                (self.total - self.violations) / self.total if self.total else 1.0
            ),
            "worst_s": self.worst,
            "burn_rate": self.burn_rate(),
            "alerts": self.alerts,
        }

    def summary_line(self) -> str:
        s = self.snapshot()
        return (
            f"slo {self.name:<10} target {self.target_s:g}s @ {self.cfg.objective:.0%}: "
            f"{s['total'] - s['violations']}/{s['total']} met "
            f"({s['compliance']:.1%}), worst {s['worst_s']:.4g}s, "
            f"burn {s['burn_rate']:.2f}, alerts {s['alerts']}"
        )


class SloMonitor:
    """Both objectives plus (optional) live trace/metric emission."""

    def __init__(self, cfg: SloConfig, bus=None, track: str = "slo", registry=None) -> None:
        self.cfg = cfg
        self.bus = bus
        self.track = track
        self.durability = SloObjective("durability", cfg.durability_target_s, cfg)
        self.restore = SloObjective("restore", cfg.restore_target_s, cfg)
        self._m_breach = registry.counter("slo.breaches") if registry else None
        self._m_alerts = registry.counter("slo.burn_alerts") if registry else None

    def _observe(self, objective: SloObjective, ts: float, latency: float, op_id=None):
        violated = latency > objective.target_s
        alert = objective.observe(ts, latency)
        if violated:
            if self._m_breach is not None:
                self._m_breach.inc()
            if self.bus is not None:
                self.bus.instant(
                    "slo-breach",
                    self.track,
                    op_id=op_id,
                    slo=objective.name,
                    latency=latency,
                    target=objective.target_s,
                )
        if alert is not None:
            if self._m_alerts is not None:
                self._m_alerts.inc()
            if self.bus is not None:
                self.bus.instant(
                    "slo-burn",
                    self.track,
                    slo=objective.name,
                    burn_rate=alert["burn_rate"],
                    window_ops=alert["window_ops"],
                    window_violations=alert["window_violations"],
                )
        return alert

    def observe_durability(self, ts: float, latency: float, op_id=None):
        return self._observe(self.durability, ts, latency, op_id=op_id)

    def observe_restore(self, ts: float, latency: float, op_id=None):
        return self._observe(self.restore, ts, latency, op_id=op_id)

    def snapshot(self) -> dict:
        return {
            "durability": self.durability.snapshot(),
            "restore": self.restore.snapshot(),
        }

    def summary_lines(self) -> List[str]:
        return [self.durability.summary_line(), self.restore.summary_line()]


def evaluate_dag(dag, cfg: SloConfig) -> SloMonitor:
    """Replay a reconstructed DAG's latencies through a fresh monitor.

    Durability latency per checkpoint op = first ``durable`` instant minus
    op start (checkpoints that never reached a durable tier in the trace
    window are skipped); restore latency = the restore op's wall window.
    Completions are replayed in timestamp order so the rolling windows
    behave exactly as they would have live.
    """
    monitor = SloMonitor(cfg)
    completions = []
    for op in dag.by_kind("checkpoint"):
        durable_at = op.durable_at()
        if durable_at is not None:
            completions.append((durable_at, "durability", durable_at - op.start, op.op_id))
    for op in dag.by_kind("restore"):
        completions.append((op.end, "restore", op.wall, op.op_id))
    for ts, which, latency, op_id in sorted(completions):
        if which == "durability":
            monitor.observe_durability(ts, latency, op_id=op_id)
        else:
            monitor.observe_restore(ts, latency, op_id=op_id)
    return monitor
