"""``python -m repro analyze`` — bottleneck reports from causal traces.

Analyzes either a *live run* (give a workload name: the workload runs with
telemetry + causal analysis on, exactly like ``repro trace``) or a *saved
log* (give a path to an ``.events.jsonl`` written by ``repro trace`` /
``repro analyze``).  Renders the per-category / per-tier attribution
report (text to stdout, JSON via ``--json``), and with ``--diff BASELINE``
compares two runs and attributes the regression to tier×category cells.

``--check-accounting`` turns the accounting-completeness invariant into an
exit code (categories ≥ threshold of each op's wall time, zero orphan
spans) — that is what CI gates on.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging
import os
from typing import List, Optional, Sequence

from repro.analysis.report import analyze_events, diff_reports, render_diff, render_report
from repro.config import FaultConfig, HardwareSpec, SloConfig
from repro.errors import ConfigError
from repro.log import enable_console_logging
from repro.telemetry.bus import TraceEvent
from repro.telemetry.cli import _parse_node_crash, _parse_partition
from repro.telemetry.exporters import read_jsonl
from repro.workloads.patterns import RestoreOrder


def _scaled_ssd(hardware: HardwareSpec, factor: float) -> HardwareSpec:
    """The bench hardware with SSD bandwidth scaled by ``factor``."""
    return dataclasses.replace(
        hardware,
        ssd_write_bandwidth=hardware.ssd_write_bandwidth * factor,
        ssd_read_bandwidth=hardware.ssd_read_bandwidth * factor,
    )


def _load_events(target: str, args, slo: SloConfig) -> List[TraceEvent]:
    """Events for ``target``: a JSONL path, or a workload run live."""
    if target.endswith(".jsonl") or os.path.isfile(target):
        return read_jsonl(target)
    from repro.telemetry.cli import run_trace

    hardware = None
    if args.ssd_bandwidth_factor != 1.0:
        if args.ssd_bandwidth_factor <= 0:
            raise ConfigError(
                f"--ssd-bandwidth-factor must be positive: {args.ssd_bandwidth_factor}"
            )
        hardware = _scaled_ssd(HardwareSpec(), args.ssd_bandwidth_factor)
    faults = None
    if args.node_crash or args.partition:
        if args.cluster is None:
            raise ConfigError("--node-crash/--partition need --cluster")
        faults = FaultConfig(
            enabled=True,
            node_crashes=tuple(args.node_crash or ()),
            partitions=tuple(args.partition or ()),
        )
    out = run_trace(
        target,
        out_dir=args.out_dir,
        snapshots=args.snapshots,
        processes=args.processes,
        order=RestoreOrder(args.order),
        seed=args.seed,
        sched=args.sched,
        reduce=args.reduce,
        similarity=args.similarity,
        faults=faults,
        resilient=args.resilient,
        analysis=True,
        slo=slo,
        hardware=hardware,
        predict=args.predict,
        cluster_nodes=args.cluster,
    )
    return read_jsonl(out["jsonl"])


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="reconstruct per-op span DAGs and attribute wall time "
        "to categories (queue/transfer/retry/reroute/reduce/reserve/journal)",
    )
    parser.add_argument(
        "target",
        help="workload name (quickstart/uniform/variable/kvcache/revolve; "
        "runs live with causal analysis on) or a saved .events.jsonl path",
    )
    parser.add_argument(
        "--diff",
        metavar="BASELINE",
        default=None,
        help="baseline to compare against (workload name or .events.jsonl); "
        "the report attributes the regression per tier x category",
    )
    parser.add_argument("--out-dir", default="traces", help="output directory for live runs")
    parser.add_argument("--json", default=None, help="write the report (and diff) as JSON here")
    parser.add_argument("--top", type=int, default=5, help="slowest ops to detail (default 5)")
    parser.add_argument(
        "--check-accounting",
        nargs="?",
        const=95.0,
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 unless every op's attributed categories cover >= PCT%% "
        "(default 95) of its wall time and no orphan spans exist",
    )
    # live-run knobs (mirror `repro trace`)
    parser.add_argument("--snapshots", type=int, default=None)
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument(
        "--order",
        choices=[o.value for o in RestoreOrder],
        default=RestoreOrder.REVERSE.value,
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--predict",
        choices=["hints", "learned", "none"],
        default="hints",
        help="restore foreknowledge in live runs: explicit hints (default), "
        "online prediction, or demand-only",
    )
    parser.add_argument("--sched", action="store_true", help="enable QoS transfer scheduling")
    parser.add_argument("--reduce", action="store_true", help="enable the reduction pipeline")
    parser.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="NODES",
        help="run the live workload as an N-node checkpoint fabric",
    )
    parser.add_argument(
        "--node-crash",
        action="append",
        type=_parse_node_crash,
        metavar="NODE@TIME[:MODE]",
        help="crash a node during the live run (see `repro trace`); "
        "repeatable, needs --cluster",
    )
    parser.add_argument(
        "--partition",
        action="append",
        type=_parse_partition,
        metavar="A-B@START:END",
        help="pairwise partition window during the live run; repeatable, "
        "needs --cluster",
    )
    parser.add_argument("--similarity", type=float, default=0.9)
    parser.add_argument("--resilient", action="store_true", help="enable the self-healing stack")
    parser.add_argument(
        "--ssd-bandwidth-factor",
        type=float,
        default=1.0,
        help="scale SSD read/write bandwidth in live runs (e.g. 0.5 to "
        "inject a half-speed SSD for --diff experiments)",
    )
    # SLO knobs
    parser.add_argument("--slo-durability", type=float, default=None, metavar="S",
                        help="durability-latency target in nominal seconds")
    parser.add_argument("--slo-restore", type=float, default=None, metavar="S",
                        help="demand-restore-latency target in nominal seconds")
    parser.add_argument("--slo-objective", type=float, default=None,
                        help="fraction of ops that must meet the target")
    parser.add_argument("--slo-window", type=float, default=None, metavar="S",
                        help="rolling window in nominal seconds")
    parser.add_argument("--slo-burn", type=float, default=None,
                        help="burn-rate alert threshold")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging(logging.DEBUG)

    slo_changes = {
        "durability_target_s": args.slo_durability,
        "restore_target_s": args.slo_restore,
        "objective": args.slo_objective,
        "window_s": args.slo_window,
        "burn_rate_threshold": args.slo_burn,
    }
    try:
        slo = SloConfig(**{k: v for k, v in slo_changes.items() if v is not None})
        events = _load_events(args.target, args, slo)
        report = analyze_events(events, slo=slo, top=args.top)
        diff = None
        if args.diff is not None:
            base_events = _load_events(args.diff, args, slo)
            base_report = analyze_events(base_events, slo=slo, top=args.top)
            diff = diff_reports(base_report, report)
    except ConfigError as exc:
        parser.exit(2, f"{parser.prog}: error: {exc}\n")
    except FileNotFoundError as exc:
        parser.exit(2, f"{parser.prog}: error: cannot read {exc.filename!r}\n")

    print(render_report(report, title=f"causal analysis: {args.target}"))
    if diff is not None:
        print()
        print(render_diff(diff, title=f"regression vs {args.diff}"))
    if args.json is not None:
        payload = {"report": report}
        if diff is not None:
            payload["diff"] = diff
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\nwrote {args.json}")

    if args.check_accounting is not None:
        threshold = args.check_accounting / 100.0
        acct = report["accounting"]
        bad = [
            op_id
            for op_id, cov in (
                (a["op"], a["coverage"]) for a in report["slowest"]
            )
            if cov < threshold
        ]
        # `slowest` only samples; gate on the full stats.
        failed = acct["min"] < threshold or acct["orphans"] > 0
        if acct["ops"] == 0:
            print("accounting check FAILED: no causally-tagged ops in the trace")
            return 1
        if failed:
            print(
                f"accounting check FAILED: min coverage {acct['min']:.1%} "
                f"(threshold {threshold:.0%}), {acct['orphans']} orphan spans, "
                f"violating ops: {acct['violations'] or bad}"
            )
            return 1
        print(
            f"accounting check passed: {acct['ops']} ops, min coverage "
            f"{acct['min']:.1%} >= {threshold:.0%}, 0 orphan spans"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
