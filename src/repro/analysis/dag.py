"""Reconstruct per-operation span DAGs from trace events.

The causal layer (:mod:`repro.telemetry.causal`) stamps every span an
operation touches with the operation's ``op_id``; this module groups a
TraceBus snapshot (or a re-imported JSONL log) back into
:class:`OpNode` objects — one per operation — and links them into a DAG
via ``parent_id`` (a restore's parent is the checkpoint that produced its
data; ditto prefetch chains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.telemetry.bus import TraceEvent
from repro.telemetry.causal import parse_op_id


@dataclass
class OpNode:
    """One operation: its events, identity, and window."""

    op_id: str
    kind: str  # "checkpoint" | "restore" | "prefetch"
    pid: int
    ckpt: int
    parent_id: Optional[str] = None
    events: List[TraceEvent] = field(default_factory=list)
    children: List[str] = field(default_factory=list)

    @property
    def start(self) -> float:
        return min(e.ts for e in self.events)

    @property
    def end(self) -> float:
        """End of the op's last *span*.

        Instants do not extend the window: markers like the eviction of
        the checkpoint's extent fire long after the operation itself
        finished, and the timeline between the last span and such a marker
        is (correctly) nobody's time.
        """
        spans = [e for e in self.events if e.phase == "X"]
        pool = spans if spans else self.events
        return max(e.ts + e.dur for e in pool)

    @property
    def wall(self) -> float:
        """The operation's wall-clock window in nominal seconds."""
        return self.end - self.start

    def spans(self) -> List[TraceEvent]:
        """The op's categorized complete spans (the attribution inputs)."""
        return [e for e in self.events if e.phase == "X" and e.category is not None]

    def instants(self, name: Optional[str] = None) -> List[TraceEvent]:
        out = [e for e in self.events if e.phase == "i"]
        if name is not None:
            out = [e for e in out if e.name == name]
        return out

    def durable_at(self) -> Optional[float]:
        """Timestamp of the first durable-commit instant, if any."""
        marks = self.instants("durable")
        return min(e.ts for e in marks) if marks else None


@dataclass
class OpDag:
    """Every operation of one run, keyed by op id."""

    ops: Dict[str, OpNode]
    #: events carrying causal markings the DAG could not place: a malformed
    #: ``op_id``, or a category with no ``op_id`` at all.  Non-empty means
    #: an emission bug; the CI gate requires zero.
    orphans: List[TraceEvent]

    def by_kind(self, kind: str) -> List[OpNode]:
        return sorted(
            (op for op in self.ops.values() if op.kind == kind),
            key=lambda op: (op.pid, op.ckpt),
        )

    def roots(self) -> List[OpNode]:
        return [
            op
            for op in self.ops.values()
            if op.parent_id is None or op.parent_id not in self.ops
        ]


def build_dag(events: Iterable[TraceEvent]) -> OpDag:
    """Group causally-tagged events into an :class:`OpDag`."""
    ops: Dict[str, OpNode] = {}
    orphans: List[TraceEvent] = []
    for event in events:
        if event.op_id is None:
            if event.category is not None:
                orphans.append(event)
            continue
        parsed = parse_op_id(event.op_id)
        if parsed is None:
            orphans.append(event)
            continue
        node = ops.get(event.op_id)
        if node is None:
            kind, pid, ckpt = parsed
            node = OpNode(op_id=event.op_id, kind=kind, pid=pid, ckpt=ckpt)
            ops[event.op_id] = node
        node.events.append(event)
        if event.parent_id is not None and node.parent_id is None:
            node.parent_id = event.parent_id
    for node in ops.values():
        if node.parent_id is not None:
            parent = ops.get(node.parent_id)
            if parent is not None:
                parent.children.append(node.op_id)
    return OpDag(ops=ops, orphans=orphans)
