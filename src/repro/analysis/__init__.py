"""Causal analysis: op DAGs, critical paths, attribution, SLOs.

Built on the causal identity the runtime stamps on trace events when
``AnalysisConfig.enabled`` (see :mod:`repro.telemetry.causal`):

* :mod:`repro.analysis.dag` — group a TraceBus snapshot or re-imported
  JSONL into per-operation span DAGs (checkpoint → flush cascade,
  checkpoint → restore/prefetch chains);
* :mod:`repro.analysis.attribution` — sweep each op's categorized spans
  into a critical path and per-category / per-tier time attribution, with
  the accounting-completeness invariant (≥95 % of op wall time);
* :mod:`repro.analysis.slo` — rolling-window latency objectives
  (durability, demand restore) with burn-rate alerts, usable live or
  post hoc;
* :mod:`repro.analysis.report` — text/JSON bottleneck reports and the
  two-run regression diff;
* :mod:`repro.analysis.cli` — ``python -m repro analyze``.
"""

from repro.analysis.attribution import (
    COVERAGE_THRESHOLD,
    DagAttribution,
    OpAttribution,
    Segment,
    attribute_dag,
    attribute_op,
)
from repro.analysis.dag import OpDag, OpNode, build_dag
from repro.analysis.report import analyze_events, diff_reports, render_diff, render_report
from repro.analysis.slo import SloMonitor, SloObjective, evaluate_dag

__all__ = [
    "OpDag",
    "OpNode",
    "build_dag",
    "OpAttribution",
    "DagAttribution",
    "Segment",
    "attribute_op",
    "attribute_dag",
    "COVERAGE_THRESHOLD",
    "SloMonitor",
    "SloObjective",
    "evaluate_dag",
    "analyze_events",
    "diff_reports",
    "render_report",
    "render_diff",
]
