"""Command-line entry point.

``python -m repro <figure>`` regenerates one paper figure (see
``python -m repro --list``); ``python -m repro trace <workload>`` runs a
traced workload and exports Chrome/Perfetto trace JSON plus a metrics
summary (see :mod:`repro.telemetry.cli`); ``python -m repro analyze``
reconstructs per-op span DAGs from a live run or a saved JSONL and renders
critical-path / category-attribution reports with SLO evaluation (see
:mod:`repro.analysis.cli`).
"""

import sys


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "trace":
        from repro.telemetry.cli import main as trace_main

        return trace_main(sys.argv[2:])
    if len(sys.argv) > 1 and sys.argv[1] == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(sys.argv[2:])
    from repro.harness.figures import main as figures_main

    return figures_main()


if __name__ == "__main__":
    raise SystemExit(main())
