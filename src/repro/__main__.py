"""Command-line entry point.

``python -m repro <figure>`` regenerates one paper figure (see
``python -m repro --list``); ``python -m repro trace <workload>`` runs a
traced workload and exports Chrome/Perfetto trace JSON plus a metrics
summary (see :mod:`repro.telemetry.cli`).
"""

import sys


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "trace":
        from repro.telemetry.cli import main as trace_main

        return trace_main(sys.argv[2:])
    from repro.harness.figures import main as figures_main

    return figures_main()


if __name__ == "__main__":
    raise SystemExit(main())
