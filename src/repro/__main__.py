"""Command-line entry point.

``python -m repro <figure>`` regenerates one paper figure (see
``python -m repro --list``); this is a thin alias for
:mod:`repro.harness.figures`.
"""

from repro.harness.figures import main

if __name__ == "__main__":
    raise SystemExit(main())
