"""QoS transfer scheduling for shared tier links.

The paper mandates demand-first priority over speculative prefetch (Section
4.3.2) but its async cascading flushes, prefetches and demand promotions all
multiplex the same PCIe/SSD/PFS links; without arbitration a burst of
cascade flushes (or a deep speculative-prefetch queue) starves the demand
restores the application is actually blocked on.  This package adds:

* :class:`~repro.sched.request.TransferClass` — the priority lattice
  (demand read > foreground write > hinted prefetch > cascade flush >
  speculative prefetch);
* :class:`~repro.sched.request.TransferRequest` — one transfer's class,
  WFQ flow (engine), deadline and cancellation channel;
* :class:`~repro.sched.scheduler.LinkScheduler` — the per-link arbiter:
  strict priority, weighted fair queuing across engines, EDF pacing of
  prefetch deadlines, per-engine token buckets, bounded queues with
  shed/block admission, and demand-read preemption of in-flight
  speculative prefetches;
* :class:`~repro.sched.scheduler.SchedContext` — the cluster-wide fleet of
  arbiters plus aggregate diagnostics.

Everything is gated by :class:`~repro.config.SchedConfig` (``enabled=False``
keeps the historical unarbitrated FIFO links).
"""

from repro.config import SchedConfig
from repro.sched.report import render_sched_timeline, sched_events
from repro.sched.request import (
    PREEMPTIBLE_CLASSES,
    THROTTLED_CLASSES,
    TransferClass,
    TransferRequest,
)
from repro.sched.scheduler import LinkScheduler, SchedContext

__all__ = [
    "SchedConfig",
    "TransferClass",
    "TransferRequest",
    "PREEMPTIBLE_CLASSES",
    "THROTTLED_CLASSES",
    "LinkScheduler",
    "SchedContext",
    "render_sched_timeline",
    "sched_events",
]
