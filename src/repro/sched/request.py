"""Transfer classification: the priority lattice and per-transfer requests.

Every byte that crosses a shared tier link belongs to one of five classes
(Section 4.3.2's demand-first rule, generalised into a full lattice):

======================  ====================================================
Class                   Traffic
======================  ====================================================
``DEMAND_READ``         a blocked ``restore`` promoting its checkpoint
``FOREGROUND_WRITE``    the copy a blocked ``checkpoint`` waits on
``HINTED_PREFETCH``     prefetch of a near-head hint (distance ≤ near)
``CASCADE_FLUSH``       asynchronous flush legs (D2H, H2F, F2P, replication)
``SPECULATIVE_PREFETCH``prefetch of a far-future hint; preemptible
======================  ====================================================

Lower enum value = higher priority.  A :class:`TransferRequest` tags one
transfer with its class, the issuing engine (the WFQ flow), an optional
deadline (derived from the hint's restore-queue distance) and a cancellation
event the scheduler fires to preempt speculative prefetches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional


class TransferClass(IntEnum):
    """Priority classes for shared-link arbitration (lower = more urgent)."""

    DEMAND_READ = 0
    FOREGROUND_WRITE = 1
    HINTED_PREFETCH = 2
    CASCADE_FLUSH = 3
    SPECULATIVE_PREFETCH = 4


#: Classes the scheduler may cancel mid-flight when a demand read arrives.
PREEMPTIBLE_CLASSES = frozenset({TransferClass.SPECULATIVE_PREFETCH})

#: Classes subject to per-engine token-bucket rate limits.  Foreground
#: traffic (a blocked application thread) is never throttled.
THROTTLED_CLASSES = frozenset(
    {
        TransferClass.HINTED_PREFETCH,
        TransferClass.CASCADE_FLUSH,
        TransferClass.SPECULATIVE_PREFETCH,
    }
)


@dataclass
class TransferRequest:
    """One transfer's scheduling identity, shared across its link hops.

    ``deadline`` is an absolute nominal timestamp (``clock.now()`` units) by
    which the bytes should have landed — prefetch requests derive it from
    their restore-queue distance; ``None`` means "no deadline" and sorts
    last within the class.  ``cancel_event`` doubles as the preemption
    channel: the scheduler sets it to abort a speculative prefetch, and
    callers with their own cancellation semantics (flush abandonment) pass
    the event they already own.
    """

    tclass: TransferClass
    engine_id: int = 0
    deadline: Optional[float] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: causal id of the operation this transfer serves (None unless
    #: ``AnalysisConfig.enabled``); the scheduler stamps it on the
    #: ``sched-wait`` span it emits for the transfer's first grant wait.
    op_id: Optional[str] = None

    @property
    def preemptible(self) -> bool:
        return self.tclass in PREEMPTIBLE_CLASSES

    @property
    def throttled(self) -> bool:
        return self.tclass in THROTTLED_CLASSES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tail = "" if self.deadline is None else f", deadline={self.deadline:.3f}"
        return f"TransferRequest({self.tclass.name}, engine {self.engine_id}{tail})"
