"""Text timelines of scheduler activity from the telemetry bus.

``python -m repro trace <workload> --sched`` uses this to turn the
``sched-*`` trace events (queue-depth samples, preemptions, sheds,
admission blocks — one track per arbitrated link) into a per-link
queue-depth/preemption timeline readable without Perfetto.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.telemetry.bus import TraceEvent

#: Event names emitted by :class:`~repro.sched.scheduler.LinkScheduler`.
SCHED_EVENTS = ("sched-queue", "sched-preempt", "sched-shed", "sched-admission-block")


def sched_events(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """The scheduler's events, in bus order."""
    return [ev for ev in events if ev.track.startswith("sched-")]


def render_sched_timeline(events: Iterable[TraceEvent], buckets: int = 40) -> str:
    """Per-link queue-depth and preemption timelines as fixed-width text.

    One block per arbitrated link: a sparkline of the maximum queue depth
    per time bucket (``.`` = empty, digits = depth, ``+`` = 10 or more)
    over the traced interval, annotated with preemption (``P``), shed
    (``S``) and admission-block (``B``) marks, plus totals.
    """
    per_link: Dict[str, List[TraceEvent]] = {}
    for ev in sched_events(events):
        per_link.setdefault(ev.track, []).append(ev)
    if not per_link:
        return "no scheduler events recorded (is SchedConfig.enabled on?)"
    t0 = min(ev.ts for evs in per_link.values() for ev in evs)
    t1 = max(ev.ts for evs in per_link.values() for ev in evs)
    span = max(t1 - t0, 1e-9)
    lines: List[str] = [
        f"transfer-scheduler timeline  ({t0:.3f}s .. {t1:.3f}s nominal, "
        f"{buckets} buckets of {span / buckets:.4f}s)"
    ]
    for track in sorted(per_link):
        evs = per_link[track]
        depth = [0] * buckets
        marks = [" "] * buckets
        totals = {"preempt": 0, "shed": 0, "block": 0}
        for ev in evs:
            b = min(buckets - 1, int((ev.ts - t0) / span * buckets))
            if ev.name == "sched-queue":
                depth[b] = max(depth[b], int(ev.args.get("depth", 0)))
            elif ev.name == "sched-preempt":
                totals["preempt"] += 1
                marks[b] = "P"
            elif ev.name == "sched-shed":
                totals["shed"] += 1
                if marks[b] == " ":
                    marks[b] = "S"
            elif ev.name == "sched-admission-block":
                totals["block"] += 1
                if marks[b] == " ":
                    marks[b] = "B"
        spark = "".join(
            "." if d == 0 else (str(d) if d < 10 else "+") for d in depth
        )
        lines.append(f"  {track[len('sched-'):]:28s} depth |{spark}|")
        if any(m != " " for m in marks):
            lines.append(f"  {'':28s} marks |{''.join(marks)}|")
        lines.append(
            f"  {'':28s}       "
            f"{totals['preempt']} preemptions, {totals['shed']} sheds, "
            f"{totals['block']} admission blocks"
        )
    return "\n".join(lines)
