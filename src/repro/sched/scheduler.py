"""Per-link QoS arbitration: priority, weighted fair queuing, admission.

One :class:`LinkScheduler` arbitrates one shared
:class:`~repro.simgpu.bandwidth.Link`.  A scheduled transfer is served in
*quanta* (at most ``SchedConfig.quantum_bytes`` per grant); between quanta
the link is re-arbitrated, so the lattice of
:class:`~repro.sched.request.TransferClass` is enforced at quantum
granularity:

* **strict priority across classes** — a demand read arriving behind ten
  queued cascade flushes is granted the very next quantum, bounding its
  head-of-line wait to one quantum instead of the whole backlog;
* **weighted fair queuing within a class** — concurrent engines sharing a
  link split its bandwidth in proportion to their ``SchedConfig`` weights
  (start-time fair queuing over per-flow virtual finish tags, with idle
  flows re-entering at the live virtual time so they cannot hoard credit);
* **EDF pacing inside the prefetch classes** — equal-vtime prefetches are
  ordered by the deadline derived from their restore-queue distance, so
  near-future hints land before far-future speculation;
* **token buckets** — optional per-engine rate limits on background
  traffic (prefetch + flush); a throttled flow is simply ineligible until
  its bucket refills, and the arbiter sleeps until the earliest refill when
  every waiter is throttled;
* **admission control** — SPECULATIVE_PREFETCH beyond its bounded queue is
  *shed* (:class:`~repro.errors.AdmissionError`; the prefetcher retries),
  CASCADE_FLUSH beyond its bound *blocks* in admission (backpressure that
  propagates up the cascade to ``checkpoint``);
* **preemption** — an arriving demand read fires the cancellation event of
  every active or queued speculative prefetch on the link, reclaiming the
  slot immediately (mid-quantum) instead of after the quantum completes.

The scheduler has its own mutex (never held across a sleep); it nests
inside :meth:`Link.transfer` and takes no engine monitor, so lock ordering
stays trivially acyclic.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.clock import VirtualClock
from repro.config import SchedConfig
from repro.errors import AdmissionError, TransferError
from repro.sched.request import TransferClass, TransferRequest
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.simgpu.bandwidth import Link

#: Missed-wakeup guard for grant waits (nominal seconds): every grant
#: release notifies the arbiter condition, so this only bounds the latency
#: of externally-fired cancellation events (flush abandonment).
_WAIT_GUARD = 0.25


class _TokenBucket:
    """Leaky token bucket on the virtual clock (scheduler mutex held)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def _refill(self, now: float) -> None:
        if now > self.stamp:
            self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now

    def try_take(self, nbytes: int, now: float) -> bool:
        self._refill(now)
        if self.tokens >= nbytes:
            self.tokens -= nbytes
            return True
        return False

    def eta(self, nbytes: int, now: float) -> float:
        """Nominal seconds until ``nbytes`` tokens are available."""
        self._refill(now)
        deficit = nbytes - self.tokens
        return 0.0 if deficit <= 0 else deficit / self.rate


class _Entry:
    """One transfer's seat in the arbiter (created by :meth:`open`)."""

    __slots__ = ("request", "nbytes", "seq", "flow", "waiting", "opened_at", "first_grant_wait")

    def __init__(self, request: TransferRequest, nbytes: int, seq: int, opened_at: float) -> None:
        self.request = request
        self.nbytes = nbytes
        self.seq = seq
        self.flow = (int(request.tclass), request.engine_id)
        self.waiting = False  # parked in acquire(), wanting the slot
        self.opened_at = opened_at
        self.first_grant_wait: Optional[float] = None


class LinkScheduler:
    """QoS arbiter for one shared link."""

    def __init__(
        self,
        link: "Link",
        config: SchedConfig,
        clock: VirtualClock,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.link = link
        self.config = config
        self.clock = clock
        self.telemetry = telemetry or Telemetry.disabled()
        self.quantum = max(1, config.quantum_bytes)
        self._cond = threading.Condition()
        self._entries: List[_Entry] = []  # every open transfer, arrival order
        self._current: Optional[_Entry] = None  # entry holding the slot
        self._seq = itertools.count()
        #: per-flow WFQ virtual finish tags and per-class virtual clocks.
        self._vft: Dict[Tuple[int, int], float] = {}
        self._class_vtime: Dict[int, float] = {}
        self._buckets: Dict[int, _TokenBucket] = {}
        # counters (scheduler mutex held for writes; reads are diagnostics)
        self.preemptions = 0
        self.sheds = 0
        self.admission_blocks = 0
        self.grants = 0
        self._track = f"sched-{link.name}"
        registry = self.telemetry.registry
        self._m_depth = registry.gauge(f"sched.{link.name}.depth")
        self._m_preempt = registry.counter("sched.preemptions")
        self._m_shed = registry.counter("sched.sheds")
        self._m_admission = registry.counter("sched.admission_blocks")
        self._m_wait = registry.histogram(f"sched.{link.name}.first_grant_wait_s")
        self._m_served = {
            cls: registry.counter(f"sched.class.{cls.name.lower()}.served")
            for cls in TransferClass
        }

    # -- lifecycle of one transfer ------------------------------------------
    def open(self, request: TransferRequest, nbytes: int) -> _Entry:
        """Admit a transfer; returns its arbiter entry.

        Raises :class:`AdmissionError` when a speculative prefetch finds its
        bounded queue full; blocks (backpressure) when a cascade flush does.
        Fires preemption when a demand read arrives over active speculation.
        """
        bus = self.telemetry.bus
        with self._cond:
            now = self.clock.now()
            if request.tclass is TransferClass.SPECULATIVE_PREFETCH:
                if self._class_count(request.tclass) >= self.config.max_speculative_queue:
                    self.sheds += 1
                    self._m_shed.inc()
                    if bus.enabled:
                        bus.instant(
                            "sched-shed", self._track,
                            engine=request.engine_id, cls=request.tclass.name,
                        )
                    raise AdmissionError(
                        f"speculative prefetch shed on link {self.link.name!r}: "
                        f"{self.config.max_speculative_queue} already queued"
                    )
            elif request.tclass is TransferClass.CASCADE_FLUSH:
                blocked_at = now
                first = True
                while self._class_count(request.tclass) >= self.config.max_flush_queue:
                    if request.cancel_event.is_set():
                        raise TransferError(
                            f"transfer on link {self.link.name!r} cancelled "
                            "while blocked in admission"
                        )
                    if first:
                        self.admission_blocks += 1
                        self._m_admission.inc()
                        first = False
                    self._cond.wait(self.clock.to_real(_WAIT_GUARD))
                if not first and bus.enabled:
                    bus.instant(
                        "sched-admission-block", self._track,
                        engine=request.engine_id,
                        blocked_s=self.clock.now() - blocked_at,
                    )
                now = self.clock.now()
            entry = _Entry(request, nbytes, next(self._seq), now)
            self._flow_enter(entry)
            self._entries.append(entry)
            self._m_depth.set(len(self._entries))
            if bus.enabled:
                bus.instant(
                    "sched-queue", self._track,
                    engine=request.engine_id, cls=request.tclass.name,
                    depth=len(self._entries),
                )
            if (
                request.tclass is TransferClass.DEMAND_READ
                and self.config.preempt_speculative
            ):
                self._preempt_speculative()
            self._cond.notify_all()
        return entry

    def acquire(self, entry: _Entry) -> None:
        """Block until ``entry`` is granted the link slot.

        Raises :class:`TransferError` when the entry's cancellation event
        fires while it waits — this is what makes a preempted (or abandoned)
        transfer abort with *zero* further progress.
        """
        cancel = entry.request.cancel_event
        with self._cond:
            entry.waiting = True
            try:
                while True:
                    if cancel.is_set():
                        raise TransferError(
                            f"transfer on link {self.link.name!r} cancelled while "
                            f"queued ({entry.request.tclass.name})"
                        )
                    if self._current is None and self._choose() is entry:
                        self._current = entry
                        entry.waiting = False
                        self.grants += 1
                        if entry.first_grant_wait is None:
                            entry.first_grant_wait = self.clock.now() - entry.opened_at
                            self._m_wait.observe(entry.first_grant_wait)
                            if (
                                entry.request.op_id is not None
                                and entry.first_grant_wait > 0
                            ):
                                # Causal refinement: the queueing share of a
                                # transfer that would otherwise all charge
                                # to its enclosing transfer span.
                                self.telemetry.bus.complete(
                                    "sched-wait",
                                    self._track,
                                    entry.opened_at,
                                    entry.first_grant_wait,
                                    op_id=entry.request.op_id,
                                    category="queue",
                                    cls=entry.request.tclass.name,
                                )
                        return
                    self._cond.wait(self.clock.to_real(self._wait_hint()))
            except BaseException:
                entry.waiting = False
                raise

    def release(self, entry: _Entry, span_bytes: int) -> None:
        """Return the slot after serving ``span_bytes`` of ``entry``."""
        with self._cond:
            if self._current is entry:
                self._current = None
            if span_bytes > 0:
                self._charge(entry, span_bytes)
                if entry.request.throttled:
                    bucket = self._bucket(entry.request.engine_id, self.clock.now())
                    if bucket is not None:
                        # Eligibility guaranteed tokens >= min(quantum,
                        # nbytes) >= span, so this never overdraws.
                        bucket.tokens -= span_bytes
            self._cond.notify_all()

    def finish(self, entry: _Entry) -> None:
        """Deregister a transfer (normal completion or abort)."""
        with self._cond:
            if self._current is entry:
                self._current = None
            try:
                self._entries.remove(entry)
            except ValueError:
                pass
            self._m_served[entry.request.tclass].inc()
            self._m_depth.set(len(self._entries))
            self._cond.notify_all()

    # -- arbitration (condition held) ---------------------------------------
    def _class_count(self, tclass: TransferClass) -> int:
        return sum(1 for e in self._entries if e.request.tclass is tclass)

    def _flow_enter(self, entry: _Entry) -> None:
        """Start-tag catch-up: an idle flow re-enters at the class's live
        virtual time instead of the stale tag it finished with, so idling
        earns no credit and a returning flow cannot starve the others."""
        flow = entry.flow
        cls = flow[0]
        active = [
            self._vft.get(e.flow, 0.0)
            for e in self._entries
            if e.flow[0] == cls and e.flow != flow
        ]
        floor = min(active) if active else self._class_vtime.get(cls, 0.0)
        self._vft[flow] = max(self._vft.get(flow, 0.0), floor)

    def _charge(self, entry: _Entry, span_bytes: int) -> None:
        flow = entry.flow
        weight = self.config.weight_of(entry.request.engine_id)
        vft = self._vft.get(flow, 0.0) + span_bytes / weight
        self._vft[flow] = vft
        cls = flow[0]
        self._class_vtime[cls] = max(self._class_vtime.get(cls, 0.0), vft)

    def _eligible(self, entry: _Entry, now: float) -> bool:
        if not entry.waiting or entry.request.cancel_event.is_set():
            return False
        if entry.request.throttled:
            bucket = self._bucket(entry.request.engine_id, now)
            if bucket is not None:
                bucket._refill(now)
                if bucket.tokens < min(self.quantum, entry.nbytes):
                    return False
        return True

    def _choose(self) -> Optional[_Entry]:
        """The entry the next quantum belongs to (None = all throttled/idle).

        Pure selection — every parked waiter re-runs it on wake-up, so it
        must not mutate arbiter state; the winner's token bucket is charged
        with the *actual* span in :meth:`release`.
        """
        now = self.clock.now()
        best: Optional[_Entry] = None
        best_key: Optional[tuple] = None
        for entry in self._entries:
            if not self._eligible(entry, now):
                continue
            req = entry.request
            deadline = req.deadline if req.deadline is not None else float("inf")
            key = (int(req.tclass), self._vft.get(entry.flow, 0.0), deadline, entry.seq)
            if best_key is None or key < best_key:
                best, best_key = entry, key
        return best

    def _wait_hint(self) -> float:
        """Nominal seconds to park a waiter: until the earliest token refill
        when everything eligible is throttled, else the missed-wakeup guard."""
        if self.config.engine_rate_limit is None:
            return _WAIT_GUARD
        now = self.clock.now()
        etas = [
            self._bucket(e.request.engine_id, now).eta(min(self.quantum, e.nbytes), now)
            for e in self._entries
            if e.waiting and e.request.throttled and not e.request.cancel_event.is_set()
        ]
        etas = [eta for eta in etas if eta > 0]
        if not etas:
            return _WAIT_GUARD
        return min(min(etas), _WAIT_GUARD)

    def _bucket(self, engine_id: int, now: float) -> Optional[_TokenBucket]:
        rate = self.config.engine_rate_limit
        if rate is None:
            return None
        bucket = self._buckets.get(engine_id)
        if bucket is None:
            bucket = _TokenBucket(rate, self.config.burst_bytes, now)
            self._buckets[engine_id] = bucket
        return bucket

    def _preempt_speculative(self) -> None:
        bus = self.telemetry.bus
        for entry in self._entries:
            req = entry.request
            if req.preemptible and not req.cancel_event.is_set():
                req.cancel_event.set()
                self.preemptions += 1
                self._m_preempt.inc()
                if bus.enabled:
                    bus.instant(
                        "sched-preempt", self._track,
                        engine=req.engine_id, cls=req.tclass.name,
                        in_flight=self._current is entry,
                    )

    # -- diagnostics ---------------------------------------------------------
    def depth(self) -> int:
        with self._cond:
            return len(self._entries)

    def snapshot(self) -> dict:
        """Queue state for stall diagnostics and the ``--sched`` dump."""
        with self._cond:
            per_class: Dict[str, int] = {}
            for entry in self._entries:
                name = entry.request.tclass.name
                per_class[name] = per_class.get(name, 0) + 1
            current = None
            if self._current is not None:
                current = {
                    "class": self._current.request.tclass.name,
                    "engine": self._current.request.engine_id,
                    "bytes": self._current.nbytes,
                }
            return {
                "link": self.link.name,
                "depth": len(self._entries),
                "by_class": per_class,
                "in_flight": current,
                "grants": self.grants,
                "preemptions": self.preemptions,
                "sheds": self.sheds,
                "admission_blocks": self.admission_blocks,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinkScheduler({self.link.name!r}, depth={self.depth()})"


class SchedContext:
    """One simulation's scheduler fleet: attaches arbiters to shared links
    and aggregates their diagnostics.  With ``config.enabled=False`` it
    attaches nothing and every link keeps its FIFO behaviour."""

    def __init__(
        self,
        config: SchedConfig,
        clock: VirtualClock,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.telemetry = telemetry or Telemetry.disabled()
        self._schedulers: List[LinkScheduler] = []
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def attach(self, link: "Link") -> None:
        """Arbitrate ``link`` (no-op when scheduling is disabled)."""
        if not self.config.enabled or link.scheduler is not None:
            return
        scheduler = LinkScheduler(link, self.config, self.clock, self.telemetry)
        link.scheduler = scheduler
        with self._lock:
            self._schedulers.append(scheduler)

    def schedulers(self) -> List[LinkScheduler]:
        with self._lock:
            return list(self._schedulers)

    def snapshot(self) -> List[dict]:
        """Per-link queue snapshots (for diagnostics; empty when disabled)."""
        return [s.snapshot() for s in self.schedulers()]
