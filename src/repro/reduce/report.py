"""Text report of reduction activity from the telemetry bus.

``python -m repro trace <workload> --reduce`` uses this to turn the
``reduce-encode`` trace events (one per checkpoint, per rank) into a
per-checkpoint logical-vs-physical table with dedup hit rates and delta
chain depths, readable without Perfetto.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.telemetry.bus import TraceEvent
from repro.util.units import format_size


def reduce_events(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """The reducers' encode events, in bus order."""
    return [ev for ev in events if ev.name == "reduce-encode"]


def render_reduce_report(events: Iterable[TraceEvent], per_ckpt_limit: int = 24) -> str:
    """Per-rank reduction tables + totals as fixed-width text.

    One block per rank: up to ``per_ckpt_limit`` per-checkpoint rows
    (checkpoint id, logical and physical nominal bytes, reduction ratio,
    new/dup/delta chunk counts, delta-chain depth), then the rank's totals
    and dedup hit rate.
    """
    per_track: Dict[str, List[TraceEvent]] = {}
    for ev in reduce_events(events):
        per_track.setdefault(ev.track, []).append(ev)
    if not per_track:
        return "no reduction events recorded (is ReduceConfig.enabled on?)"
    lines: List[str] = ["data-reduction report"]
    grand_logical = grand_physical = 0
    for track in sorted(per_track):
        evs = per_track[track]
        lines.append(f"  {track} ({len(evs)} checkpoints)")
        lines.append(
            "    ckpt   logical    physical   ratio  new  dup  delta  depth"
        )
        for ev in evs[:per_ckpt_limit]:
            a = ev.args
            ratio = a["physical"] / a["logical"]
            lines.append(
                f"    {a['ckpt']:>4} {format_size(a['logical']):>9} "
                f"{format_size(a['physical']):>10}  {ratio:5.2f} "
                f"{a['new']:>4} {a['dup']:>4} {a['delta']:>6}  {a['depth']:>4}"
                + ("  R" if a.get("rebased") else "")
            )
        if len(evs) > per_ckpt_limit:
            lines.append(f"    ... {len(evs) - per_ckpt_limit} more")
        logical = sum(ev.args["logical"] for ev in evs)
        physical = sum(ev.args["physical"] for ev in evs)
        chunks = sum(ev.args["new"] + ev.args["dup"] + ev.args["delta"] for ev in evs)
        dups = sum(ev.args["dup"] for ev in evs)
        max_depth = max(ev.args["depth"] for ev in evs)
        grand_logical += logical
        grand_physical += physical
        lines.append(
            f"    total {format_size(logical)} -> {format_size(physical)} "
            f"({1.0 - physical / logical:.1%} saved), "
            f"dedup hit rate {dups / max(1, chunks):.1%}, "
            f"max chain depth {max_depth}"
        )
    if len(per_track) > 1:
        lines.append(
            f"  all ranks: {format_size(grand_logical)} -> "
            f"{format_size(grand_physical)} "
            f"({1.0 - grand_physical / max(1, grand_logical):.1%} saved)"
        )
    return "\n".join(lines)
