"""Chunk boundary selection: fixed-size and content-defined (gear hash).

Chunkers operate on *payload* bytes (the scaled backing store) but report
spans in both payload and nominal units, so the accounting upstream stays
in the paper's nominal sizes.  Content-defined chunking uses a gear rolling
hash (FastCDC's core idea): boundaries follow the content, so an insertion
shifts at most one chunk's identity instead of every downstream chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import ReduceConfig, ScaleModel


@dataclass(frozen=True)
class ChunkSpan:
    """One chunk's location within a payload."""

    offset: int  # payload bytes
    length: int  # payload bytes
    nominal_size: int  # length expressed in nominal bytes


def _payload_units(nominal: int, scale: ScaleModel) -> int:
    """A nominal span in payload bytes, floored at one byte."""
    return max(1, nominal // scale.data_scale)


def fixed_spans(payload_len: int, cfg: ReduceConfig, scale: ScaleModel) -> List[ChunkSpan]:
    """Fixed-size boundaries every ``cfg.chunk_size`` nominal bytes."""
    step = _payload_units(cfg.chunk_size, scale)
    spans = []
    for offset in range(0, payload_len, step):
        length = min(step, payload_len - offset)
        spans.append(ChunkSpan(offset, length, length * scale.data_scale))
    return spans


#: 256-entry gear table, fixed seed: chunk identities must be stable across
#: runs and processes.
_GEAR = np.random.default_rng(0x5EED_CDC).integers(
    0, 1 << 62, size=256, dtype=np.int64
)


def cdc_spans(
    payload: np.ndarray, cfg: ReduceConfig, scale: ScaleModel
) -> List[ChunkSpan]:
    """Content-defined boundaries via a gear rolling hash.

    A boundary is declared when the rolling hash's low bits vanish
    (probability ~1/avg), never before ``min_chunk_size`` and always by
    ``max_chunk_size`` (all in nominal units, translated to payload bytes).
    """
    n = int(payload.size)
    min_len = _payload_units(cfg.min_chunk_size, scale)
    avg_len = _payload_units(cfg.chunk_size, scale)
    max_len = _payload_units(cfg.max_chunk_size, scale)
    # Mask with ~log2(avg) low bits set → expected chunk length ≈ avg.
    mask = (1 << max(1, int(avg_len).bit_length() - 1)) - 1
    gear = _GEAR
    spans: List[ChunkSpan] = []
    start = 0
    h = np.int64(0)
    i = start
    while i < n:
        h = np.int64((int(h) << 1) & ((1 << 62) - 1)) + gear[int(payload[i])]
        i += 1
        length = i - start
        if (length >= min_len and (int(h) & mask) == 0) or length >= max_len:
            spans.append(ChunkSpan(start, length, length * scale.data_scale))
            start = i
            h = np.int64(0)
    if start < n:
        length = n - start
        spans.append(ChunkSpan(start, length, length * scale.data_scale))
    return spans


def chunk_payload(
    payload: np.ndarray, cfg: ReduceConfig, scale: ScaleModel
) -> List[ChunkSpan]:
    """Spans covering ``payload`` completely, per the configured strategy."""
    if cfg.chunking == "cdc":
        return cdc_spans(payload, cfg, scale)
    return fixed_spans(int(payload.size), cfg, scale)
