"""The per-engine reduction pipeline (chunk → dedup → delta → compress).

One :class:`Reducer` per engine sits between the write path and the tier
links.  ``encode`` turns a checkpoint's logical payload into a
:class:`ReducedImage`: the chunk recipe, each chunk classified as *new*
(first sighting), *dup* (content-addressed hit against any live image) or
*delta* (small byte diff against the previous checkpoint's same-position
chunk), plus the resulting **physical** size after the modeled codec.  The
physical size is what flows into cache placement, eviction scoring and
link transfer durations; ``reconstruct`` rebuilds the full logical payload
(chunk reassembly, modeled delta apply + decode charge) before a restore
completes.

Representation rule: every tier at or below the reduction *site* holds the
physical form (extents and store blobs are zero-filled placeholders of
``record.physical_size``; the real bytes live in the image's chunks), while
tiers above the site hold the untouched logical payload.  Delta encoding is
*modeled* — each image keeps its own chunk bytes, so reconstruction never
chases a base image — but the chain bookkeeping is real: depth is bounded
by ``max_delta_chain`` via automatic rebasing, and the decode charge grows
with depth.

Locking: the reducer has its own lock, always acquired *after* the engine
monitor (the eviction hook runs monitor-held) and never the other way
around; virtual-clock sleeps happen outside it.
"""

from __future__ import annotations

import hashlib
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from repro.clock import VirtualClock
from repro.config import ReduceConfig, ScaleModel
from repro.errors import IntegrityError
from repro.reduce.chunking import chunk_payload
from repro.reduce.chunkstore import ChunkRegistry, ChunkStore
from repro.reduce.codec import CodecModel, get_codec
from repro.telemetry import Telemetry
from repro.tiers.base import TierLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import CheckpointRecord


@dataclass(frozen=True)
class ImageChunk:
    """One chunk of a reduced checkpoint."""

    digest: bytes
    nominal_size: int
    #: this image's own read-only copy of the chunk's logical bytes.
    payload: np.ndarray
    #: "new" (stored in full), "dup" (content-addressed hit, ~0 new bytes),
    #: or "delta" (stored as a diff against the base image's chunk).
    kind: str
    #: nominal bytes the stored representation charges (0 for dups).
    stored_nominal: int


@dataclass
class ReducedImage:
    """A checkpoint's chunk recipe + delta lineage."""

    ckpt_id: int
    chunks: Tuple[ImageChunk, ...]
    logical_size: int
    physical_size: int
    #: delta-chain depth: 0 = self-contained, k = k delta hops to a base.
    depth: int
    base_ckpt: Optional[int]
    site_level: TierLevel
    #: tiers currently holding this image's physical form (refcounted in
    #: the per-tier chunk stores); mutated only under the reducer lock.
    attached: Set[TierLevel] = field(default_factory=set)

    @property
    def new_chunks(self) -> int:
        return sum(1 for c in self.chunks if c.kind == "new")

    @property
    def dup_chunks(self) -> int:
        return sum(1 for c in self.chunks if c.kind == "dup")

    @property
    def delta_chunks(self) -> int:
        return sum(1 for c in self.chunks if c.kind == "delta")


class Reducer:
    """Data-reduction pipeline of one engine."""

    def __init__(
        self,
        config: ReduceConfig,
        scale: ScaleModel,
        clock: VirtualClock,
        telemetry: Optional[Telemetry] = None,
        process_id: int = 0,
        gpudirect: bool = False,
        recipes=None,
    ) -> None:
        self.config = config
        self.scale = scale
        self.clock = clock
        self.process_id = process_id
        #: GPUDirect bypasses the host tier entirely, so a host-site
        #: boundary has nowhere to encode; force the device-side variant.
        self.site = "gpu" if gpudirect else config.site
        self.site_level = TierLevel.GPU if self.site == "gpu" else TierLevel.HOST
        self.codec: CodecModel = get_codec(config.codec)
        self.registry = ChunkRegistry()
        self.stores: Dict[TierLevel, ChunkStore] = {
            level: ChunkStore(level) for level in TierLevel
        }
        self._lock = threading.RLock()
        self._last_image: Optional[ReducedImage] = None
        #: chain head before the most recent encode (for ``abort``).
        self._prev_image: Optional[ReducedImage] = None
        #: durable chunk-recipe sidecar (``repro.faults.journal.RecipeStore``)
        #: or None; when set, every encoded recipe is persisted so reduced
        #: checkpoints survive a crash and ``recover_history()`` can rebuild
        #: them.
        self.recipes = recipes
        # Per-reducer tallies (the registry counters below are shared across
        # the cluster's engines; ``stats`` must stay per-engine).
        self.rebases = 0
        self.encodes = 0
        self.logical_bytes = 0
        self.physical_bytes = 0
        self.chunk_counts = {"new": 0, "dup": 0, "delta": 0}
        self.telemetry = telemetry or Telemetry.disabled()
        self._track = f"p{process_id}-reduce"
        registry = self.telemetry.registry
        self._m_logical = registry.counter("reduce.logical_bytes")
        self._m_physical = registry.counter("reduce.physical_bytes")
        self._m_new = registry.counter("reduce.chunks.new")
        self._m_dup = registry.counter("reduce.chunks.dup")
        self._m_delta = registry.counter("reduce.chunks.delta")
        self._m_rebases = registry.counter("reduce.rebases")
        self._m_encode_s = registry.histogram("reduce.encode_s")
        self._m_decode_s = registry.histogram("reduce.decode_s")
        #: observability satellites: the headline reduction ratios as live
        #: gauges (recomputed after every encode from the shared counters)
        #: plus the delta-chain depth distribution.
        self._m_dedup_rate = registry.gauge("reduce.dedup_hit_rate")
        self._m_ratio = registry.gauge("reduce.compression_ratio")
        self._m_chain_depth = registry.histogram("reduce.delta_chain_depth")

    # -- encode ------------------------------------------------------------
    def covers(self, level: TierLevel) -> bool:
        """Whether ``level`` holds the physical (reduced) form."""
        return level >= self.site_level

    def encode(self, record: "CheckpointRecord", payload: np.ndarray) -> float:
        """Reduce a checkpoint's logical payload; monitor NOT held.

        Sets ``record.physical_size`` / ``record.reduction`` and charges the
        modeled encode cost on the virtual clock (returned in nominal
        seconds).  Must run before any reservation at or below the site
        tier, so the physical size is what gets placed.
        """
        cfg = self.config
        scale = self.scale
        spans = chunk_payload(payload, cfg, scale)
        pieces = []
        for span in spans:
            data = np.ascontiguousarray(payload[span.offset : span.offset + span.length])
            digest = hashlib.blake2b(data, digest_size=16).digest()
            pieces.append((span, digest, data))
        with self._lock:
            base = self._last_image
            delta_allowed = cfg.delta and base is not None
            rebased = False
            if delta_allowed and base.depth + 1 > cfg.max_delta_chain:
                # Chain at the bound: store self-contained, reset depth.
                delta_allowed = False
                rebased = True
            chunks: List[ImageChunk] = []
            seen_here: Set[bytes] = set()
            used_delta = False
            fresh_nominal = 0
            for index, (span, digest, data) in enumerate(pieces):
                frozen = data.copy()
                frozen.flags.writeable = False
                if digest in seen_here or self.registry.is_live(digest):
                    chunks.append(
                        ImageChunk(digest, span.nominal_size, frozen, "dup", 0)
                    )
                    continue
                seen_here.add(digest)
                kind, stored = "new", span.nominal_size
                if delta_allowed and index < len(base.chunks):
                    base_chunk = base.chunks[index]
                    if base_chunk.payload.size == frozen.size:
                        diff = int(np.count_nonzero(base_chunk.payload != frozen))
                        diff_nominal = diff * scale.data_scale
                        if diff_nominal < cfg.delta_threshold * span.nominal_size:
                            # Offset/value pairs: ~2 nominal bytes per
                            # differing byte, never worse than the full chunk.
                            kind = "delta"
                            stored = min(2 * diff_nominal, span.nominal_size)
                            used_delta = True
                chunks.append(ImageChunk(digest, span.nominal_size, frozen, kind, stored))
                fresh_nominal += stored
            depth = base.depth + 1 if (used_delta and base is not None) else 0
            compressed = math.ceil(fresh_nominal * self.codec.ratio)
            physical = min(
                record.nominal_size,
                scale.align(compressed + cfg.recipe_overhead * len(chunks)),
            )
            image = ReducedImage(
                ckpt_id=record.ckpt_id,
                chunks=tuple(chunks),
                logical_size=record.nominal_size,
                physical_size=physical,
                depth=depth,
                base_ckpt=base.ckpt_id if used_delta else None,
                site_level=self.site_level,
            )
            self._prev_image = self._last_image
            self._last_image = image
            self.encodes += 1
            self.logical_bytes += record.nominal_size
            self.physical_bytes += physical
            self.chunk_counts["new"] += image.new_chunks
            self.chunk_counts["dup"] += image.dup_chunks
            self.chunk_counts["delta"] += image.delta_chunks
            if rebased:
                self.rebases += 1
                self._m_rebases.inc()
        # Publish order matters: readers gate on ``reduction``; the size
        # must already be physical when they first see it.
        record.physical_size = physical
        record.reduction = image
        if self.recipes is not None:
            # Durable sidecar write (metadata, uncharged): the recipe must
            # be on disk before any blob of this checkpoint becomes durable,
            # so a crash never leaves a recoverable blob without its recipe.
            self.recipes.save(self.process_id, image)
        self._m_logical.inc(record.nominal_size)
        self._m_physical.inc(physical)
        self._m_new.inc(image.new_chunks)
        self._m_dup.inc(image.dup_chunks)
        self._m_delta.inc(image.delta_chunks)
        total_chunks = self._m_new.value + self._m_dup.value + self._m_delta.value
        if total_chunks:
            self._m_dedup_rate.set(self._m_dup.value / total_chunks)
        if self._m_logical.value:
            self._m_ratio.set(self._m_physical.value / self._m_logical.value)
        self._m_chain_depth.observe(float(depth))
        seconds = record.nominal_size / self.codec.encode_bandwidth(self.site)
        self._m_encode_s.observe(seconds)
        self.telemetry.bus.instant(
            "reduce-encode",
            self._track,
            ckpt=record.ckpt_id,
            logical=record.nominal_size,
            physical=physical,
            new=image.new_chunks,
            dup=image.dup_chunks,
            delta=image.delta_chunks,
            depth=depth,
            rebased=rebased,
        )
        self.clock.sleep(seconds)
        return seconds

    def abort(self, record: "CheckpointRecord") -> None:
        """Roll back a just-encoded checkpoint (write-path exception safety).

        Rewinds the delta-chain head when this record's image is still the
        base, drops its persisted recipe, and clears the record's reduction
        so the catalog rollback leaves no dangling chunk references (the
        validator's chain-head invariant).
        """
        image = record.reduction
        if image is None:
            return
        with self._lock:
            if self._last_image is image:
                self._last_image = self._prev_image
        if self.recipes is not None:
            self.recipes.discard(self.process_id, record.ckpt_id)
        record.reduction = None
        record.physical_size = record.nominal_size

    # -- reconstruction ----------------------------------------------------
    def reconstruct(
        self, record: "CheckpointRecord", source_level: TierLevel
    ) -> Tuple[np.ndarray, float]:
        """Rebuild the full logical payload from ``source_level``'s copy.

        Returns ``(payload, nominal_seconds)``; the decode charge (chunk
        reassembly + delta apply + decompression, scaled by the chain-depth
        penalty) has already been slept on the virtual clock.
        """
        image: Optional[ReducedImage] = record.reduction
        if image is None:
            raise IntegrityError(
                f"checkpoint {record.ckpt_id} has no reduction image"
            )
        with self._lock:
            store = self.stores[source_level]
            if source_level in image.attached:
                for chunk in image.chunks:
                    if not store.contains(chunk.digest):
                        raise IntegrityError(
                            f"checkpoint {record.ckpt_id}: chunk "
                            f"{chunk.digest.hex()} unreferenced on "
                            f"{source_level.name} during reconstruction"
                        )
            parts = [chunk.payload for chunk in image.chunks]
        payload = parts[0] if len(parts) == 1 else np.concatenate(parts)
        seconds = (
            image.logical_size
            / self.codec.decode_bandwidth(self.site)
            * (1.0 + image.depth * self.config.chain_penalty)
        )
        self._m_decode_s.observe(seconds)
        self.clock.sleep(seconds)
        return payload, seconds

    def physical_payload(self, record: "CheckpointRecord") -> np.ndarray:
        """The zero-filled placeholder stored wherever the physical form
        lives (extents/blobs model capacity; the bytes live in the image)."""
        return np.zeros(
            self.scale.payload_bytes(record.physical_size), dtype=np.uint8
        )

    # -- residency accounting ---------------------------------------------
    def attach(self, record: "CheckpointRecord", level: TierLevel) -> None:
        """Record that ``level`` now holds this checkpoint's physical form.

        Idempotent; called after the copy has fully landed (so failure
        paths that release a reservation never need a matching detach).
        """
        image: Optional[ReducedImage] = record.reduction
        if image is None:
            return
        with self._lock:
            if level in image.attached:
                return
            image.attached.add(level)
            store = self.stores[level]
            for chunk in image.chunks:
                store.add(chunk.digest, chunk.nominal_size)
                self.registry.add(chunk.digest, chunk.nominal_size)

    def detach(self, record: "CheckpointRecord", level: TierLevel) -> None:
        """Inverse of :meth:`attach`; no-op when the tier was never attached
        (eviction and release paths call this unconditionally)."""
        image: Optional[ReducedImage] = record.reduction
        if image is None:
            return
        with self._lock:
            if level not in image.attached:
                return
            image.attached.discard(level)
            store = self.stores[level]
            for chunk in image.chunks:
                store.release(chunk.digest)
                self.registry.release(chunk.digest)

    # -- stats -------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            held = {
                level.name.lower(): store.held_bytes
                for level, store in self.stores.items()
                if store.refs
            }
            return {
                "encodes": self.encodes,
                "rebases": self.rebases,
                "logical_bytes": self.logical_bytes,
                "physical_bytes": self.physical_bytes,
                "dup_chunks": self.chunk_counts["dup"],
                "new_chunks": self.chunk_counts["new"],
                "delta_chunks": self.chunk_counts["delta"],
                "held_bytes": held,
            }
