"""Modeled compression codecs.

No real compressor runs: payload bytes at bench scale are a few hundred
bytes of pseudo-random data and would not compress anyway.  Instead each
codec contributes a *ratio* (compressed/original, applied to the bytes that
survive dedup and delta encoding) and encode/decode throughputs charged on
the virtual clock, with separate GPU-side and host-side rates — GPU
compressors (nvCOMP-class) run an order of magnitude faster than single
host cores, which is what makes the ``site="gpu"`` variant viable on the
checkpoint critical path.

Ratios and throughputs are calibrated to published LZ4 / Zstd numbers on
HPC floating-point checkpoints (cf. the VELOC lineage's use of both).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util.units import GiB


@dataclass(frozen=True)
class CodecModel:
    """One codec's modeled ratio and nominal-bytes-per-second throughputs."""

    name: str
    #: compressed/original size ratio applied to non-deduplicated bytes.
    ratio: float
    gpu_encode_bandwidth: float
    gpu_decode_bandwidth: float
    host_encode_bandwidth: float
    host_decode_bandwidth: float

    def encode_bandwidth(self, site: str) -> float:
        return self.gpu_encode_bandwidth if site == "gpu" else self.host_encode_bandwidth

    def decode_bandwidth(self, site: str) -> float:
        return self.gpu_decode_bandwidth if site == "gpu" else self.host_decode_bandwidth


_CODECS = {
    # "none" still pays a memcpy-speed pass (chunk hashing + recipe build).
    "none": CodecModel(
        name="none",
        ratio=1.0,
        gpu_encode_bandwidth=400.0 * GiB,
        gpu_decode_bandwidth=400.0 * GiB,
        host_encode_bandwidth=12.0 * GiB,
        host_decode_bandwidth=12.0 * GiB,
    ),
    # LZ4-class: fast, modest ratio.
    "lz": CodecModel(
        name="lz",
        ratio=0.62,
        gpu_encode_bandwidth=60.0 * GiB,
        gpu_decode_bandwidth=90.0 * GiB,
        host_encode_bandwidth=0.75 * GiB,
        host_decode_bandwidth=3.0 * GiB,
    ),
    # Zstd-class: denser, slower (especially host-side encode).
    "zstd": CodecModel(
        name="zstd",
        ratio=0.45,
        gpu_encode_bandwidth=25.0 * GiB,
        gpu_decode_bandwidth=50.0 * GiB,
        host_encode_bandwidth=0.35 * GiB,
        host_decode_bandwidth=1.2 * GiB,
    ),
}


def known_codecs():
    """Names accepted by :class:`~repro.config.ReduceConfig.codec`."""
    return frozenset(_CODECS)


def get_codec(name: str) -> CodecModel:
    try:
        return _CODECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown codec {name!r}; expected one of {sorted(_CODECS)}"
        ) from None
