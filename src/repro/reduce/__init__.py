"""Data reduction between the engines and the tier links.

Adjacent RTM wavefield snapshots are highly similar, yet the baseline
runtime moves every checkpoint through GPU→host→SSD→PFS at full logical
size.  This package adds the reduction layer the VELOC lineage identifies
as the next multiplier on effective flush bandwidth:

* :mod:`~repro.reduce.chunking` — fixed-size or content-defined (gear
  rolling hash) chunk boundaries;
* :mod:`~repro.reduce.chunkstore` — per-tier content-addressed chunk
  stores with refcounted sharing across checkpoint versions, plus the
  engine-wide liveness registry that dedup decisions consult;
* :mod:`~repro.reduce.codec` — modeled compression codecs (ratio +
  GPU-/host-side throughputs charged on the virtual clock);
* :mod:`~repro.reduce.pipeline` — the :class:`Reducer`: encode (chunk →
  dedup → delta → compress, bounded delta chains with automatic rebasing)
  and reconstruct (chunk reassembly + delta apply before READ_COMPLETE);
* :mod:`~repro.reduce.report` — the ``--reduce`` CLI report.

Everything is gated by :class:`~repro.config.ReduceConfig`
(``enabled=False`` keeps the historical full-size data path bit-for-bit).
"""

from repro.config import ReduceConfig
from repro.reduce.chunking import ChunkSpan, chunk_payload
from repro.reduce.chunkstore import ChunkAccountingError, ChunkRegistry, ChunkStore
from repro.reduce.codec import CodecModel, get_codec, known_codecs
from repro.reduce.pipeline import ImageChunk, ReducedImage, Reducer
from repro.reduce.report import reduce_events, render_reduce_report

__all__ = [
    "ReduceConfig",
    "Reducer",
    "ReducedImage",
    "ImageChunk",
    "ChunkSpan",
    "chunk_payload",
    "ChunkStore",
    "ChunkRegistry",
    "ChunkAccountingError",
    "CodecModel",
    "get_codec",
    "known_codecs",
    "reduce_events",
    "render_reduce_report",
]
