"""Content-addressed chunk accounting: per-tier stores + a global registry.

The reducer keeps each checkpoint's chunk *bytes* inside its
:class:`~repro.reduce.pipeline.ReducedImage` (reconstruction never depends
on another record staying alive); these structures track *where* chunks
live and how often they are shared, which is what dedup accounting, the
eviction-coupled release path, and the validator's refcount invariants
need.  All mutation happens under the reducer's lock.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import ReproError
from repro.tiers.base import TierLevel


class ChunkAccountingError(ReproError):
    """A chunk refcount went negative or a release missed its put."""


class ChunkStore:
    """Refcounted chunk residency for one tier."""

    def __init__(self, level: TierLevel) -> None:
        self.level = level
        #: chunk hash → number of live references from attached images.
        self.refs: Dict[bytes, int] = {}
        #: chunk hash → nominal size (for held-bytes accounting).
        self.sizes: Dict[bytes, int] = {}
        #: nominal bytes of unique chunks resident on this tier.
        self.held_bytes = 0

    def add(self, digest: bytes, nominal_size: int) -> bool:
        """Add one reference; returns True when the chunk is new here."""
        count = self.refs.get(digest, 0)
        self.refs[digest] = count + 1
        if count == 0:
            self.sizes[digest] = nominal_size
            self.held_bytes += nominal_size
            return True
        return False

    def release(self, digest: bytes) -> bool:
        """Drop one reference; returns True when the chunk left the tier."""
        count = self.refs.get(digest, 0)
        if count <= 0:
            raise ChunkAccountingError(
                f"release of unreferenced chunk {digest.hex()} on {self.level.name}"
            )
        if count == 1:
            del self.refs[digest]
            self.held_bytes -= self.sizes.pop(digest)
            return True
        self.refs[digest] = count - 1
        return False

    def contains(self, digest: bytes) -> bool:
        return digest in self.refs

    def check(self) -> None:
        """Internal consistency: held_bytes matches the unique-chunk sizes."""
        if self.held_bytes != sum(self.sizes.values()):
            raise ChunkAccountingError(
                f"{self.level.name}: held_bytes {self.held_bytes} != "
                f"sum of chunk sizes {sum(self.sizes.values())}"
            )
        if set(self.refs) != set(self.sizes) or any(
            c <= 0 for c in self.refs.values()
        ):
            raise ChunkAccountingError(
                f"{self.level.name}: refs/sizes maps out of sync"
            )


class ChunkRegistry:
    """Engine-wide chunk liveness: total references across every tier.

    Dedup decisions consult this at encode time — a chunk is a duplicate
    when any live image anywhere still references it (the new image then
    contributes ~no new physical bytes for it).  An entry with zero total
    references is an *orphan* and must not exist (validator invariant).
    """

    def __init__(self) -> None:
        self.total_refs: Dict[bytes, int] = {}
        self.sizes: Dict[bytes, int] = {}

    def add(self, digest: bytes, nominal_size: int) -> None:
        self.total_refs[digest] = self.total_refs.get(digest, 0) + 1
        self.sizes.setdefault(digest, nominal_size)

    def release(self, digest: bytes) -> None:
        count = self.total_refs.get(digest, 0)
        if count <= 0:
            raise ChunkAccountingError(
                f"registry release of unreferenced chunk {digest.hex()}"
            )
        if count == 1:
            del self.total_refs[digest]
            del self.sizes[digest]
        else:
            self.total_refs[digest] = count - 1

    def is_live(self, digest: bytes) -> bool:
        return self.total_refs.get(digest, 0) > 0

    def orphans(self) -> Iterable[bytes]:
        return [d for d, c in self.total_refs.items() if c <= 0]
