#!/usr/bin/env python
"""Coupled workflow: producer checkpoints consumed by priority.

The paper's producer–consumer motivation (Section 1): a simulation emits
intermediate checkpoints; an analytics consumer processes them in a
*priority* order (not the production order) that is known ahead of time —
e.g. high-energy regions first.  The consumer announces its priority order
as prefetch hints so the runtime stages data ahead of each analysis step.

Run:  python examples/priority_workflow.py [--batches 24]
"""

import argparse

from repro.config import bench_config
from repro.core.engine import ScoreEngine
from repro.harness.experiment import scaled_caches
from repro.metrics.prefetch import mean_prefetch_distance
from repro.metrics.timeline import sparkline
from repro.metrics.throughput import restore_rate_series
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB, format_bandwidth

SIZE = 128 * MiB


def priority_order(num_batches, seed=3):
    """Analytics priority: a deterministic 'energy' score per batch."""
    rng = make_rng(seed, "priority")
    energy = rng.random(num_batches)
    return sorted(range(num_batches), key=lambda b: -energy[b])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=24)
    args = parser.parse_args()
    n = args.batches

    # Ratio-scaled caches need a working set of at least ~16 batches for
    # the GPU cache to hold one 128 MiB checkpoint.
    config = bench_config(processes_per_node=1, cache=scaled_caches(max(n, 16) * SIZE))
    with Cluster(config) as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context, discard_consumed=True) as engine:
            order = priority_order(n)
            # The consumer's priority order is known before production ends:
            # announce it up front so eviction protects the high-priority
            # batches and the prefetcher stages them first.
            for batch in order:
                engine.prefetch_enqueue(batch)

            print(f"producer: emitting {n} batches of 128 MiB")
            rng = make_rng(9, "producer")
            sums = {}
            buffer = context.device.alloc_buffer(SIZE)
            for batch in range(n):
                context.clock.sleep(0.010)  # simulation step
                buffer.fill_random(rng)
                sums[batch] = buffer.checksum()
                engine.checkpoint(batch, buffer)

            engine.prefetch_start()
            print(f"consumer: analyzing by priority {order[:8]} ...")
            for batch in order:
                context.clock.sleep(0.010)  # analysis step
                engine.restore(batch, buffer)
                assert buffer.checksum() == sums[batch]

            recorder = engine.recorder
            series = restore_rate_series(recorder)
            print("\nper-restore read rate (priority order):")
            print("  " + sparkline(series))
            from repro.metrics.recorder import OpKind

            total = recorder.total_bytes(OpKind.RESTORE)
            blocked = recorder.total_blocked(OpKind.RESTORE)
            print(f"consumer read throughput: {format_bandwidth(total / blocked)}")
            print(f"mean prefetch distance:  {mean_prefetch_distance(recorder):.2f}")


if __name__ == "__main__":
    main()
