#!/usr/bin/env python
"""RTM adjoint shot: the paper's flagship workload end to end.

Replays a reverse-time-migration shot on 4 simulated GPUs: a forward pass
writes variable-size (compressed) wavefield snapshots following the Fig.-4
size envelope; the backward pass consumes them in reverse order.  The run
is repeated for the three Table-1 runtimes so the paper's comparison is
visible from one script.

Run:  python examples/rtm_adjoint.py [--snapshots 48] [--gpus 4]
"""

import argparse

from repro.baselines.adios2 import Adios2Engine
from repro.baselines.uvm_runtime import UvmEngine
from repro.config import bench_config
from repro.core.engine import ScoreEngine
from repro.harness.experiment import scaled_caches
from repro.metrics.report import render_table
from repro.metrics.throughput import throughput
from repro.tiers.topology import Cluster
from repro.util.units import MiB, format_bandwidth
from repro.workloads.multiproc import run_multiprocess_shot
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.rtm import variable_trace
from repro.workloads.shot import HintMode, ShotSpec

RUNTIMES = {
    "Score (this paper)": lambda ctx: ScoreEngine(ctx, discard_consumed=True),
    "optimized UVM": UvmEngine,
    "ADIOS2 BP5": Adios2Engine,
}


def run_one(name, factory, num_snapshots, gpus):
    total = num_snapshots * 128 * MiB
    config = bench_config(
        processes_per_node=gpus,
        cache=scaled_caches(total),
    )
    with Cluster(config) as cluster:
        specs = []
        for rank in range(gpus):
            trace = variable_trace(
                config.scale, rank=rank, seed=11, num_snapshots=num_snapshots, total_bytes=total
            )
            specs.append(
                ShotSpec(
                    trace=trace,
                    restore_order=restore_order(RestoreOrder.REVERSE, num_snapshots),
                    hint_mode=HintMode.ALL,
                    compute_interval=0.010,
                )
            )
        results = run_multiprocess_shot(cluster, factory, specs)
    summary = throughput([r.recorder for r in results])
    return (
        name,
        format_bandwidth(max(summary.checkpoint, 1.0)),
        format_bandwidth(max(summary.restore, 1.0)),
        f"{results[0].checkpoint_phase_seconds + results[0].restore_phase_seconds:.1f}s",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshots", type=int, default=48)
    parser.add_argument("--gpus", type=int, default=4)
    args = parser.parse_args()

    rows = []
    for name, factory in RUNTIMES.items():
        print(f"running {name} ...")
        rows.append(run_one(name, factory, args.snapshots, args.gpus))
    print()
    print(
        render_table(
            f"RTM adjoint shot: {args.snapshots} variable-size snapshots x "
            f"{args.gpus} GPUs, reverse restore, all hints",
            ["runtime", "ckpt rate", "restore rate", "job time (nominal)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
