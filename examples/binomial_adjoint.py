#!/usr/bin/env python
"""Binomial checkpointing: interleaved writes, reads and recomputation.

The paper's third motivating scenario (Section 1): memory-bound automatic
differentiation keeps only a *subset* of forward snapshots (following
Griewank's binomial schedule) and recomputes the missing ones during the
backward pass from the nearest stored snapshot — which produces an
interleaving of checkpoint writes and reads in a predefined but non-
monotonic order, exactly what the runtime's dynamic hint queue supports.

This example runs a small binomial schedule on one simulated GPU and shows
that the runtime handles interleaved produce/consume with hints enqueued
incrementally as the schedule unfolds.

Run:  python examples/binomial_adjoint.py [--steps 24] [--slots 4]
"""

import argparse

from repro.config import bench_config
from repro.core.client import Client
from repro.harness.experiment import scaled_caches
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB

SIZE = 128 * MiB


class BinomialAdjoint:
    """A toy adjoint computation under a binomial snapshot budget.

    ``stored`` maps timestep -> checkpoint version.  The backward pass walks
    timesteps in reverse; when the needed state was not stored it recomputes
    forward from the nearest stored snapshot, checkpointing intermediate
    states into freed slots (smaller forward passes that themselves generate
    new checkpoints — the interleaving described in the paper).
    """

    def __init__(self, client, context, steps, slots):
        self.client = client
        self.context = context
        self.steps = steps
        self.slots = slots
        self.buffer = context.device.alloc_buffer(SIZE)
        client.mem_protect(1, self.buffer)
        self.rng = make_rng(23, "binomial")
        self.stored = {}  # timestep -> version
        self.state_sums = {}  # timestep -> checksum (oracle for verification)
        self.next_version = 0
        self.recomputations = 0

    def _compute_step(self, timestep):
        """One simulated forward step (new state in the buffer)."""
        self.context.clock.sleep(0.005)
        self.buffer.fill_random(self.rng if timestep not in self.state_sums else make_rng(23, "re", timestep))
        # Deterministic per timestep so recomputation reproduces the state.
        self.buffer.fill_random(make_rng(23, "state", timestep))
        self.state_sums[timestep] = self.buffer.checksum()

    def _store(self, timestep):
        version = self.next_version
        self.next_version += 1
        self.client.checkpoint("state", version)
        self.stored[timestep] = version

    def forward(self):
        """Forward pass: store snapshots at (roughly) binomial spacing."""
        stride = max(1, self.steps // self.slots)
        for timestep in range(self.steps):
            self._compute_step(timestep)
            if timestep % stride == 0 and len(self.stored) < self.slots:
                self._store(timestep)

    def backward(self):
        """Reverse pass: fetch or recompute each state, newest first."""
        self.client.prefetch_start()
        for timestep in range(self.steps - 1, -1, -1):
            if timestep in self.stored:
                version = self.stored.pop(timestep)
                self.client.prefetch_enqueue(version)
                self.client.restart(version)
                assert self.buffer.checksum() == self.state_sums[timestep], (
                    f"restored state at t={timestep} diverged"
                )
            else:
                # Recompute from the nearest earlier stored timestep.
                base = max((t for t in self.stored if t < timestep), default=0)
                for t in range(base, timestep + 1):
                    self._compute_step(t)
                    self.recomputations += 1
            self.context.clock.sleep(0.005)  # adjoint computation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=24)
    parser.add_argument("--slots", type=int, default=4)
    args = parser.parse_args()

    config = bench_config(processes_per_node=1, cache=scaled_caches(args.slots * 12 * SIZE))
    with Cluster(config) as cluster:
        context = cluster.process_contexts()[0]
        with Client.create(context) as client:
            adjoint = BinomialAdjoint(client, context, args.steps, args.slots)
            adjoint.forward()
            print(
                f"forward pass done: {args.steps} steps, "
                f"{len(adjoint.stored)} snapshots stored (budget {args.slots})"
            )
            adjoint.backward()
            print(
                f"backward pass done: {adjoint.recomputations} recomputed steps, "
                "every restored state checksum-verified"
            )
            stats = client.stats()
            print(f"runtime: {stats['checkpoints']} checkpoints, "
                  f"{stats['promotions']} prefetch promotions")


if __name__ == "__main__":
    main()
