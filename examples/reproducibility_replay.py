#!/usr/bin/env python
"""Reproducibility replay: sequential re-read of a persisted history.

The paper's second motivating scenario (Section 1): a run writes
intermediate checkpoints; a validation pass later reads them back *in the
same order they were produced* to check invariants / compare runs.  Unlike
the adjoint case the checkpoints must be persisted (the WAIT variant), and
the validation pass benefits from sequential prefetch hints.

This example runs the producer pass, waits for durability, then replays the
history twice — once with hints and once without — and reports the I/O wait
the validation pass saw in each case.

Run:  python examples/reproducibility_replay.py [--snapshots 32]
"""

import argparse

from repro.config import bench_config
from repro.core.engine import ScoreEngine
from repro.harness.experiment import scaled_caches
from repro.metrics.report import render_table
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB, format_bandwidth


def produce(engine, context, num_snapshots, size):
    rng = make_rng(5, "producer")
    checksums = {}
    buffer = context.device.alloc_buffer(size)
    for version in range(num_snapshots):
        context.clock.sleep(0.010)
        buffer.fill_random(rng)
        checksums[version] = buffer.checksum()
        engine.checkpoint(version, buffer)
    engine.wait_for_flushes()  # reproducibility requires durability
    return checksums


def replay(engine, context, checksums, size, with_hints):
    num = len(checksums)
    if with_hints:
        for version in range(num):
            engine.prefetch_enqueue(version)
        engine.prefetch_start()
    buffer = context.device.alloc_buffer(size)
    blocked = 0.0
    for version in range(num):
        context.clock.sleep(0.010)  # validation computation
        blocked += engine.restore(version, buffer)
        # the invariant check of the validation pass:
        assert buffer.checksum() == checksums[version], f"divergence at {version}"
    return blocked


def run_variant(with_hints, num_snapshots, size):
    config = bench_config(processes_per_node=1, cache=scaled_caches(num_snapshots * size))
    with Cluster(config) as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            checksums = produce(engine, context, num_snapshots, size)
            blocked = replay(engine, context, checksums, size, with_hints)
    total = num_snapshots * size
    return blocked, total / blocked


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshots", type=int, default=32)
    args = parser.parse_args()
    size = 128 * MiB

    rows = []
    for with_hints, label in ((False, "no hints (direct reads)"), (True, "sequential hints")):
        print(f"running validation pass: {label} ...")
        blocked, rate = run_variant(with_hints, args.snapshots, size)
        rows.append((label, f"{blocked:.2f}s", format_bandwidth(rate)))
    print()
    print(
        render_table(
            f"Reproducibility replay: {args.snapshots} x 128 MiB, "
            "sequential validation pass",
            ["mode", "I/O wait", "read throughput"],
            rows,
        )
    )
    print("\nEvery restored payload was checksum-verified against the producer.")


if __name__ == "__main__":
    main()
