#!/usr/bin/env python
"""Checkpoint-restart resilience with partner replication.

The classic VELOC scenario the Score runtime inherits (Section 3.1): a
process checkpoints with partner replication enabled, "dies", loses its
entire node-local SSD, and a replacement process on the same rank recovers
the full history from the partner node and resumes.

Run:  python examples/failure_recovery.py [--snapshots 12]
"""

import argparse

from repro.config import bench_config
from repro.core.engine import ScoreEngine
from repro.harness.experiment import scaled_caches
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB

SIZE = 128 * MiB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshots", type=int, default=12)
    args = parser.parse_args()
    n = args.snapshots

    config = bench_config(
        num_nodes=2,
        processes_per_node=1,
        cache=scaled_caches(max(n, 16) * SIZE),
    )
    with Cluster(config) as cluster:
        ctx = cluster.process_contexts()[0]

        # --- first incarnation: checkpoint with replication, then "die" ---
        engine = ScoreEngine(ctx, partner_replication=True)
        rng = make_rng(77, "app-state")
        buffer = ctx.device.alloc_buffer(SIZE)
        checksums = {}
        print(f"incarnation 1: writing {n} checkpoints with partner replication")
        for version in range(n):
            ctx.clock.sleep(0.010)
            buffer.fill_random(rng)
            checksums[version] = buffer.checksum()
            engine.checkpoint(version, buffer)
        engine.wait_for_flushes()
        replicated = engine.flusher.replicated
        engine.close()
        print(f"  durable on node 0's SSD + {replicated} replicas on node 1")

        # --- the failure: node 0 loses its entire SSD ---
        home_ssd = cluster.nodes[0].ssd
        lost = 0
        for version in range(n):
            if home_ssd.contains((ctx.process_id, version)):
                home_ssd.delete((ctx.process_id, version))
                lost += 1
        print(f"FAILURE: node 0's SSD wiped ({lost} checkpoints lost locally)")

        # --- the replacement process recovers from the partner node ---
        replacement = ScoreEngine(ctx)
        try:
            recovered = replacement.recover_history()
            print(f"incarnation 2: recovered {recovered} checkpoints from the partner")
            for version in range(n):
                replacement.restore(version, buffer)
                assert buffer.checksum() == checksums[version], (
                    f"state diverged at version {version}"
                )
            print("all restored states checksum-verified — resilience holds")
        finally:
            replacement.close()


if __name__ == "__main__":
    main()
