#!/usr/bin/env python
"""Quickstart: checkpoint a GPU buffer, restore it, inspect the runtime.

Runs a miniature version of the paper's core loop on one simulated GPU:
write a handful of checkpoints (each is copied into the GPU cache and
asynchronously flushed down the tier hierarchy), then read them back in
reverse order with prefetch hints.

Run:  python examples/quickstart.py
"""

from repro import Client, Cluster, bench_config
from repro.util.rng import make_rng
from repro.util.units import MiB, format_bandwidth

NUM_CHECKPOINTS = 16
CHECKPOINT_SIZE = 128 * MiB


def main() -> None:
    # The bench configuration models the paper's DGX-A100 node with scaled
    # payloads and a compressed wall clock; every reported number is in
    # nominal (paper) units.
    config = bench_config(processes_per_node=1)
    with Cluster(config) as cluster:
        context = cluster.process_contexts()[0]
        with Client.create(context) as client:
            # VELOC_Mem_protect: declare the region to checkpoint.
            buffer = context.device.alloc_buffer(CHECKPOINT_SIZE)
            client.mem_protect(1, buffer)

            # Hints first (Listing 1): we will read back in reverse order.
            for version in reversed(range(NUM_CHECKPOINTS)):
                client.prefetch_enqueue(version)

            # Forward pass: compute (simulated) + checkpoint.
            rng = make_rng(42, "quickstart")
            checksums = {}
            print(f"forward pass: {NUM_CHECKPOINTS} checkpoints of 128 MiB")
            for version in range(NUM_CHECKPOINTS):
                context.clock.sleep(0.010)  # 10 ms of "computation"
                buffer.fill_random(rng)
                checksums[version] = buffer.checksum()
                blocked = client.checkpoint("wavefield", version)
                print(f"  ckpt v{version:02d}: blocked {blocked * 1e3:7.3f} ms")

            # Let the async flushes settle, then start prefetching.
            flush_wait = client.wait_for_flushes()
            print(f"flush wait: {flush_wait:.2f}s (all checkpoints on SSD)")
            client.prefetch_start()

            # Backward pass: restore in reverse, verifying every payload.
            print("backward pass (reverse order):")
            for version in reversed(range(NUM_CHECKPOINTS)):
                context.clock.sleep(0.010)
                blocked = client.restart(version)
                assert buffer.checksum() == checksums[version], "corrupt restore!"
                print(f"  restore v{version:02d}: blocked {blocked * 1e3:7.3f} ms")

            stats = client.stats()
            print("\nruntime stats:")
            for key in ("gpu_evictions", "host_evictions", "promotions", "ssd_objects"):
                print(f"  {key}: {stats[key]}")
            from repro.metrics.recorder import OpKind

            recorder = client.engine.recorder
            total_bytes = recorder.total_bytes(OpKind.RESTORE)
            blocked = recorder.total_blocked(OpKind.RESTORE)
            print(f"  restore throughput: {format_bandwidth(total_bytes / blocked)}")


if __name__ == "__main__":
    main()
