#!/usr/bin/env python
"""Chaos harness: injected faults, outages and crashes vs. durable recovery.

Each mode runs the same two-phase scenario against one engine:

* **Phase 1 (life)** — checkpoint ``snapshots`` versions under a seeded
  :class:`FaultConfig` (transient link faults, an SSD hard-outage window,
  optionally a crash point between flush stages) with the self-healing
  stack (:class:`ResilienceConfig`) enabled, then kill the engine.
* **Phase 2 (afterlife)** — scan the durable tiers for what actually
  survived, re-incarnate a fresh engine on the same rank,
  ``recover_history()`` (manifest-journal replay + store scan), restore
  every surviving checkpoint and CRC-verify it against the checksum the
  application buffer had at write time.

The figure of merit is the **durable-recovery rate**: of the checkpoints
that reached a durable tier, the percentage the replacement process
restored with verified bytes.  The resilience design point is 100% at the
paper-ish chaos levels (≤5% transfer-fault rate plus one SSD outage);
``--require-recovery`` turns that into a CI gate.  The report also carries
the self-healing effort that bought it (retries, reroutes, backfills,
breaker opens) and the fault-free baseline for overhead comparison.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --json BENCH_pr5.json [--quick] [--require-recovery]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import (
    CacheConfig,
    FaultConfig,
    ResilienceConfig,
    RuntimeConfig,
    ScaleModel,
)
from repro.core.engine import ScoreEngine
from repro.errors import InjectedCrash, ReproError
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import GiB, KiB, MiB

#: One nominal second lasts 10 ms; correctness metrics (recovery counts,
#: CRC verdicts) are immune to wall-clock jitter, so the clock runs hot.
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.01, alignment=512 * KiB)

CKPT = 128 * MiB
SEED = 23

#: One SSD hard outage: the tier goes dark mid-run and heals before the end,
#: exercising retry exhaustion, breaker trip, PFS reroute and backfill.
#: (The serialized cascade moves ~0.4 nominal seconds per snapshot, so the
#: window swallows a handful of flushes in both quick and full runs.)
OUTAGE = (("ssd", 1.0, 2.5, 0.0),)

MODES = (
    # (key, transfer_fault_rate, outages, crash_point)
    ("baseline", 0.0, (), None),
    ("faults_2pct", 0.02, (), None),
    ("faults_5pct_ssd_outage", 0.05, OUTAGE, None),
    ("crash_after_h2f", 0.02, (), "after-h2f"),
)


def build_config(rate: float, outages: tuple, crash_point, crash_ckpt) -> RuntimeConfig:
    faults_on = rate > 0.0 or bool(outages) or crash_point is not None
    return RuntimeConfig(
        scale=BENCH_SCALE,
        cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
        charge_allocation_cost=False,
        processes_per_node=1,
        faults=FaultConfig(
            enabled=faults_on,
            seed=SEED,
            transfer_fault_rate=rate,
            tier_outages=outages,
            crash_point=crash_point,
            crash_ckpt=crash_ckpt,
        ),
        resilience=ResilienceConfig(enabled=True),
    )


def run_mode(key: str, rate: float, outages: tuple, crash_point, snapshots: int) -> dict:
    # A crash mid-run kills the flush cascade; aim it at the middle version
    # so both already-durable and never-started checkpoints exist.
    crash_ckpt = snapshots // 2 if crash_point is not None else None
    cfg = build_config(rate, outages, crash_point, crash_ckpt)
    started = time.perf_counter()
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]

        # -- phase 1: checkpoint under chaos, then die ---------------------
        engine = ScoreEngine(ctx, flush_to_pfs=True)
        pid = engine.process_id
        sums = {}
        written = 0
        for v in range(snapshots):
            buf = ctx.device.alloc_buffer(CKPT)
            buf.fill_random(make_rng(SEED + v, "chaos"))
            sums[v] = buf.checksum()
            try:
                engine.checkpoint(v, buf)
            except InjectedCrash:
                break  # the process died between flush stages
            written += 1
            if crash_point is None:
                # Serialize the cascade so every version gets its shot at
                # durability before the next one competes for the links.
                engine.wait_for_flushes(timeout=600.0)
        engine.close()  # "failure": threads stop, caches are gone
        life_stats = engine.stats().get("resilience", {})
        faults_seen = cluster.faults.snapshot()

        # -- what actually survived decides what must come back ------------
        stores = [cluster.nodes[0].ssd, cluster.pfs]
        durable = sorted(
            v for v in range(snapshots)
            if any(s.contains((pid, v)) for s in stores)
        )

        # -- phase 2: re-incarnate, recover, verify ------------------------
        engine2 = ScoreEngine(ctx, flush_to_pfs=True)
        try:
            recovered = engine2.recover_history()
            verified = 0
            failures = []
            out = ctx.device.alloc_buffer(CKPT)
            for v in durable:
                try:
                    engine2.restore(v, out)
                except ReproError as exc:
                    failures.append({"ckpt": v, "error": str(exc)})
                    continue
                if out.checksum() == sums[v]:
                    verified += 1
                else:
                    failures.append({"ckpt": v, "error": "checksum mismatch"})
        finally:
            engine2.close()

    recovery_pct = 100.0 * verified / len(durable) if durable else 100.0
    return {
        "mode": key,
        "transfer_fault_rate": rate,
        "ssd_outage": bool(outages),
        "crash_point": crash_point,
        "wall_s": round(time.perf_counter() - started, 3),
        "snapshots": snapshots,
        "written": written,
        "durable": len(durable),
        "recovered": recovered,
        "verified": verified,
        "recovery_pct": round(recovery_pct, 1),
        "failures": failures,
        "injected": faults_seen,
        "healing": {
            "flush_retries": life_stats.get("flush_retries", 0),
            "rerouted": life_stats.get("rerouted", 0),
            "reflushed": life_stats.get("reflushed", 0),
            "backfilled": life_stats.get("backfilled", 0),
            "breakers": life_stats.get("breakers", {}),
        },
    }


def run(quick: bool, label: str) -> dict:
    snapshots = 8 if quick else 32
    modes = {}
    for key, rate, outages, crash_point in MODES:
        modes[key] = run_mode(key, rate, outages, crash_point, snapshots)
        m = modes[key]
        print(
            f"  {key}: durable {m['durable']}/{m['written']} written, "
            f"verified {m['verified']}/{m['durable']} "
            f"({m['recovery_pct']:.0f}%), retries {m['healing']['flush_retries']}, "
            f"rerouted {m['healing']['rerouted']} ({m['wall_s']:.2f}s wall)",
            file=sys.stderr,
        )
    return {
        "label": label,
        "quick": quick,
        "snapshots": snapshots,
        "seed": SEED,
        "modes": modes,
        "recovery_pct_min": min(m["recovery_pct"] for m in modes.values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument(
        "--require-recovery",
        action="store_true",
        help="fail unless every mode recovers 100%% of its durable checkpoints",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.label)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    if args.require_recovery:
        worst = result["recovery_pct_min"]
        verdict = "OK" if worst >= 100.0 else "DATA LOSS"
        print(
            f"{verdict}: worst-mode durable recovery {worst:.1f}% (gate 100%)",
            file=sys.stderr,
        )
        if verdict != "OK":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
