"""Figure 9: per-process throughput at scale (8→32 GPUs), variable sizes,
tightly coupled (9a) and embarrassingly parallel (9b).

Shape checks: per-process throughput of the Score runtime stays within a
modest factor when the GPU count grows (the paper reports "relatively
stable throughput for an increasing number of GPUs"), while ADIOS2's
checkpoint throughput does not improve.
"""

import pytest

from benchmarks.conftest import FULL, attach_rows, run_once
from repro.harness.figures import fig9_scalability
from repro.util.units import parse_bandwidth

_GPUS = (8, 16, 32) if FULL else (8, 16)
_SNAPSHOTS = 32  # scalability runs multiply the process count


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("tightly_coupled", [False, True], ids=["parallel", "coupled"])
def test_fig9_scalability(benchmark, tightly_coupled):
    result = run_once(
        benchmark,
        fig9_scalability,
        gpu_counts=_GPUS,
        tightly_coupled=tightly_coupled,
        num_snapshots=_SNAPSHOTS,
    )
    attach_rows(benchmark, result)
    # Score per-process restore throughput at max scale within 4x of 8 GPUs.
    score_rows = [r for r in result.rows if r[1] == "Single hint, Score"]
    assert len(score_rows) == len(_GPUS)
    small = parse_bandwidth(score_rows[0][3])
    large = parse_bandwidth(score_rows[-1][3])
    assert large > small / 4.0
    # ADIOS2 remains the slowest at every scale.
    for gpus in _GPUS:
        rows_at = [r for r in result.rows if r[0] == gpus]
        adios = [parse_bandwidth(r[3]) for r in rows_at if "ADIOS2" in r[1]]
        others = [parse_bandwidth(r[3]) for r in rows_at if "ADIOS2" not in r[1]]
        assert max(adios) < max(others)
