"""Figure 5: checkpoint+restore throughput when the restore phase WAITS for
all flushes (uniform = Fig. 5a, variable = Fig. 5b).

Shape checks (the paper's qualitative claims):

* ADIOS2 is the slowest approach in every cell;
* the Score runtime's restore throughput beats the optimized UVM runtime.
"""

import pytest

from benchmarks.conftest import FULL, SNAPSHOTS, attach_rows, run_once
from repro.harness.approaches import TABLE1
from repro.harness.figures import ORDERS, fig5_wait
from repro.workloads.patterns import RestoreOrder

_ORDERS = ORDERS if FULL else (RestoreOrder.REVERSE,)


def _rates_by(result, runtime_label):
    rows = [r for r in result.extras["results"] if runtime_label in r.experiment.approach.label]
    return [x.restore_rate for x in rows]


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("workload", ["uniform", "variable"])
def test_fig5_wait(benchmark, workload):
    result = run_once(
        benchmark,
        fig5_wait,
        workload=workload,
        num_snapshots=SNAPSHOTS,
        approaches=TABLE1,
        orders=_ORDERS,
    )
    attach_rows(benchmark, result)
    adios = _rates_by(result, "ADIOS2")
    score = _rates_by(result, "Score")
    uvm = _rates_by(result, "UVM")
    # ADIOS2 slowest (by a wide margin in the paper).
    assert max(adios) < min(score)
    assert max(adios) < max(uvm)
    # Score's best configuration outperforms UVM's best.
    assert max(score) > max(uvm) * 0.8  # shape holds within run noise
