#!/usr/bin/env python
"""Simulator-throughput benchmark: wall-clock cost of the hot paths.

Unlike the figure benchmarks (which report *nominal* checkpoint/restore
rates), this one measures how fast the simulator itself runs: an aggressive
``time_scale`` shrinks every simulated wait to near nothing, so wall time is
dominated by the Python bookkeeping on the per-operation hot paths —
allocation-table scans, eviction scoring, payload copies, lock traffic and
condition-variable polling.  That makes it the regression gate for the
hot-path optimizations (O(1) cache metadata, zero-copy payloads,
event-driven eviction waits, transfer coalescing).

Workload: 4 concurrent engines (one thread each), a large checkpoint
history, reverse-order restores with full hints, and caches scaled to the
paper's ratios — small enough that most reservations must evict.

Usage::

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
        --json out.json [--quick] [--label after] \
        [--baseline BENCH_pr2.json --max-regression 20]

With ``--baseline`` the run fails (exit 1) when its ops/sec falls more than
``--max-regression`` percent below the matching entry (same ``--quick``
mode) of the baseline file — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import ScaleModel, StreamConfig, bench_config
from repro.harness.approaches import APPROACHES
from repro.harness.experiment import Experiment, run_experiment
from repro.util.units import KiB, MiB

#: One nominal second lasts 2 ms of wall time: simulated waits all but
#: vanish and the measurement isolates the simulator's own CPU cost.
FAST_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.002, alignment=512 * KiB)


def build_experiment(quick: bool, stream: bool = False) -> Experiment:
    config = bench_config().with_(scale=FAST_SCALE)
    if stream:
        # 2 MiB chunks so the 8 MiB snapshots stream as 4-chunk pipelines
        # (the 16 MiB default would fall back to store-and-forward).  This
        # mode measures the *coordination overhead* of chunk streaming on
        # the hot paths; its latency win only shows at coarse time scales.
        config = config.with_(
            stream=StreamConfig(enabled=True, stream_chunk_bytes=2 * MiB)
        )
    return Experiment(
        approach=APPROACHES["score-all"],
        workload="uniform",
        num_snapshots=256 if quick else 1536,  # large history → long tables/queues
        snapshot_size=8 * MiB,
        compute_interval=0.010,
        num_nodes=1,
        processes_per_node=4,  # 4 concurrent engines on shared links/SSD
        config=config,
        seed=7,
    )


def run(quick: bool, repeats: int, label: str, stream: bool = False) -> dict:
    exp = build_experiment(quick, stream)
    ops_per_rank = 2 * exp.num_snapshots  # one checkpoint + one restore each
    ops = ops_per_rank * exp.processes_per_node
    # A short GIL switch interval tames scheduler-convoy variance between
    # the four engine threads; it applies identically to every build being
    # compared.
    sys.setswitchinterval(0.001)
    walls = []
    for i in range(repeats):
        started = time.perf_counter()
        result = run_experiment(exp)
        walls.append(time.perf_counter() - started)
        print(
            f"  run {i + 1}/{repeats}: {walls[-1]:.3f}s wall, "
            f"{ops / walls[-1]:.0f} ops/s",
            file=sys.stderr,
        )
    wall = min(walls)  # best-of-N: least scheduler noise
    return {
        "label": label,
        "quick": quick,
        "stream": stream,
        "engines": exp.processes_per_node,
        "snapshots": exp.num_snapshots,
        "repeats": repeats,
        "ops": ops,
        "wall_s": round(wall, 4),
        "wall_s_all": [round(w, 4) for w in walls],
        "ops_per_s": round(ops / wall, 1),
        "checkpoint_rate_nominal": round(result.checkpoint_rate, 1),
        "restore_rate_nominal": round(result.restore_rate, 1),
    }


def baseline_entry(baseline: dict, quick: bool, stream: bool = False):
    """The baseline measurement matching this run's mode.

    Accepts either a bare result dict or a combined file (``BENCH_pr2.json``
    style) whose values include result dicts; picks the entry with the same
    ``quick``/``stream`` flags, preferring ones labelled ``after``/``quick``.
    """
    candidates = []
    if "ops_per_s" in baseline:
        candidates.append(baseline)
    for key, value in baseline.items():
        if isinstance(value, dict) and "ops_per_s" in value:
            candidates.append(value)
    matching = [
        c
        for c in candidates
        if c.get("quick", False) == quick and c.get("stream", False) == stream
    ]
    if not matching:
        return None
    for entry in matching:
        if entry.get("label") in ("after", "quick"):
            return entry
    return matching[0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument(
        "--stream",
        action="store_true",
        help="enable pipelined chunk streaming (2 MiB chunks) in the cascade",
    )
    parser.add_argument("--repeats", type=int, default=3, help="runs (best-of); default 3")
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=20.0,
        help="fail when ops/sec drops more than this percent below baseline",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.repeats, args.label, stream=args.stream)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    if args.baseline:
        with open(args.baseline) as fh:
            entry = baseline_entry(json.load(fh), args.quick, args.stream)
        if entry is None:
            print(
                f"no baseline entry with quick={args.quick} stream={args.stream} "
                f"in {args.baseline}; skipping regression gate",
                file=sys.stderr,
            )
            return 0
        floor = entry["ops_per_s"] * (1.0 - args.max_regression / 100.0)
        verdict = "OK" if result["ops_per_s"] >= floor else "REGRESSION"
        print(
            f"{verdict}: {result['ops_per_s']} ops/s vs baseline "
            f"{entry['ops_per_s']} (floor {floor:.1f})",
            file=sys.stderr,
        )
        if verdict != "OK":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
