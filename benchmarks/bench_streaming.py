#!/usr/bin/env python
"""Streamed-cascade benchmark: durability latency, pipelined vs legacy.

The figure of merit is *durability latency*: nominal seconds from the
start of ``checkpoint()`` until the cascade has settled the version on the
PFS (``wait_for_flushes`` returns).  Store-and-forward pays every hop in
sequence — D2H, host→SSD, then the SSD read-back and the PFS write; the
streamed cascade (``StreamConfig.enabled``) overlaps them chunk-by-chunk
through the per-checkpoint ring buffer, so latency should collapse toward
the slowest single stage.

Unlike the throughput benches this one runs a *coarse* time scale: chunk
wall durations must dwarf thread-handoff jitter or the overlap the virtual
clock would credit is lost to scheduling noise (at the test scale of 0.002
a 16 MiB chunk lasts ~µs of wall time and the pipeline degenerates to
store-and-forward timing).

Two gates, both self-contained (no baseline file needed):

* ``--max-ratio`` (default 0.8): streamed mean durability latency must be
  at most this fraction of the legacy mean — the ≥20 % reduction gate.
* ``--stage-factor`` (default 1.5): streamed mean durability latency must
  be within this factor of the slowest legacy cascade stage (d2h / h2f /
  f2p span means from a tracing pass) — "latency collapses toward
  max(stage)".

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py \
        --json out.json [--quick] [--label after] \
        [--baseline BENCH_pr7.json --max-regression 25]

With ``--baseline`` the run additionally fails (exit 1) when its streamed
mean latency is more than ``--max-regression`` percent above the matching
entry (same ``--quick`` mode) of the baseline file — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import CacheConfig, RuntimeConfig, ScaleModel, StreamConfig
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import GiB, KiB, MiB

#: One nominal second lasts 200 ms.  A 16 MiB chunk then occupies the PFS
#: link for ~2.5 ms of wall time — two orders of magnitude above
#: condition-variable wake-up jitter, so the measured overlap reflects the
#: pipeline, not the thread scheduler.
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.2, alignment=512 * KiB)

SNAPSHOT_SIZE = 128 * MiB
STAGES = ("d2h", "h2f", "f2p")


def build_config(stream: bool, telemetry: bool = False) -> RuntimeConfig:
    cfg = RuntimeConfig(
        scale=BENCH_SCALE,
        cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
        charge_allocation_cost=False,
        processes_per_node=1,
    )
    if stream:
        cfg = cfg.with_(stream=StreamConfig(enabled=True))
    if telemetry:
        cfg = cfg.with_(telemetry=True)
    return cfg


def run_mode(stream: bool, checkpoints: int, telemetry: bool = False) -> dict:
    """One cluster run; per-checkpoint durability latencies + stream metrics.

    The latency of checkpoint *i* is measured with the cascade quiesced
    between versions (checkpoint → ``wait_for_flushes``), so each sample is
    the full GPU→PFS durability path of one version, not a queueing
    artifact of the previous one.
    """
    config = build_config(stream, telemetry=telemetry)
    started = time.perf_counter()
    with Cluster(config) as cluster:
        ctx = cluster.process_contexts()[0]
        engine = ScoreEngine(ctx, flush_to_pfs=True)
        try:
            buf = ctx.device.alloc_buffer(SNAPSHOT_SIZE)
            buf.fill_random(make_rng(7, "bench-streaming"))
            latencies = []
            for i in range(checkpoints):
                t0 = engine.clock.now()
                engine.checkpoint(i, buf)
                engine.wait_for_flushes(timeout=600.0)
                latencies.append(engine.clock.now() - t0)
            metrics = {}
            if stream:
                snapshot = engine.telemetry.registry.snapshot()
                metrics = {
                    "pipelines": snapshot.get("flush.stream.pipelines", 0),
                    "overlap_ratio": round(
                        snapshot.get("flush.stream.overlap_ratio", 0.0), 4
                    ),
                }
            stage_means = {}
            if telemetry:
                spans: dict = {name: [] for name in STAGES}
                for event in cluster.telemetry.bus.snapshot():
                    if event.name in spans and event.phase == "X":
                        spans[event.name].append(event.dur)
                stage_means = {
                    name: round(sum(vals) / len(vals), 6)
                    for name, vals in spans.items()
                    if vals
                }
        finally:
            engine.close()
    mean = sum(latencies) / len(latencies)
    result = {
        "stream": stream,
        "checkpoints": checkpoints,
        "wall_s": round(time.perf_counter() - started, 3),
        "mean_s": round(mean, 6),
        "min_s": round(min(latencies), 6),
        "max_s": round(max(latencies), 6),
    }
    if metrics:
        result["stream_metrics"] = metrics
    if stage_means:
        result["stage_means_s"] = stage_means
    return result


def run(quick: bool, repeats: int, label: str) -> dict:
    checkpoints = 6 if quick else 10
    modes = {}
    for key, stream in (("legacy", False), ("streamed", True)):
        runs = []
        for i in range(repeats):
            result = run_mode(stream, checkpoints)
            runs.append(result)
            print(
                f"  {key} run {i + 1}/{repeats}: mean durability "
                f"{result['mean_s']:.4f}s nominal ({result['wall_s']:.2f}s wall)",
                file=sys.stderr,
            )
        # Best-of-N: wall-clock scheduling noise leaks into the wall-scaled
        # virtual clock and only ever inflates latency.
        modes[key] = min(runs, key=lambda r: r["mean_s"])
    # Separate tracing pass for the per-stage denominators of the
    # stage-factor gate (tracing overhead must not pollute the timed runs).
    print("  stage-attribution pass (legacy + tracing)", file=sys.stderr)
    stages = run_mode(False, checkpoints, telemetry=True).get("stage_means_s", {})
    legacy_mean = modes["legacy"]["mean_s"]
    streamed_mean = modes["streamed"]["mean_s"]
    max_stage = max(stages.values()) if stages else None
    return {
        "label": label,
        "quick": quick,
        "snapshot_size_mib": SNAPSHOT_SIZE // MiB,
        "checkpoints": checkpoints,
        "repeats": repeats,
        "legacy": modes["legacy"],
        "streamed": modes["streamed"],
        "stage_means_s": stages,
        "max_stage_s": max_stage,
        "latency_ratio": round(streamed_mean / legacy_mean, 4),
        "reduction_pct": round(100.0 * (1.0 - streamed_mean / legacy_mean), 1),
        "stage_factor": round(streamed_mean / max_stage, 3) if max_stage else None,
    }


def baseline_entry(baseline: dict, quick: bool):
    """The baseline measurement matching this run's ``--quick`` mode."""
    candidates = []
    if isinstance(baseline.get("streamed"), dict):
        candidates.append(baseline)
    for value in baseline.values():
        if isinstance(value, dict) and isinstance(value.get("streamed"), dict):
            candidates.append(value)
    matching = [c for c in candidates if c.get("quick", False) == quick]
    return matching[0] if matching else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument("--repeats", type=int, default=2, help="runs per mode (best-of)")
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=0.8,
        help="fail when streamed/legacy mean latency exceeds this ratio",
    )
    parser.add_argument(
        "--stage-factor",
        type=float,
        default=1.5,
        help="fail when streamed latency exceeds this multiple of the slowest stage",
    )
    parser.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        help="fail when streamed latency exceeds baseline by this percent",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.repeats, args.label)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    failed = False
    if result["latency_ratio"] > args.max_ratio:
        print(
            f"GATE FAILED: streamed/legacy latency ratio "
            f"{result['latency_ratio']:.3f} > {args.max_ratio}",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: streamed durability latency is {result['latency_ratio']:.3f}x "
            f"legacy ({result['reduction_pct']:.1f}% reduction)",
            file=sys.stderr,
        )
    if result["stage_factor"] is not None:
        if result["stage_factor"] > args.stage_factor:
            print(
                f"GATE FAILED: streamed latency is {result['stage_factor']:.2f}x "
                f"the slowest stage (limit {args.stage_factor}x)",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"OK: streamed latency is {result['stage_factor']:.2f}x the "
                f"slowest stage (limit {args.stage_factor}x)",
                file=sys.stderr,
            )

    if args.baseline:
        with open(args.baseline) as fh:
            entry = baseline_entry(json.load(fh), args.quick)
        if entry is None:
            print(
                f"no baseline entry with quick={args.quick} in {args.baseline}; "
                "skipping regression gate",
                file=sys.stderr,
            )
        else:
            baseline_mean = entry["streamed"]["mean_s"]
            ceiling = baseline_mean * (1.0 + args.max_regression / 100.0)
            current = result["streamed"]["mean_s"]
            verdict = "OK" if current <= ceiling else "REGRESSION"
            print(
                f"{verdict}: streamed mean {current:.4f}s vs baseline "
                f"{baseline_mean:.4f}s (ceiling {ceiling:.4f}s)",
                file=sys.stderr,
            )
            if verdict != "OK":
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
