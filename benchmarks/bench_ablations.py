"""Design-choice ablations from DESIGN.md.

* Eviction policy: Algorithm 1 (gap-aware sliding-window scoring) vs LRU vs
  FIFO inside the otherwise identical runtime.
* Cache organization: shared flush/prefetch cache vs the statically split
  halves the paper argues against (Section 4.1.2).
"""

import pytest

from benchmarks.conftest import SNAPSHOTS, attach_rows, run_once
from repro.harness.figures import ablation_eviction_policy, ablation_shared_cache
from repro.util.units import parse_bandwidth


@pytest.mark.benchmark(group="ablation")
def test_ablation_eviction_policy(benchmark):
    result = run_once(benchmark, ablation_eviction_policy, num_snapshots=SNAPSHOTS)
    attach_rows(benchmark, result)
    rates = {row[0]: parse_bandwidth(row[2]) for row in result.rows}
    assert set(rates) == {"score", "lru", "fifo"}
    # The scoring policy should not lose badly to either naive policy.
    assert rates["score"] > 0.5 * max(rates.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_shared_cache(benchmark):
    result = run_once(benchmark, ablation_shared_cache, num_snapshots=SNAPSHOTS)
    attach_rows(benchmark, result)
    rates = {row[0]: parse_bandwidth(row[2]) for row in result.rows}
    assert set(rates) == {"shared", "split"}
    # Splitting the cache statically wastes capacity: the shared design's
    # checkpoint throughput should be at least comparable.
    assert rates["shared"] > 0.5 * rates["split"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_gpudirect(benchmark):
    from repro.harness.figures import ablation_gpudirect

    result = run_once(benchmark, ablation_gpudirect, num_snapshots=SNAPSHOTS)
    attach_rows(benchmark, result)
    rates = {row[0]: parse_bandwidth(row[2]) for row in result.rows}
    assert set(rates) == {"host-staged", "gpudirect"}
    # Losing the host cache tier must not make restores free: GPUDirect
    # reads come from the SSD, so host-staged restores stay competitive.
    assert rates["host-staged"] > 0.3 * rates["gpudirect"]
