#!/usr/bin/env python
"""Cluster-fabric benchmark: peer-SSD restore vs PFS-only, PFS aggregation.

A 4-node × 2-engines-per-node cluster serves concurrent clients through
the :class:`CheckpointService`: every client submits its checkpoints,
the cascades settle, then all clients restore *cross-node* at once (the
target sits two nodes around the ring, so neither the target's SSD nor
its neighbor replica is local — every restore is a demand promotion over
the fabric). The figure of merit is the demand-restore p99 in nominal
seconds.

Three runs, ablating one fabric feature at a time:

* ``pfs_only`` — ``peer_reads=False``: every restore drops to the shared
  PFS; concurrent clients contend on its global links.
* ``peer`` — ``peer_reads=True``: restores pull from a holder's SSD over
  the interconnect, spreading load across per-node drives.
* ``agg`` — ``aggregation=True`` (peer reads off, same write workload as
  ``pfs_only``): co-located engines' concurrent flush streams coalesce
  into batched PFS commits, cutting the PFS op count.

Two self-contained gates:

* ``--min-peer-reduction`` (default 25): peer restore p99 must be at
  least this many percent below the PFS-only p99.
* ``--require-agg-reduction``: the aggregated run must issue strictly
  fewer PFS write ops than the unaggregated one.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py \
        --json BENCH_pr8.json [--quick] [--label after] \
        [--baseline BENCH_pr8.json --max-regression 25]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cluster.topology import ClusterTopology
from repro.config import CacheConfig, ClusterConfig, RuntimeConfig, ScaleModel
from repro.util.units import GiB, KiB, MiB
from repro.workloads.service_load import run_service_load

#: One nominal second lasts 100 ms: restore transfers (tens of nominal
#: milliseconds) dwarf thread-handoff jitter, and the aggregation window
#: below is wide enough to survive wall-clock scheduling noise.
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.1, alignment=512 * KiB)

SNAPSHOT_SIZE = 128 * MiB
NODES = 4
ENGINES_PER_NODE = 2

#: Nominal seconds a batch leader waits for co-located flush streams; at
#: the bench time scale this is 10 ms of wall time — an order of magnitude
#: above condition-variable wake-up jitter.
AGG_WINDOW_S = 0.1


def build_config(peer_reads: bool, aggregation: bool) -> RuntimeConfig:
    return RuntimeConfig(
        scale=BENCH_SCALE,
        cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
        charge_allocation_cost=False,
        num_nodes=NODES,
        processes_per_node=ENGINES_PER_NODE,
        cluster=ClusterConfig(
            enabled=True,
            peer_reads=peer_reads,
            aggregation=aggregation,
            aggregation_window_s=AGG_WINDOW_S,
        ),
    )


def percentile(values, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def run_mode(peer_reads: bool, aggregation: bool, checkpoints: int) -> dict:
    config = build_config(peer_reads, aggregation)
    started = time.perf_counter()
    with ClusterTopology(config, engine_kwargs={"flush_to_pfs": True}) as topo:
        result = run_service_load(
            topo,
            clients=NODES * ENGINES_PER_NODE,
            checkpoints_per_client=checkpoints,
            snapshot_bytes=SNAPSHOT_SIZE,
            cross_node=True,
            node_shift=2,  # skip the ring-successor replica: no local hits
        )
        if not result["checksums_ok"]:
            raise RuntimeError("restored payload checksum mismatch")
        snapshot = topo.telemetry.registry.snapshot()
    latencies = result["restore_latencies"]
    return {
        "peer_reads": peer_reads,
        "aggregation": aggregation,
        "restores": len(latencies),
        "wall_s": round(time.perf_counter() - started, 3),
        "p50_s": round(percentile(latencies, 0.50), 6),
        "p99_s": round(percentile(latencies, 0.99), 6),
        "mean_s": round(sum(latencies) / len(latencies), 6),
        "pfs_write_ops": int(snapshot.get("tier.pfs.write_ops", 0)),
        "peer_ssd_reads": int(snapshot.get("cluster.peer.reads", 0)),
        "agg_batches": int(snapshot.get("cluster.agg.batches", 0)),
        "agg_coalesced_ops": int(snapshot.get("cluster.agg.coalesced_ops", 0)),
    }


def run(quick: bool, repeats: int, label: str) -> dict:
    checkpoints = 2 if quick else 3
    modes = {}
    for key, peer_reads, aggregation in (
        ("pfs_only", False, False),
        ("peer", True, False),
        ("agg", False, True),
    ):
        runs = []
        for i in range(repeats):
            result = run_mode(peer_reads, aggregation, checkpoints)
            runs.append(result)
            print(
                f"  {key} run {i + 1}/{repeats}: restore p99 "
                f"{result['p99_s']:.4f}s nominal, {result['pfs_write_ops']} PFS "
                f"write ops ({result['wall_s']:.2f}s wall)",
                file=sys.stderr,
            )
        # Best-of-N: wall-clock scheduling noise leaks into the wall-scaled
        # virtual clock and only ever inflates latency.
        modes[key] = min(runs, key=lambda r: r["p99_s"])
    pfs_p99 = modes["pfs_only"]["p99_s"]
    peer_p99 = modes["peer"]["p99_s"]
    ops_before = modes["pfs_only"]["pfs_write_ops"]
    ops_after = modes["agg"]["pfs_write_ops"]
    return {
        "label": label,
        "quick": quick,
        "nodes": NODES,
        "engines_per_node": ENGINES_PER_NODE,
        "snapshot_size_mib": SNAPSHOT_SIZE // MiB,
        "checkpoints_per_client": checkpoints,
        "repeats": repeats,
        "pfs_only": modes["pfs_only"],
        "peer": modes["peer"],
        "agg": modes["agg"],
        "peer_p99_reduction_pct": round(100.0 * (1.0 - peer_p99 / pfs_p99), 1),
        "pfs_write_ops_reduction_pct": round(
            100.0 * (1.0 - ops_after / ops_before), 1
        )
        if ops_before
        else 0.0,
    }


def baseline_entry(baseline: dict, quick: bool):
    """The baseline measurement matching this run's ``--quick`` mode."""
    candidates = []
    if isinstance(baseline.get("peer"), dict):
        candidates.append(baseline)
    for value in baseline.values():
        if isinstance(value, dict) and isinstance(value.get("peer"), dict):
            candidates.append(value)
    matching = [c for c in candidates if c.get("quick", False) == quick]
    return matching[0] if matching else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument("--repeats", type=int, default=2, help="runs per mode (best-of)")
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument(
        "--min-peer-reduction",
        type=float,
        default=25.0,
        help="fail when peer-SSD restore cuts p99 by less than this percent",
    )
    parser.add_argument(
        "--require-agg-reduction",
        action="store_true",
        help="fail unless aggregation strictly reduces PFS write ops",
    )
    parser.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        help="fail when peer restore p99 exceeds baseline by this percent",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.repeats, args.label)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    failed = False
    reduction = result["peer_p99_reduction_pct"]
    if reduction < args.min_peer_reduction:
        print(
            f"GATE FAILED: peer-SSD restore cut p99 by {reduction:.1f}% "
            f"(< {args.min_peer_reduction:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: peer-SSD restore cut demand-restore p99 by {reduction:.1f}% "
            f"({result['pfs_only']['p99_s']:.4f}s -> {result['peer']['p99_s']:.4f}s)",
            file=sys.stderr,
        )
    ops_before = result["pfs_only"]["pfs_write_ops"]
    ops_after = result["agg"]["pfs_write_ops"]
    if args.require_agg_reduction and ops_after >= ops_before:
        print(
            f"GATE FAILED: aggregation did not reduce PFS write ops "
            f"({ops_before} -> {ops_after})",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: aggregation cut PFS write ops {ops_before} -> {ops_after} "
            f"({result['pfs_write_ops_reduction_pct']:.1f}%, "
            f"{result['agg']['agg_batches']} batches)",
            file=sys.stderr,
        )

    if args.baseline:
        with open(args.baseline) as fh:
            entry = baseline_entry(json.load(fh), args.quick)
        if entry is None:
            print(
                f"no baseline entry with quick={args.quick} in {args.baseline}; "
                "skipping regression gate",
                file=sys.stderr,
            )
        else:
            baseline_p99 = entry["peer"]["p99_s"]
            ceiling = baseline_p99 * (1.0 + args.max_regression / 100.0)
            current = result["peer"]["p99_s"]
            verdict = "OK" if current <= ceiling else "REGRESSION"
            print(
                f"{verdict}: peer restore p99 {current:.4f}s vs baseline "
                f"{baseline_p99:.4f}s (ceiling {ceiling:.4f}s)",
                file=sys.stderr,
            )
            if verdict != "OK":
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
